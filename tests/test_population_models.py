"""Tests for the Population Manager's model specs."""

import numpy as np
import pytest

from repro.core.population_models import (
    InitialDataSpec,
    PopulationModels,
    SloMix,
)
from repro.errors import ModelSpecError, UnknownSloError
from repro.sqldb.editions import Edition
from tests.conftest import make_flat_population


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSloMix:
    def test_sample_respects_weights(self, rng):
        mix = SloMix.from_dict(Edition.STANDARD_GP,
                               {"GP_Gen5_2": 0.9, "GP_Gen5_32": 0.1})
        names = [mix.sample(rng) for _ in range(500)]
        small = names.count("GP_Gen5_2")
        assert 400 < small < 490

    def test_zero_weight_never_sampled(self, rng):
        mix = SloMix.from_dict(Edition.STANDARD_GP,
                               {"GP_Gen5_2": 1.0, "GP_Gen5_4": 0.0})
        assert all(mix.sample(rng) == "GP_Gen5_2" for _ in range(50))

    def test_expected_cores(self):
        mix = SloMix.from_dict(Edition.PREMIUM_BC,
                               {"BC_Gen5_2": 0.5, "BC_Gen5_4": 0.5})
        # BC replicates x4: (8 + 16) / 2.
        assert mix.expected_cores() == pytest.approx(12.0)

    def test_unknown_slo_rejected(self):
        with pytest.raises(UnknownSloError):
            SloMix.from_dict(Edition.STANDARD_GP, {"GP_Gen5_3": 1.0})

    def test_wrong_edition_rejected(self):
        with pytest.raises(ModelSpecError):
            SloMix.from_dict(Edition.STANDARD_GP, {"BC_Gen5_2": 1.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(ModelSpecError):
            SloMix.from_dict(Edition.STANDARD_GP, {"GP_Gen5_2": -1.0})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ModelSpecError):
            SloMix.from_dict(Edition.STANDARD_GP, {"GP_Gen5_2": 0.0})

    def test_empty_rejected(self):
        with pytest.raises(ModelSpecError):
            SloMix(edition=Edition.STANDARD_GP, weights=())


class TestInitialDataSpec:
    def test_sample_within_clip(self, rng):
        spec = InitialDataSpec(edition=Edition.PREMIUM_BC, mu=5.0,
                               sigma=1.0, min_gb=1.0, cap_gb=500.0)
        for _ in range(200):
            assert 1.0 <= spec.sample(rng) <= 500.0

    def test_median(self):
        spec = InitialDataSpec(edition=Edition.PREMIUM_BC, mu=4.0,
                               sigma=0.5)
        assert spec.median_gb() == pytest.approx(np.exp(4.0))

    def test_core_exponent_scales(self, rng):
        spec = InitialDataSpec(edition=Edition.PREMIUM_BC, mu=4.0,
                               sigma=0.0, core_exponent=1.0,
                               cap_gb=1e9)
        four = spec.sample(rng, cores=4)
        sixteen = spec.sample(rng, cores=16)
        assert sixteen == pytest.approx(4.0 * four)

    def test_zero_exponent_ignores_cores(self, rng):
        spec = InitialDataSpec(edition=Edition.PREMIUM_BC, mu=4.0,
                               sigma=0.0, core_exponent=0.0)
        assert spec.sample(rng, cores=4) == spec.sample(rng, cores=32)

    def test_invalid_parameters(self):
        with pytest.raises(ModelSpecError):
            InitialDataSpec(edition=Edition.PREMIUM_BC, mu=1.0,
                            sigma=-1.0)
        with pytest.raises(ModelSpecError):
            InitialDataSpec(edition=Edition.PREMIUM_BC, mu=1.0,
                            sigma=1.0, min_gb=10.0, cap_gb=5.0)
        with pytest.raises(ModelSpecError):
            InitialDataSpec(edition=Edition.PREMIUM_BC, mu=1.0,
                            sigma=1.0, core_exponent=-0.5)


class TestPopulationModels:
    def test_complete_validates(self):
        make_flat_population().validate()

    def test_incomplete_rejected(self):
        population = make_flat_population()
        del population.slo_mix[Edition.PREMIUM_BC]
        with pytest.raises(ModelSpecError):
            population.validate()

    def test_empty_rejected(self):
        with pytest.raises(ModelSpecError):
            PopulationModels().validate()

    def test_editions_ordered(self):
        population = make_flat_population()
        assert population.editions == (Edition.STANDARD_GP,
                                       Edition.PREMIUM_BC)
