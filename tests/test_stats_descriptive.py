"""Tests for box-plot summaries and error metrics."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.stats.descriptive import (
    boxplot_stats,
    relative_difference,
    rmse,
    summarize_many,
)


class TestBoxplot:
    def test_five_number_summary(self):
        stats = boxplot_stats([1, 2, 3, 4, 5])
        assert stats.minimum == 1
        assert stats.median == 3
        assert stats.maximum == 5
        assert stats.q1 == 2
        assert stats.q3 == 4

    def test_mean_and_count(self):
        stats = boxplot_stats([2.0, 4.0, 6.0])
        assert stats.mean == pytest.approx(4.0)
        assert stats.count == 3

    def test_outlier_detection(self):
        data = [10.0] * 20 + [100.0]
        stats = boxplot_stats(data)
        assert stats.outliers == (100.0,)
        assert stats.whisker_high == 10.0

    def test_low_outlier(self):
        data = [10.0] * 20 + [-50.0]
        stats = boxplot_stats(data)
        assert -50.0 in stats.outliers

    def test_no_outliers_in_uniform_data(self):
        stats = boxplot_stats(list(range(100)))
        assert stats.outliers == ()

    def test_iqr(self):
        stats = boxplot_stats([1, 2, 3, 4, 5])
        assert stats.iqr == pytest.approx(2.0)

    def test_single_point(self):
        stats = boxplot_stats([7.0])
        assert stats.median == 7.0
        assert stats.outliers == ()

    def test_empty_raises(self):
        with pytest.raises(TrainingError):
            boxplot_stats([])

    def test_row_rendering(self):
        row = boxplot_stats([1.0, 2.0, 3.0]).row()
        assert "med=" in row and "n=" in row

    def test_summarize_many(self):
        boxes = summarize_many([[1, 2, 3], [4, 5, 6]])
        assert len(boxes) == 2
        assert boxes[1].median == 5


class TestRmse:
    def test_zero_for_identical(self):
        assert rmse([1, 2, 3], [1, 2, 3]) == 0.0

    def test_known_value(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_symmetry(self):
        a, b = [1.0, 5.0, 2.0], [2.0, 3.0, 4.0]
        assert rmse(a, b) == pytest.approx(rmse(b, a))

    def test_length_mismatch_raises(self):
        with pytest.raises(TrainingError):
            rmse([1, 2], [1, 2, 3])

    def test_empty_raises(self):
        with pytest.raises(TrainingError):
            rmse([], [])


class TestRelativeDifference:
    def test_increase(self):
        assert relative_difference(110.0, 100.0) == pytest.approx(0.1)

    def test_decrease(self):
        assert relative_difference(90.0, 100.0) == pytest.approx(-0.1)

    def test_zero_baseline_raises(self):
        with pytest.raises(TrainingError):
            relative_difference(1.0, 0.0)
