"""Tests for the synthetic production-trace generator."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.sqldb.editions import Edition
from repro.telemetry.production import (
    PERIODS_PER_DAY,
    ProductionTraceGenerator,
)
from repro.telemetry.region import EU_WEST_LIKE, US_EAST_LIKE


@pytest.fixture
def generator():
    return ProductionTraceGenerator(US_EAST_LIKE,
                                    np.random.default_rng(100))


class TestEventTraces:
    def test_length_matches_days(self, generator):
        trace = generator.event_trace(Edition.STANDARD_GP, "create", days=5)
        assert trace.n_hours == 120
        assert trace.n_days == 5

    def test_counts_nonnegative(self, generator):
        trace = generator.event_trace(Edition.PREMIUM_BC, "drop", days=14)
        assert all(count >= 0 for count in trace.counts)

    def test_business_hours_peak(self, generator):
        trace = generator.event_trace(Edition.STANDARD_GP, "create",
                                      days=14)
        groups = trace.hourly_samples()
        weekday_peak = np.mean(groups[(False, 13)])
        weekday_night = np.mean(groups[(False, 3)])
        assert weekday_peak > 2 * weekday_night

    def test_weekend_damped(self, generator):
        trace = generator.event_trace(Edition.STANDARD_GP, "create",
                                      days=14)
        groups = trace.hourly_samples()
        assert np.mean(groups[(True, 13)]) < np.mean(groups[(False, 13)])

    def test_bc_much_rarer_than_gp(self, generator):
        gp = generator.event_trace(Edition.STANDARD_GP, "create", days=14)
        bc = generator.event_trace(Edition.PREMIUM_BC, "create", days=14)
        assert sum(bc.counts) < 0.3 * sum(gp.counts)

    def test_bad_kind_rejected(self, generator):
        with pytest.raises(TrainingError):
            generator.event_trace(Edition.STANDARD_GP, "modify")

    def test_bad_days_rejected(self, generator):
        with pytest.raises(TrainingError):
            generator.event_trace(Edition.STANDARD_GP, "create", days=0)

    def test_all_four_traces(self, generator):
        traces = generator.create_and_drop_traces(days=3)
        assert len(traces) == 4

    def test_daily_totals(self, generator):
        trace = generator.event_trace(Edition.STANDARD_GP, "create", days=3)
        totals = trace.daily_totals()
        assert len(totals) == 3
        assert sum(totals) == sum(trace.counts)

    def test_deterministic_per_seed(self):
        a = ProductionTraceGenerator(
            US_EAST_LIKE, np.random.default_rng(5)).event_trace(
                Edition.STANDARD_GP, "create", days=3)
        b = ProductionTraceGenerator(
            US_EAST_LIKE, np.random.default_rng(5)).event_trace(
                Edition.STANDARD_GP, "create", days=3)
        assert a.counts == b.counts


class TestDiskTraces:
    def test_trace_length(self, generator):
        trace = generator.disk_trace(0, Edition.STANDARD_GP, days=2)
        assert len(trace.usage_gb) == 2 * PERIODS_PER_DAY + 1

    def test_usage_positive(self, generator):
        trace = generator.disk_trace(0, Edition.PREMIUM_BC, days=7)
        assert min(trace.usage_gb) > 0

    def test_initial_pattern_front_loaded(self, generator):
        trace = generator.disk_trace(0, Edition.PREMIUM_BC, days=2,
                                     pattern="initial")
        deltas = trace.deltas()
        assert deltas[0] > 12.0  # clears the labeling threshold

    def test_rapid_pattern_has_spikes_both_ways(self, generator):
        trace = generator.disk_trace(0, Edition.PREMIUM_BC, days=7,
                                     pattern="rapid")
        deltas = trace.deltas()
        assert deltas.max() > 1.0
        assert deltas.min() < -1.0

    def test_steady_pattern_small_deltas(self, generator):
        trace = generator.disk_trace(0, Edition.STANDARD_GP, days=7,
                                     pattern="steady")
        assert np.abs(trace.deltas()).max() < 1.0

    def test_bc_starts_bigger_than_gp(self):
        rng = np.random.default_rng(0)
        generator = ProductionTraceGenerator(US_EAST_LIKE, rng)
        gp_starts = [generator.disk_trace(i, Edition.STANDARD_GP,
                                          days=1).usage_gb[0]
                     for i in range(40)]
        bc_starts = [generator.disk_trace(i, Edition.PREMIUM_BC,
                                          days=1).usage_gb[0]
                     for i in range(40)]
        assert np.median(bc_starts) > 2 * np.median(gp_starts)

    def test_corpus_pattern_split(self, generator):
        corpus = generator.disk_corpus(n_databases=300, days=2)
        assert len(corpus) == 300
        patterns = {"steady": 0, "initial": 0, "rapid": 0}
        for trace in corpus:
            patterns[trace.pattern] += 1
        assert patterns["steady"] > 0.8 * 300
        assert patterns["initial"] >= 2
        assert patterns["rapid"] >= 2

    def test_corpus_has_both_editions(self, generator):
        corpus = generator.disk_corpus(n_databases=200, days=1)
        editions = {trace.edition for trace in corpus}
        assert editions == {Edition.STANDARD_GP, Edition.PREMIUM_BC}


class TestUtilizationAndDemographics:
    def test_idle_share(self, generator):
        samples = generator.utilization_snapshot(2000)
        idle = sum(1 for sample in samples if sample.idle)
        assert 0.25 < idle / 2000 < 0.45

    def test_low_utilization_dominates(self, generator):
        samples = [s for s in generator.utilization_snapshot(2000)
                   if not s.idle]
        cpu = np.array([s.cpu_percent for s in samples])
        assert np.median(cpu) < 25.0

    def test_utilization_in_range(self, generator):
        for sample in generator.utilization_snapshot(500):
            assert 0.0 <= sample.cpu_percent <= 100.0
            assert 0.0 <= sample.memory_percent <= 100.0

    def test_local_store_fractions_region_gap(self):
        rng = np.random.default_rng(3)
        low = ProductionTraceGenerator(US_EAST_LIKE, rng)
        high = ProductionTraceGenerator(EU_WEST_LIKE, rng)
        low_values = [v for vs in low.local_store_fractions(7).values()
                      for v in vs]
        high_values = [v for vs in high.local_store_fractions(7).values()
                       for v in vs]
        assert np.mean(high_values) > np.mean(low_values) + 0.05

    def test_local_store_fraction_shape(self, generator):
        per_day = generator.local_store_fractions(days=5)
        assert len(per_day) == 5
        for values in per_day.values():
            assert len(values) == US_EAST_LIKE.cluster_count
            assert all(0.0 <= value <= 1.0 for value in values)
