"""The performance tier (TL020..TL024) and the PerfSan sanitizer.

Per-rule fired/silent fixture pairs, the program-wide TL023 pass over
a pickle-boundary fixture tree, the ``--select``/``--ignore`` tier
split, the repo-wide clean-modulo-baseline invariant, and the PerfSan
cross-checker including a seeded static/runtime divergence.
"""

import ast
import pathlib
from io import StringIO

from repro.analysis import (
    Baseline,
    get_rules,
    lint_paths,
    lint_source,
)
from repro.analysis.cli import (
    EXIT_CLEAN,
    EXIT_INTERNAL_ERROR,
    EXIT_VIOLATIONS,
    run_lint,
)
from repro.analysis.perf_rules import PERF_TIER
from repro.analysis.perfsan import (
    HotFunction,
    PerfSanProfiler,
    evaluate,
    function_is_alloc_free,
)
from repro.analysis.rules import all_rules

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
BASELINE = REPO / "totolint-baseline.json"

#: Fixture path inside repro.simkernel: per-event by construction, so
#: the perf-hot rules treat every loop as hot without a program graph.
SIM = "src/repro/simkernel/example.py"


def codes(report):
    return [violation.rule for violation in report.violations]


def write_tree(tmp_path, files):
    root = tmp_path / "repro"
    for relative, source in files.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


class TestPerfTierRegistration:
    def test_all_five_rules_registered_with_levels(self):
        registered = {rule.code: rule for rule in all_rules()}
        for code in PERF_TIER:
            assert code in registered
        assert registered["TL024"].level == "warning"
        assert registered["TL020"].level == "error"


class TestTL020:
    def test_list_display_in_hot_loop_fires(self):
        report = lint_source(
            "def pump(events):\n"
            "    for event in events:\n"
            "        payload = [event.time, event.label]\n",
            path=SIM, rules=get_rules(["TL020"]))
        assert codes(report) == ["TL020"]
        assert "list display" in report.violations[0].message

    def test_set_display_fires_and_unpacking_target_is_silent(self):
        # Set literals carry no ctx attribute; the rule must classify
        # them as displays without touching it, while a tuple unpacking
        # target (Store ctx) is not an allocation at all.
        report = lint_source(
            "def pump(pairs):\n"
            "    for key, value in pairs:\n"
            "        kinds = {key, value}\n",
            path=SIM, rules=get_rules(["TL020"]))
        assert codes(report) == ["TL020"]
        assert "set display" in report.violations[0].message

    def test_fstring_label_in_hot_loop_fires(self):
        report = lint_source(
            "def pump(events):\n"
            "    for event in events:\n"
            "        label = f'event-{event.seq}'\n",
            path=SIM, rules=get_rules(["TL020"]))
        assert codes(report) == ["TL020"]

    def test_lambda_and_comprehension_fire(self):
        report = lint_source(
            "def pump(events):\n"
            "    for event in events:\n"
            "        thunk = lambda: event\n"
            "        live = [e for e in event.children]\n",
            path=SIM, rules=get_rules(["TL020"]))
        assert sorted(codes(report)) == ["TL020", "TL020"]

    def test_hoisted_buffer_and_constant_tuple_are_silent(self):
        report = lint_source(
            "KINDS = ('create', 'drop')\n"
            "def pump(events):\n"
            "    buffer = []\n"
            "    for event in events:\n"
            "        if event.kind in ('create', 'drop'):\n"
            "            buffer.append(event)\n",
            path=SIM, rules=get_rules(["TL020"]))
        assert codes(report) == []

    def test_allocation_after_return_or_in_nested_def_is_silent(self):
        report = lint_source(
            "def pump(events):\n"
            "    for event in events:\n"
            "        if event.last:\n"
            "            return [event]\n"
            "        def later():\n"
            "            return [event]\n",
            path=SIM, rules=get_rules(["TL020"]))
        assert codes(report) == []


class TestTL021:
    def test_scalar_normal_in_hot_loop_fires(self):
        report = lint_source(
            "def jitter(events, stream):\n"
            "    for event in events:\n"
            "        event.delay = stream.normal(0.0, 1.0)\n",
            path=SIM, rules=get_rules(["TL021"]))
        assert codes(report) == ["TL021"]
        assert "batched" in report.violations[0].message.lower()

    def test_vectorized_draws_are_silent(self):
        report = lint_source(
            "def jitter(events, stream):\n"
            "    delays = stream.normal(0.0, 1.0, size=len(events))\n"
            "    for event, delay in zip(events, delays):\n"
            "        event.delay = delay\n"
            "    for event in events:\n"
            "        more = stream.integers(0, 10, 64)\n",
            path=SIM, rules=get_rules(["TL021"]))
        assert codes(report) == []


class TestTL022:
    FLEET = (
        "class Collector:\n"
        "    def __init__(self):\n"
        "        self.frames = []  # totolint: fleet-scale\n"
        "        self._cursor = 0\n"
    )

    def test_full_scan_of_annotated_collection_fires(self):
        report = lint_source(
            self.FLEET +
            "    def on_event(self, now):\n"
            "        for frame in self.frames:\n"
            "            pass\n",
            path=SIM, rules=get_rules(["TL022"]))
        assert codes(report) == ["TL022"]
        assert "`frames`" in report.violations[0].message

    def test_dict_view_and_transparent_wrappers_fire(self):
        report = lint_source(
            "class Plane:\n"
            "    def __init__(self):\n"
            "        self._dbs = {}  # totolint: fleet-scale\n"
            "    def on_event(self):\n"
            "        return [db for db in self._dbs.values() if db]\n",
            path=SIM, rules=get_rules(["TL022"]))
        assert codes(report) == ["TL022"]

    def test_cursor_slice_is_silent(self):
        report = lint_source(
            self.FLEET +
            "    def on_event(self, now):\n"
            "        for frame in self.frames[self._cursor:]:\n"
            "            pass\n"
            "        self._cursor = len(self.frames)\n",
            path=SIM, rules=get_rules(["TL022"]))
        assert codes(report) == []

    def test_unannotated_collection_is_silent(self):
        report = lint_source(
            "class Collector:\n"
            "    def __init__(self):\n"
            "        self.frames = []\n"
            "    def on_event(self, now):\n"
            "        for frame in self.frames:\n"
            "            pass\n",
            path=SIM, rules=get_rules(["TL022"]))
        assert codes(report) == []


class TestTL023:
    def test_closure_capturing_sweep_payload_fires(self, tmp_path):
        root = write_tree(tmp_path, {
            "experiments/sweep.py":
                "def launch(pool, scenario):\n"
                "    return pool.submit(lambda: scenario.run())\n",
        })
        report = lint_paths([root], rules=get_rules(["TL023"]))
        assert codes(report) == ["TL023"]
        assert "pickle" in report.violations[0].message

    def test_worker_mutating_module_cache_fires(self, tmp_path):
        root = write_tree(tmp_path, {
            "experiments/sweep.py":
                "_CACHE = {}\n"
                "\n"
                "def work(item):\n"
                "    _CACHE[item] = item\n"
                "    return item\n"
                "\n"
                "def run(pool, items):\n"
                "    return [pool.submit(work, item) for item in items]\n",
        })
        report = lint_paths([root], rules=get_rules(["TL023"]))
        assert codes(report) == ["TL023"]
        assert "`work()`" in report.violations[0].message
        assert "`_CACHE`" in report.violations[0].message

    def test_initializer_delivery_is_sanctioned(self, tmp_path):
        root = write_tree(tmp_path, {
            "experiments/sweep.py":
                "_DOCS = {}\n"
                "\n"
                "def prime(doc):\n"
                "    _DOCS['doc'] = doc\n"
                "\n"
                "def work(item):\n"
                "    return _DOCS['doc'], item\n"
                "\n"
                "def run(pool, items, doc):\n"
                "    pool.child(initializer=prime, initargs=(doc,))\n"
                "    return [pool.submit(work, item) for item in items]\n",
        })
        report = lint_paths([root], rules=get_rules(["TL023"]))
        assert codes(report) == []

    def test_pure_payload_is_silent(self, tmp_path):
        root = write_tree(tmp_path, {
            "experiments/sweep.py":
                "def work(item):\n"
                "    return item * 2\n"
                "\n"
                "def run(pool, items):\n"
                "    return [pool.submit(work, item) for item in items]\n",
        })
        report = lint_paths([root], rules=get_rules(["TL023"]))
        assert codes(report) == []


class TestTL024:
    def test_three_identical_loads_fire_as_warning(self):
        report = lint_source(
            "def pump(self, events):\n"
            "    for event in events:\n"
            "        a = self.stats.count\n"
            "        b = self.stats.count\n"
            "        c = self.stats.count\n",
            path=SIM, rules=get_rules(["TL024"]))
        assert codes(report) == ["TL024"]
        assert "self.stats.count" in report.violations[0].message
        rule = next(r for r in all_rules() if r.code == "TL024")
        assert rule.level == "warning"

    def test_two_loads_or_rebound_chain_are_silent(self):
        report = lint_source(
            "def pump(self, events):\n"
            "    for event in events:\n"
            "        a = self.stats.count\n"
            "        b = self.stats.count\n"
            "    for event in events:\n"
            "        x = self.stats.count\n"
            "        self.stats = event\n"
            "        y = self.stats.count\n"
            "        z = self.stats.count\n",
            path=SIM, rules=get_rules(["TL024"]))
        assert codes(report) == []

    def test_local_binding_before_loop_is_the_fix(self):
        report = lint_source(
            "def pump(self, events):\n"
            "    count = self.stats.count\n"
            "    for event in events:\n"
            "        a = count\n"
            "        b = count\n"
            "        c = count\n",
            path=SIM, rules=get_rules(["TL024"]))
        assert codes(report) == []


class TestSelectIgnore:
    HOT = ("def pump(events: list) -> None:\n"
           "    for event in events:\n"
           "        payload = [event]\n")

    def test_select_runs_only_the_perf_tier(self, tmp_path):
        root = write_tree(tmp_path, {"simkernel/loop.py": self.HOT})
        out = StringIO()
        exit_code = run_lint(paths=[root], select="TL020",
                             stdout=out, stderr=StringIO())
        assert exit_code == EXIT_VIOLATIONS
        assert "TL020" in out.getvalue()

    def test_ignore_subtracts_from_the_selection(self, tmp_path):
        root = write_tree(tmp_path, {"simkernel/loop.py": self.HOT})
        exit_code = run_lint(paths=[root], select="TL020,TL024",
                             ignore="TL020",
                             stdout=StringIO(), stderr=StringIO())
        assert exit_code == EXIT_CLEAN

    def test_ignore_composes_with_full_catalogue(self, tmp_path):
        root = write_tree(tmp_path, {"simkernel/loop.py": self.HOT})
        ignore = ",".join(PERF_TIER)
        exit_code = run_lint(paths=[root], ignore=ignore,
                             stdout=StringIO(), stderr=StringIO())
        assert exit_code == EXIT_CLEAN

    def test_unknown_code_is_an_internal_error(self, tmp_path):
        root = write_tree(tmp_path, {"simkernel/loop.py": self.HOT})
        err = StringIO()
        exit_code = run_lint(paths=[root], ignore="TL999",
                             stdout=StringIO(), stderr=err)
        assert exit_code == EXIT_INTERNAL_ERROR
        assert "unknown rule" in err.getvalue()


class TestRepoPerfState:
    def test_repo_perf_tier_clean_modulo_committed_baseline(self):
        report = lint_paths([SRC], rules=get_rules(PERF_TIER))
        result = Baseline.load(str(BASELINE)).apply(
            list(report.violations))
        assert result.new == [], [
            f"{v.path}:{v.line} {v.rule} {v.message}" for v in result.new]

    def test_committed_baseline_has_no_stale_entries(self):
        report = lint_paths([SRC])
        result = Baseline.load(str(BASELINE)).apply(
            list(report.violations))
        assert result.stale == []


def _parse_single_function(source):
    tree = ast.parse(source)
    return tree.body[0]


class TestPerfSanStaticVerdicts:
    def test_attribute_getter_is_alloc_free(self):
        node = _parse_single_function(
            "def running(self):\n"
            "    return self._process.active and not self._stopped\n")
        assert function_is_alloc_free(node)

    def test_calls_displays_and_arithmetic_disqualify(self):
        for body in ("    return list(x)\n",
                     "    return [x]\n",
                     "    return x + 1\n",
                     "    return f'{x}'\n",
                     "    for item in x:\n        pass\n"):
            node = _parse_single_function(f"def f(x):\n{body}")
            assert not function_is_alloc_free(node), body

    def test_constant_tuple_is_alloc_free(self):
        node = _parse_single_function(
            "def kinds():\n"
            "    return ('create', 'drop')\n")
        assert function_is_alloc_free(node)


def _probe_clean():
    return None


def _probe_allocating():
    return [0] * 256


class TestPerfSanRuntime:
    def _run(self, function, fn, calls=8):
        profiler = PerfSanProfiler([function])
        profiler.install()
        try:
            profiler._classified[fn.__code__] = function
            for _ in range(calls):
                fn()
        finally:
            profiler.uninstall()
        return profiler

    def test_seeded_divergence_fails_loudly_with_details(self):
        hot = HotFunction(path="<fixture>", qualname="_probe_allocating",
                          start=1, end=2, alloc_free=True)
        profiler = self._run(hot, _probe_allocating)
        report = evaluate([hot], profiler)
        assert not report.ok
        assert len(report.mismatches) == 1
        mismatch = report.mismatches[0]
        assert mismatch.qualname == "_probe_allocating"
        assert mismatch.measured >= 4
        assert mismatch.allocating == mismatch.measured
        assert mismatch.max_bytes > 0
        formatted = report.format()
        assert "ALLOCATION MISMATCH" in formatted
        assert "_probe_allocating" in formatted

    def test_clean_function_holds_its_verdict(self):
        hot = HotFunction(path="<fixture>", qualname="_probe_clean",
                          start=1, end=2, alloc_free=True)
        profiler = self._run(hot, _probe_clean)
        report = evaluate([hot], profiler)
        assert report.ok, report.format()
        assert report.fired_functions == 1
        assert "OK" in report.format()

    def test_stale_hot_set_is_a_failure(self):
        hot = HotFunction(path="<fixture>", qualname="_probe_clean",
                          start=1, end=2, alloc_free=True)
        profiler = PerfSanProfiler([hot])
        report = evaluate([hot], profiler)
        assert report.stale_hot_set
        assert not report.ok
        assert "STALE HOT SET" in report.format()

    def test_too_few_calls_never_fire_a_mismatch(self):
        hot = HotFunction(path="<fixture>", qualname="_probe_allocating",
                          start=1, end=2, alloc_free=True)
        profiler = self._run(hot, _probe_allocating, calls=2)
        report = evaluate([hot], profiler)
        assert report.mismatches == []
        assert not report.stale_hot_set


class TestPerfSanCli:
    def test_run_parser_accepts_perfsan(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["run", "--perfsan"])
        assert args.perfsan is True
        args = build_parser().parse_args(["run"])
        assert args.perfsan is False
