"""Integration: a node failure in the middle of a running benchmark.

Exercises the §5.2 reality that stage clusters suffer "intermittent
failures that also happen in production" while Toto is mid-run: the
displaced replicas are rebuilt, persisted BC disk survives the hop,
GP tempdb resets, downtime lands on the affected databases, and the
run completes with clean invariants.
"""

import pytest

from repro.core.runner import BenchmarkRunner
from repro.fabric.failover import REASON_NODE_FAILURE
from repro.units import HOUR
from tests.test_runner_integration import small_scenario


@pytest.fixture(scope="module")
def failed_run(tiny_document):
    scenario = small_scenario(tiny_document, hours=8)
    runner = BenchmarkRunner(scenario)
    victim = 2

    def inject() -> None:
        runner.ring.cluster.fail_node(victim, runner.kernel.now)

    def recover() -> None:
        runner.ring.cluster.restore_node(victim)

    runner.kernel.schedule(scenario.bootstrap_settle + 3 * HOUR, inject,
                           label="inject-node-failure")
    runner.kernel.schedule(scenario.bootstrap_settle + 5 * HOUR, recover,
                           label="recover-node")
    result = runner.run()
    return runner, result, victim


class TestFailureMidRun:
    def test_run_completes_with_invariants(self, failed_run):
        runner, result, __ = failed_run
        runner.ring.cluster.validate_invariants()
        assert result.frames, "telemetry survived the failure"

    def test_node_failure_failovers_recorded(self, failed_run):
        __, result, victim = failed_run
        evacuations = [record for record in result.failovers
                       if record.reason == REASON_NODE_FAILURE]
        assert evacuations, "expected evacuation records"
        assert all(record.from_node == victim for record in evacuations)

    def test_failed_node_empty_until_recovery(self, failed_run):
        runner, result, victim = failed_run
        # Frames between injection (h3) and recovery (h5) show the
        # victim node contributing nothing.
        for frame in result.frames:
            if 4 <= frame.hour_index < 5:
                assert frame.node_cores[victim] == 0.0

    def test_node_refills_after_recovery(self, failed_run):
        runner, __, victim = failed_run
        # After recovery the node is placeable again; with ongoing churn
        # it usually hosts something by the end — at minimum it must be
        # marked available.
        assert runner.ring.cluster.node(victim).available

    def test_downtime_booked_on_databases(self, failed_run):
        __, result, __ = failed_run
        impacted = [db for db in result.databases
                    if db.downtime_seconds > 0]
        assert impacted, "a node failure must hurt someone"

    def test_capacity_failovers_exclude_evacuations(self, failed_run):
        __, result, __ = failed_run
        kpis = result.kpis.failovers
        evacuations = sum(1 for record in result.failovers
                          if record.reason == REASON_NODE_FAILURE)
        assert kpis.count == len(result.failovers) - evacuations - sum(
            1 for record in result.failovers
            if record.reason == "make-room")
