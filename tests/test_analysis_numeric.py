"""The numeric-determinism tier (TL030..TL034) and the FloatSan sanitizer.

Per-rule fired/silent fixture pairs over fleet-package fixture paths,
the ``--select``/``--ignore`` tier split, the repo-wide numeric-clean
invariant, FloatSan's wrapper semantics (spec-order audit, permuted
replay, stale-registry detection, mock.patch-style installation), a
seeded pairwise merge caught by *both* the static rule and the runtime
sanitizer, and a Hypothesis property pinning the permutation
invariance the registered helpers promise.
"""

import dataclasses
import pathlib
import random
from io import StringIO

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    FloatSan,
    get_rules,
    lint_paths,
    lint_source,
    merge_registry,
)
from repro.analysis.cli import (
    EXIT_CLEAN,
    EXIT_INTERNAL_ERROR,
    EXIT_VIOLATIONS,
    run_lint,
)
from repro.analysis.floatsan import (
    MAX_REPLAYS,
    SPEC_KEYS,
    _first_divergence,
    _result_bits,
)
from repro.analysis.numeric_rules import NUMERIC_TIER
from repro.analysis.rules import all_rules
from repro.fleet.summary import (
    ClusterSummary,
    FleetFrame,
    fleet_digest,
    merge_frames,
    merge_summaries,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: Fixture path inside repro.fleet: the numeric rules' package fallback
#: treats every node as on the merge/digest path when no program graph
#: is built, mirroring how the perf tier uses repro.simkernel.
FLEET = "src/repro/fleet/example.py"

#: Sequential left-fold over these is 0.0; reversed it is 1.0 — float
#: addition's non-associativity made deterministic enough to test.
DIVERGENT = [1.0, 1e16, -1e16]


def codes(report):
    return [violation.rule for violation in report.violations]


def write_tree(tmp_path, files):
    root = tmp_path / "repro"
    for relative, source in files.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


def _summary(index, value, hours=2):
    """A hand-built ClusterSummary with spec-ordered zero-padded name."""
    frames = tuple(
        FleetFrame(hour_index=hour, reserved_cores=value + hour,
                   disk_gb=value * 2.0, active_databases=3,
                   redirects_cumulative=hour,
                   failover_count_cumulative=0)
        for hour in range(hours))
    return ClusterSummary(
        name=f"fleet-x-{index:04d}", seed=1000 + index, density=1.0,
        node_count=4, final_reserved_cores=value,
        final_disk_gb=value * 2.0, core_utilization=0.5,
        disk_utilization=0.25, creation_redirects=index,
        databases_created=10, active_databases=9, failover_count=0,
        failover_downtime_seconds=0.0, revenue_gross=value * 3.0,
        revenue_penalty=value / 7.0, revenue_adjusted=value * 2.9,
        penalized_databases=1, faults_injected=0,
        events_executed=100 + index, frames=frames)


class TestNumericTierRegistration:
    def test_all_five_rules_registered_as_errors(self):
        registered = {rule.code: rule for rule in all_rules()}
        for code in NUMERIC_TIER:
            assert code in registered
            assert registered[code].level == "error"


class TestTL030:
    def test_sum_over_set_literal_fires(self):
        report = lint_source(
            "def collect(a, b):\n"
            "    return sum({a, b})\n",
            path=FLEET, rules=get_rules(["TL030"]))
        assert codes(report) == ["TL030"]
        assert "set literal" in report.violations[0].message

    def test_sum_over_set_call_and_fsum_fire(self):
        report = lint_source(
            "import math\n"
            "def collect(values, pool):\n"
            "    a = sum(set(values))\n"
            "    b = math.fsum(pool.values())\n"
            "    return a + b\n",
            path=FLEET, rules=get_rules(["TL030"]))
        assert sorted(codes(report)) == ["TL030", "TL030"]

    def test_generator_over_dict_view_fires(self):
        report = lint_source(
            "def collect(totals):\n"
            "    return sum(value * 2 for value in totals.values())\n",
            path=FLEET, rules=get_rules(["TL030"]))
        assert codes(report) == ["TL030"]
        assert ".values()" in report.violations[0].message

    def test_loop_accumulation_over_dict_view_fires(self):
        report = lint_source(
            "def collect(totals):\n"
            "    acc = 0.0\n"
            "    for value in totals.values():\n"
            "        acc += value\n"
            "    return acc\n",
            path=FLEET, rules=get_rules(["TL030"]))
        assert codes(report) == ["TL030"]

    def test_spec_ordered_sequences_are_silent(self):
        report = lint_source(
            "def collect(values, totals):\n"
            "    a = sum(values)\n"
            "    b = sum(sorted(totals.values()))\n"
            "    for value in sorted(totals):\n"
            "        a += totals[value]\n"
            "    return a + b\n",
            path=FLEET, rules=get_rules(["TL030"]))
        assert codes(report) == []

    def test_non_accumulating_loop_over_view_is_silent(self):
        report = lint_source(
            "def audit(totals):\n"
            "    for value in totals.values():\n"
            "        assert value >= 0\n",
            path=FLEET, rules=get_rules(["TL030"]))
        assert codes(report) == []


class TestTL031:
    def test_numpy_reduction_on_merge_path_fires(self):
        report = lint_source(
            "import numpy as np\n"
            "def roll_up(series):\n"
            "    return float(np.sum(series))\n",
            path=FLEET, rules=get_rules(["TL031"]))
        assert codes(report) == ["TL031"]
        assert "np.sum" in report.violations[0].message

    def test_registered_merge_body_is_tl034s_jurisdiction(self):
        # Inside a `# totolint: merge-fn` span the numpy reduction is
        # TL034's finding, not TL031's — one violation per cause.
        report = lint_source(
            "import numpy as np\n"
            "# totolint: merge-fn\n"
            "def merge_totals(parts):\n"
            "    return float(np.sum(parts))\n",
            path=FLEET, rules=get_rules(["TL031"]))
        assert codes(report) == []

    def test_in_shard_reduction_outside_scope_is_silent(self):
        report = lint_source(
            "import numpy as np\n"
            "def shard_mean(samples):\n"
            "    return float(np.mean(samples))\n",
            path="src/repro/models/example.py",
            rules=get_rules(["TL031"]))
        assert codes(report) == []


class TestTL032:
    def test_float_equality_fires(self):
        report = lint_source(
            "def check(total):\n"
            "    return total == 0.25\n",
            path=FLEET, rules=get_rules(["TL032"]))
        assert codes(report) == ["TL032"]
        assert "isclose" in report.violations[0].message

    def test_negative_float_inequality_fires(self):
        report = lint_source(
            "def check(delta):\n"
            "    return delta != -1.5\n",
            path=FLEET, rules=get_rules(["TL032"]))
        assert codes(report) == ["TL032"]

    def test_float_dict_key_and_set_member_fire(self):
        report = lint_source(
            "BUCKETS = {0.5: 'half'}\n"
            "KNOWN = {1.5, 'label'}\n",
            path=FLEET, rules=get_rules(["TL032"]))
        assert sorted(codes(report)) == ["TL032", "TL032"]

    def test_integer_keys_ordering_and_isclose_are_silent(self):
        report = lint_source(
            "import math\n"
            "BUCKETS = {1: 'one'}\n"
            "def check(total):\n"
            "    return total <= 0.25 or math.isclose(total, 0.25)\n",
            path=FLEET, rules=get_rules(["TL032"]))
        assert codes(report) == []


class TestTL033:
    def test_str_call_in_export_feeder_fires(self):
        report = lint_source(
            "import json\n"
            "def export(value):\n"
            "    return json.dumps({'v': str(value)})\n",
            path=FLEET, rules=get_rules(["TL033"]))
        assert codes(report) == ["TL033"]
        assert "`str(...)`" in report.violations[0].message

    def test_float_fstring_in_export_feeder_fires(self):
        report = lint_source(
            "import json\n"
            "def export(value):\n"
            "    label = f'{value:.3f}'\n"
            "    return json.dumps({'v': label})\n",
            path=FLEET, rules=get_rules(["TL033"]))
        assert codes(report) == ["TL033"]

    def test_annotated_canonical_writer_is_exempt(self):
        report = lint_source(
            "import json\n"
            "# totolint: canonical-json\n"
            "def digest_payload(value):\n"
            "    return json.dumps({'v': round(value, 6)})\n",
            path=FLEET, rules=get_rules(["TL033"]))
        assert codes(report) == []

    def test_rendering_without_an_export_feed_is_silent(self):
        report = lint_source(
            "def label(value):\n"
            "    return f'{value:.3f} cores'\n",
            path=FLEET, rules=get_rules(["TL033"]))
        assert codes(report) == []


class TestTL034:
    def test_reversed_fold_in_registered_merge_fires(self):
        report = lint_source(
            "# totolint: merge-fn\n"
            "def merge_totals(parts):\n"
            "    total = 0.0\n"
            "    for part in reversed(parts):\n"
            "        total += part\n"
            "    return total\n",
            path=FLEET, rules=get_rules(["TL034"]))
        assert codes(report) == ["TL034"]
        assert "reversed" in report.violations[0].message

    def test_reduce_and_input_resort_fire(self):
        report = lint_source(
            "from functools import reduce\n"
            "import operator\n"
            "# totolint: merge-fn\n"
            "def merge_totals(parts):\n"
            "    return reduce(operator.add, sorted(parts))\n",
            path=FLEET, rules=get_rules(["TL034"]))
        assert sorted(codes(report)) == ["TL034", "TL034"]

    def test_numpy_reduction_in_registered_merge_fires(self):
        report = lint_source(
            "import numpy as np\n"
            "# totolint: merge-fn\n"
            "def merge_totals(parts):\n"
            "    return float(np.sum(parts))\n",
            path=FLEET, rules=get_rules(["TL034"]))
        assert codes(report) == ["TL034"]

    def test_unregistered_kpi_accumulator_fires(self):
        report = lint_source(
            "from typing import Sequence\n"
            "def roll_up(summaries: Sequence[ClusterSummary]):\n"
            "    total = 0.0\n"
            "    for summary in summaries:\n"
            "        total += summary.revenue_adjusted\n"
            "    return total\n",
            path=FLEET, rules=get_rules(["TL034"]))
        assert codes(report) == ["TL034"]
        assert "merge-fn" in report.violations[0].message

    def test_registered_left_fold_is_the_sanctioned_shape(self):
        report = lint_source(
            "from typing import Sequence\n"
            "# totolint: merge-fn\n"
            "def merge_kpis(summaries: Sequence[ClusterSummary]):\n"
            "    total = 0.0\n"
            "    for summary in summaries:\n"
            "        total += summary.revenue_adjusted\n"
            "    return total\n",
            path=FLEET, rules=get_rules(["TL034"]))
        assert codes(report) == []


class TestSelectIgnore:
    # A registered merge-fn keeps the fixture inside the inferred
    # numeric scope when run_lint builds the program graph.
    MERGE = ("# totolint: merge-fn\n"
             "def merge_totals(parts):\n"
             "    return sum(set(parts))\n")

    def test_select_runs_only_the_numeric_tier(self, tmp_path):
        root = write_tree(tmp_path, {"fleet/agg.py": self.MERGE})
        out = StringIO()
        exit_code = run_lint(paths=[root], select="TL030",
                             stdout=out, stderr=StringIO())
        assert exit_code == EXIT_VIOLATIONS
        assert "TL030" in out.getvalue()

    def test_ignore_subtracts_from_the_selection(self, tmp_path):
        root = write_tree(tmp_path, {"fleet/agg.py": self.MERGE})
        exit_code = run_lint(paths=[root], select="TL030,TL034",
                             ignore="TL030",
                             stdout=StringIO(), stderr=StringIO())
        assert exit_code == EXIT_CLEAN

    def test_ignore_composes_with_full_catalogue(self, tmp_path):
        root = write_tree(tmp_path, {"fleet/agg.py": self.MERGE})
        ignore = ",".join(NUMERIC_TIER)
        exit_code = run_lint(paths=[root], ignore=ignore,
                             stdout=StringIO(), stderr=StringIO())
        assert exit_code == EXIT_CLEAN

    def test_unknown_code_is_an_internal_error(self, tmp_path):
        root = write_tree(tmp_path, {"fleet/agg.py": self.MERGE})
        err = StringIO()
        exit_code = run_lint(paths=[root], select="TL035",
                             stdout=StringIO(), stderr=err)
        assert exit_code == EXIT_INTERNAL_ERROR
        assert "unknown rule" in err.getvalue()


class TestRepoNumericState:
    def test_repo_numeric_tier_is_clean_with_no_baseline(self):
        # Unlike the perf tier's launch, the numeric tier ships with
        # zero accepted findings — the ratchet starts (and stays) empty.
        report = lint_paths([SRC], rules=get_rules(NUMERIC_TIER))
        assert codes(report) == [], [
            f"{v.path}:{v.line} {v.rule} {v.message}"
            for v in report.violations]

    def test_merge_registry_matches_the_annotated_helpers(self):
        registry = merge_registry([SRC])
        qualnames = sorted(qualname for _, qualname in registry)
        assert qualnames == ["adjusted_revenue_report",
                             "merge_backend_summaries", "merge_frames",
                             "merge_summaries"]
        assert set(registry.values()) == {"ordered"}


def _left_fold(values):
    total = 0.0
    for value in values:
        total += value
    return total


def _pairwise(values):
    if len(values) == 1:
        return values[0]
    mid = len(values) // 2
    return _pairwise(values[:mid]) + _pairwise(values[mid:])


class _Operand:
    def __init__(self, **attrs):
        for key, value in attrs.items():
            setattr(self, key, value)


class TestResultBitsAndDivergence:
    def test_equal_bits_iff_equal_reprs(self):
        assert _result_bits(0.1 + 0.2) == _result_bits(0.1 + 0.2)
        assert _result_bits(0.1 + 0.2) != _result_bits(0.3)

    def test_first_divergence_walks_dataclass_fields(self):
        a = _summary(0, 1.0)
        b = dataclasses.replace(a, final_disk_gb=3.0)
        path, left, right = _first_divergence(a, b)
        assert path == "result.final_disk_gb"
        assert (left, right) == (2.0, 3.0)

    def test_first_divergence_indexes_sequences_and_dicts(self):
        path, left, right = _first_divergence([1.0, 2.0], [1.0, 2.5])
        assert path == "result[1]"
        assert (left, right) == (2.0, 2.5)
        path, left, right = _first_divergence({"a": 1.0}, {"a": 1.5})
        assert path == "result['a']"


class TestFloatSanOrderedWrapper:
    def _wrapped(self, fn=_left_fold, sensitivity="ordered"):
        sanitizer = FloatSan({})
        return sanitizer, sanitizer._wrap("probe", sensitivity, fn)

    def test_out_of_spec_order_is_reported_once_with_both_keys(self):
        sanitizer, wrapped = self._wrapped(lambda ops: len(ops))
        operands = [_Operand(name="fleet-x-0002"),
                    _Operand(name="fleet-x-0000"),
                    _Operand(name="fleet-x-0001")]
        wrapped(operands)
        assert len(sanitizer.order_violations) == 1
        violation = sanitizer.order_violations[0]
        assert violation.spec_key == "name"
        assert violation.index == 1
        assert violation.previous == "fleet-x-0002"
        assert violation.current == "fleet-x-0000"
        assert "spec order" in violation.format()

    def test_spec_key_priority_is_hour_index_first(self):
        assert SPEC_KEYS[0] == "hour_index"
        sanitizer, wrapped = self._wrapped(lambda ops: len(ops))
        # hour_index ascending wins even though name is descending.
        wrapped([_Operand(hour_index=0, name="b"),
                 _Operand(hour_index=1, name="a")])
        assert sanitizer.order_violations == []
        wrapped([_Operand(hour_index=1, name="a"),
                 _Operand(hour_index=0, name="b")])
        assert [v.spec_key for v in sanitizer.order_violations] \
            == ["hour_index"]

    def test_ordered_fn_is_never_reinvoked(self):
        calls = []

        def observed(values):
            calls.append(list(values))
            return _left_fold(values)

        sanitizer, wrapped = self._wrapped(observed)
        assert wrapped(DIVERGENT) == 0.0
        assert len(calls) == 1
        assert sanitizer.stats["probe"].replays == 0
        assert sanitizer.divergences == []

    def test_scalar_arguments_skip_the_order_audit(self):
        sanitizer, wrapped = self._wrapped(lambda acc, item: acc + item,
                                           sensitivity="ordered")
        assert wrapped(1.0, 2.0) == 3.0
        assert sanitizer.order_violations == []


class TestFloatSanInsensitiveReplay:
    def _wrapped(self, fn):
        sanitizer = FloatSan({})
        return sanitizer, sanitizer._wrap("probe", "insensitive", fn)

    def test_order_sensitive_fold_declared_insensitive_diverges(self):
        sanitizer, wrapped = self._wrapped(_left_fold)
        assert wrapped(DIVERGENT) == 0.0
        assert len(sanitizer.divergences) == 1
        divergence = sanitizer.divergences[0]
        assert divergence.qualname == "probe"
        assert divergence.permutation == "reversed"
        assert divergence.operands == 3
        assert "order-sensitive" in divergence.format()

    def test_truthful_insensitivity_claim_holds(self):
        calls = []

        def int_sum(values):
            calls.append(list(values))
            return sum(values)

        sanitizer, wrapped = self._wrapped(int_sum)
        assert wrapped([1, 2, 3]) == 6
        # One real invocation plus the reversed and rotated replays.
        assert len(calls) == 3
        assert sanitizer.divergences == []
        assert sanitizer.stats["probe"].replays == 1

    def test_replays_are_capped(self):
        sanitizer, wrapped = self._wrapped(lambda v: sum(v))
        for _ in range(MAX_REPLAYS + 4):
            wrapped([1, 2])
        assert sanitizer.stats["probe"].replays == MAX_REPLAYS
        assert sanitizer.stats["probe"].invocations == MAX_REPLAYS + 4


class TestFloatSanReportShape:
    def test_stale_registry_fails_loudly(self):
        sanitizer = FloatSan({("src/x.py", "merge"): "ordered"})
        sanitizer.patched = ["merge"]
        report = sanitizer.report()
        assert report.stale_registry
        assert not report.ok
        assert "STALE REGISTRY" in report.format()

    def test_unpatchable_registry_is_not_stale(self):
        # Nothing resolved, nothing patched: the report must not claim
        # staleness it could never have observed.
        report = FloatSan({}).report()
        assert not report.stale_registry
        assert report.ok
        assert "OK" in report.format()

    def test_violations_render_in_the_report(self):
        sanitizer = FloatSan({})
        wrapped = sanitizer._wrap("probe", "insensitive", _left_fold)
        wrapped(DIVERGENT)
        report = sanitizer.report()
        assert not report.ok
        formatted = report.format()
        assert "DIVERGENCE" in formatted
        assert "probe" in formatted


class TestFloatSanInstallation:
    def test_install_patches_direct_importers_and_restores(self):
        import repro.fleet.runner as fleet_runner
        import repro.fleet.summary as fleet_summary
        original = fleet_summary.merge_summaries
        summaries = [_summary(0, 1.25), _summary(1, 2.5)]
        expected = merge_summaries(summaries)
        sanitizer = FloatSan(merge_registry([SRC]))
        sanitizer.install()
        try:
            # Direct importers (fleet.runner) hold the wrapper too, the
            # property plain defining-module patching would miss.
            assert fleet_summary.merge_summaries is not original
            assert fleet_runner.merge_summaries \
                is fleet_summary.merge_summaries
            kpis = fleet_summary.merge_summaries(summaries)
        finally:
            sanitizer.uninstall()
        assert fleet_summary.merge_summaries is original
        assert fleet_runner.merge_summaries is original
        assert kpis == expected
        report = sanitizer.report()
        assert report.ok, report.format()
        assert "merge_summaries" in report.fired
        assert report.invocations == 1

    def test_out_of_spec_feed_through_patched_helper_fires(self):
        import repro.fleet.summary as fleet_summary
        sanitizer = FloatSan(merge_registry([SRC]))
        sanitizer.install()
        try:
            fleet_summary.merge_summaries(
                [_summary(1, 2.5), _summary(0, 1.25)])
        finally:
            sanitizer.uninstall()
        report = sanitizer.report()
        assert not report.ok
        assert [v.spec_key for v in report.order_violations] == ["name"]
        assert "ORDER VIOLATION" in report.format()

    def test_install_is_idempotent_and_uninstall_is_safe_twice(self):
        sanitizer = FloatSan(merge_registry([SRC]))
        sanitizer.install()
        patched = list(sanitizer.patched)
        sanitizer.install()
        assert sanitizer.patched == patched
        sanitizer.uninstall()
        sanitizer.uninstall()


class TestFloatSanCli:
    def test_run_parser_accepts_floatsan(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["run", "--floatsan"])
        assert args.floatsan is True
        args = build_parser().parse_args(["run"])
        assert args.floatsan is False


class TestSeededPairwiseMerge:
    """One seeded bug, caught by both halves of the contract.

    A tree-shaped (pairwise) merge changes float association, so it is
    exactly what TL034 bans statically and what FloatSan's permuted
    replay detects at runtime.
    """

    PAIRWISE = ("# totolint: merge-fn=insensitive\n"
                "def merge_totals(parts):\n"
                "    if len(parts) == 1:\n"
                "        return parts[0]\n"
                "    mid = len(parts) // 2\n"
                "    return (merge_totals(parts[:mid])\n"
                "            + merge_totals(parts[mid:]))\n")

    def test_static_rule_flags_the_tree_merge(self):
        report = lint_source(self.PAIRWISE, path=FLEET,
                             rules=get_rules(["TL034"]))
        assert codes(report) == ["TL034", "TL034"]
        assert "self-recursion" in report.violations[0].message

    def test_floatsan_replay_catches_the_same_bug(self):
        sanitizer = FloatSan({})
        wrapped = sanitizer._wrap("merge_totals", "insensitive",
                                  _pairwise)
        # Pairwise: 1.0 + (1e16 + -1e16) = 1.0; reversed the small
        # operand is absorbed and the result collapses to 0.0.
        assert wrapped(DIVERGENT) == 1.0
        assert len(sanitizer.divergences) == 1
        assert sanitizer.divergences[0].permutation == "reversed"


class TestMergeOrderProperty:
    """The invariant the registry exists to protect, stated directly:
    feeding spec order makes the merge independent of completion order.
    """

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=-1e12, max_value=1e12,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_spec_ordered_merge_is_shard_permutation_invariant(
            self, values, seed):
        summaries = [_summary(index, value)
                     for index, value in enumerate(values)]
        shuffled = list(summaries)
        random.Random(seed).shuffle(shuffled)
        # What the parent does with completion-ordered worker results:
        # restore spec order (the zero-padded name), then fold.
        restored = sorted(shuffled, key=lambda summary: summary.name)
        assert _result_bits(merge_summaries(restored)) \
            == _result_bits(merge_summaries(summaries))
        assert _result_bits(merge_frames(restored)) \
            == _result_bits(merge_frames(summaries))
        assert fleet_digest(restored) == fleet_digest(summaries)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_pairwise_association_breaks_the_invariant(self, seed):
        # The counterexample the property would miss if the registered
        # helpers folded pairwise: association alone changes the bits.
        assert _left_fold(DIVERGENT) == 0.0
        assert _pairwise(DIVERGENT) == 1.0
        shuffled = list(DIVERGENT)
        random.Random(seed).shuffle(shuffled)
        assert _left_fold(sorted(shuffled)) \
            == _left_fold(sorted(DIVERGENT))
