"""The fault injector: every fault type fires at its scheduled time,
for its scheduled duration, against its scheduled target — and an
identical chaos run is byte-identical across processes and executors.
"""

import hashlib
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chaos import (
    BackoffPolicy,
    ChaosConfig,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    probe_through_backoff,
)
from repro.errors import (
    AdmissionRejected,
    FaultSpecError,
    NamingUnavailableError,
    RetryBudgetExceeded,
)
from repro.experiments.scenarios import chaos_profile, chaos_scenario
from repro.parallel import SweepExecutor
from repro.rng import RngRegistry
from repro.units import HOUR, MINUTE

from tests.conftest import make_ring

pytestmark = pytest.mark.chaos

REPO = Path(__file__).resolve().parent.parent


def make_injector(kernel, ring, specs, backoff=None, pm=None):
    injector = FaultInjector(kernel, ring,
                             FaultSchedule(specs=tuple(specs)), ring.rng,
                             backoff=backoff, population_manager=pm)
    injector.install()
    injector.start()
    return injector


class TestFaultSpecValidation:
    def test_rejects_bad_offsets_durations_targets(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(kind=FaultKind.NODE_CRASH, at=-1, duration=60)
        with pytest.raises(FaultSpecError):
            FaultSpec(kind=FaultKind.NODE_CRASH, at=0, duration=0)
        with pytest.raises(FaultSpecError):
            FaultSpec(kind=FaultKind.NODE_CRASH, at=0, duration=60, target=-2)
        with pytest.raises(FaultSpecError):
            # Only node-targeted kinds accept a target.
            FaultSpec(kind=FaultKind.NAMING_OUTAGE, at=0, duration=60,
                      target=1)

    def test_schedule_sorts_and_counts(self):
        schedule = FaultSchedule(specs=(
            FaultSpec(kind=FaultKind.PM_STALL, at=500, duration=60),
            FaultSpec(kind=FaultKind.NODE_CRASH, at=100, duration=60,
                      target=1),
            FaultSpec(kind=FaultKind.NODE_CRASH, at=100, duration=60,
                      target=0),
        ))
        assert [spec.at for spec in schedule.specs] == [100, 100, 500]
        assert [spec.target for spec in schedule.specs] == [0, 1, None]
        assert schedule.counts() == {"node-crash": 2, "pm-stall": 1}
        assert len(schedule.by_kind(FaultKind.NODE_CRASH)) == 2


class TestBackoffPolicy:
    def test_delays_grow_and_cap(self):
        policy = BackoffPolicy(base_delay=2.0, multiplier=2.0,
                               max_delay=10.0, max_retries=6, jitter=0.0)
        rng = RngRegistry(1).stream("t")
        delays = [policy.delay(attempt, rng) for attempt in range(5)]
        assert delays == [2.0, 4.0, 8.0, 10.0, 10.0]

    def test_jitter_stays_within_band(self):
        policy = BackoffPolicy(base_delay=10.0, multiplier=1.0,
                               max_delay=10.0, jitter=0.25)
        rng = RngRegistry(7).stream("t")
        for attempt in range(50):
            assert 7.5 <= policy.delay(attempt, rng) <= 12.5

    def test_probe_succeeds_when_window_ends(self):
        policy = BackoffPolicy(jitter=0.0)
        rng = RngRegistry(1).stream("t")
        result = probe_through_backoff(policy, 0.0, rng,
                                       active_at=lambda t: t < 5.0)
        assert result.succeeded
        assert 1 <= result.retries <= policy.max_retries

    def test_probe_exhausts_on_long_window(self):
        policy = BackoffPolicy(jitter=0.0)
        rng = RngRegistry(1).stream("t")
        result = probe_through_backoff(policy, 0.0, rng,
                                       active_at=lambda t: True)
        assert not result.succeeded
        assert result.retries == policy.max_retries
        assert result.waited <= policy.max_wait

    def test_rejects_invalid_policies(self):
        with pytest.raises(FaultSpecError):
            BackoffPolicy(base_delay=0.0)
        with pytest.raises(FaultSpecError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(FaultSpecError):
            BackoffPolicy(max_retries=-1)


class TestMaterialize:
    CONFIG = ChaosConfig(profile="t", node_crashes=3, naming_outages=2,
                         rpc_loss_windows=2, pm_stalls=1)

    def test_counts_offsets_and_targets(self):
        schedule = self.CONFIG.materialize(2 * HOUR, node_count=4,
                                           rng_registry=RngRegistry(9))
        assert schedule.counts() == {"node-crash": 3, "naming-outage": 2,
                                     "rpc-loss": 2, "pm-stall": 1}
        for spec in schedule.specs:
            assert 0 <= spec.at < 2 * HOUR
            if spec.kind is FaultKind.NODE_CRASH:
                assert spec.target in (0, 1, 2, 3)
            else:
                assert spec.target is None

    def test_same_seed_materializes_identically(self):
        first = self.CONFIG.materialize(2 * HOUR, 4, RngRegistry(9))
        second = self.CONFIG.materialize(2 * HOUR, 4, RngRegistry(9))
        assert first == second

    def test_kinds_draw_from_independent_streams(self):
        """Adding crashes to a profile must not move its naming outages."""
        import dataclasses
        more_crashes = dataclasses.replace(self.CONFIG, node_crashes=9)
        base = self.CONFIG.materialize(2 * HOUR, 4, RngRegistry(9))
        grown = more_crashes.materialize(2 * HOUR, 4, RngRegistry(9))
        assert base.by_kind(FaultKind.NAMING_OUTAGE) \
            == grown.by_kind(FaultKind.NAMING_OUTAGE)
        assert base.by_kind(FaultKind.PM_STALL) \
            == grown.by_kind(FaultKind.PM_STALL)

    def test_extra_specs_ride_along(self):
        config = ChaosConfig(profile="t", extra_specs=(
            FaultSpec(kind=FaultKind.NODE_CRASH, at=60, duration=120,
                      target=3),))
        schedule = config.materialize(HOUR, 4, RngRegistry(9))
        assert schedule.by_kind(FaultKind.NODE_CRASH)[0].target == 3


class TestNodeCrashFault:
    def test_fires_at_time_for_duration_against_target(self, kernel,
                                                       rng_registry):
        ring = make_ring(kernel, rng_registry)
        injector = make_injector(kernel, ring, [
            FaultSpec(kind=FaultKind.NODE_CRASH, at=100, duration=200,
                      target=2)])
        kernel.run_until(150)
        assert not ring.cluster.node(2).available
        assert injector.telemetry.node_crashes_applied == 1
        assert injector.telemetry.faults_injected == 1
        kernel.run_until(400)
        assert ring.cluster.node(2).available
        assert injector.telemetry.node_restores == 1

    def test_crash_displaces_replicas(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        database = ring.control_plane.create_database(
            slo_name="BC_Gen5_2", now=0, initial_data_gb=4.0)
        primary_node = ring.cluster.service(database.db_id).primary.node_id
        injector = make_injector(kernel, ring, [
            FaultSpec(kind=FaultKind.NODE_CRASH, at=100, duration=600,
                      target=primary_node)])
        kernel.run_until(200)
        assert injector.telemetry.node_crashes_applied == 1
        # The primary's replica either failed over immediately or is
        # pending (anti-affinity can leave no target on a 4-node ring).
        displaced = (len(ring.cluster.failovers)
                     + ring.cluster.pending_replicas)
        assert displaced >= 1
        ring.cluster.validate_invariants()


class TestNamingFaults:
    def test_outage_exhausts_retry_budget(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        naming = ring.cluster.naming
        naming.put("k", 1)
        injector = make_injector(kernel, ring, [
            FaultSpec(kind=FaultKind.NAMING_OUTAGE, at=0, duration=HOUR)])
        with pytest.raises(NamingUnavailableError):
            naming.get("k")
        with pytest.raises(NamingUnavailableError):
            naming.put("k", 2)
        telemetry = injector.telemetry
        assert telemetry.naming_unavailable_errors == 2
        assert telemetry.retries \
            == telemetry.probes * injector.backoff.max_retries

    def test_short_outage_clears_within_backoff(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        naming = ring.cluster.naming
        naming.put("k", 1)
        injector = make_injector(
            kernel, ring,
            [FaultSpec(kind=FaultKind.NAMING_OUTAGE, at=0, duration=5)],
            backoff=BackoffPolicy(jitter=0.0))
        assert naming.get("k") == 1  # retried past the 5s window
        assert injector.telemetry.naming_unavailable_errors == 0
        assert injector.telemetry.retries >= 1

    def test_stale_window_serves_snapshot(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        naming = ring.cluster.naming
        naming.put("k", "old")
        injector = make_injector(kernel, ring, [
            FaultSpec(kind=FaultKind.NAMING_STALE, at=100, duration=100)])
        kernel.run_until(150)
        naming.put("k", "new")          # writes hit the live store
        assert naming.get("k") == "old"  # reads see the snapshot
        assert naming.version("k") == 1
        assert injector.telemetry.naming_stale_reads >= 1
        kernel.run_until(250)            # window over
        assert naming.get("k") == "new"
        assert naming.version("k") == 2


class TestControlPlaneFaults:
    def test_create_times_out_as_redirect(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        injector = make_injector(kernel, ring, [
            FaultSpec(kind=FaultKind.CONTROL_PLANE, at=0, duration=HOUR)])
        with pytest.raises(AdmissionRejected):
            ring.control_plane.create_database(
                slo_name="GP_Gen5_2", now=0, initial_data_gb=1.0)
        assert ring.control_plane.redirects[-1].reason \
            == "chaos-create-timeout"
        assert injector.telemetry.creates_timed_out == 1

    def test_drop_is_deferred_and_database_survives(self, kernel,
                                                    rng_registry):
        ring = make_ring(kernel, rng_registry)
        database = ring.control_plane.create_database(
            slo_name="GP_Gen5_2", now=0, initial_data_gb=1.0)
        injector = make_injector(kernel, ring, [
            FaultSpec(kind=FaultKind.CONTROL_PLANE, at=0, duration=HOUR)])
        with pytest.raises(RetryBudgetExceeded):
            ring.control_plane.drop_database(database.db_id, now=0)
        assert database.is_active
        assert ring.control_plane.active_count() == 1
        assert injector.telemetry.drops_deferred == 1


class TestRpcAndPmFaults:
    def test_rpc_loss_targets_one_node(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        injector = make_injector(kernel, ring, [
            FaultSpec(kind=FaultKind.RPC_LOSS, at=0, duration=600,
                      target=1)])
        assert injector.rpc_gate(node_id=1, now=10) is False
        assert injector.rpc_gate(node_id=0, now=10) is True
        assert injector.rpc_gate(node_id=1, now=700) is True  # window over
        assert injector.telemetry.rpc_reports_lost == 1

    def test_rpc_latency_delivers_after_retries(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        injector = make_injector(
            kernel, ring,
            [FaultSpec(kind=FaultKind.RPC_LATENCY, at=0, duration=5)],
            backoff=BackoffPolicy(jitter=0.0))
        assert injector.rpc_gate(node_id=0, now=0) is True
        assert injector.telemetry.rpc_reports_delayed == 1
        assert injector.telemetry.retries >= 1

    def test_pm_stall_window(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        injector = make_injector(kernel, ring, [
            FaultSpec(kind=FaultKind.PM_STALL, at=HOUR,
                      duration=2 * HOUR)])
        assert injector.population_gate(30 * MINUTE) is False
        assert injector.population_gate(90 * MINUTE) is True
        assert injector.population_gate(4 * HOUR) is False
        assert injector.telemetry.pm_ticks_stalled == 1

    def test_finish_disarms_every_gate(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        naming = ring.cluster.naming
        naming.put("k", 1)
        injector = make_injector(kernel, ring, [
            FaultSpec(kind=FaultKind.NAMING_OUTAGE, at=0, duration=HOUR),
            FaultSpec(kind=FaultKind.RPC_LOSS, at=0, duration=HOUR),
            FaultSpec(kind=FaultKind.PM_STALL, at=0, duration=HOUR)])
        injector.finish()
        assert naming.get("k") == 1
        assert injector.rpc_gate(node_id=0, now=10) is True
        assert injector.population_gate(10) is False


# ---------------------------------------------------------------------------
# Determinism of full chaos runs


def tiny_chaos_scenarios(densities=(1.0, 1.2)):
    return [chaos_scenario("moderate", density=density, days=0.05)
            for density in densities]


def digest(results):
    payload = pickle.dumps(
        [(result.scenario.name, result.kpis, result.revenue)
         for result in results],
        protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(payload).hexdigest()


class TestChaosDeterminism:
    def test_two_runs_byte_identical(self):
        scenarios = tiny_chaos_scenarios([1.1])
        first = SweepExecutor(max_workers=1).run(scenarios)
        second = SweepExecutor(max_workers=1).run(scenarios)
        assert first[0].kpis.chaos is not None
        assert first[0].kpis.chaos.faults_injected > 0
        assert digest(first) == digest(second)

    def test_serial_and_pool_byte_identical(self):
        scenarios = tiny_chaos_scenarios()
        serial = SweepExecutor(max_workers=1).run(scenarios)
        pooled = SweepExecutor(max_workers=2).run(scenarios)
        assert digest(serial) == digest(pooled)


_SUBPROCESS_TEMPLATE = """\
import hashlib, pickle, sys
from repro.experiments.scenarios import chaos_scenario
from repro.parallel import SweepExecutor
scenarios = [chaos_scenario("moderate", density=d, days=0.05)
             for d in (1.0, 1.2)]
results = SweepExecutor(max_workers=1).run(scenarios)
payload = pickle.dumps(
    [(r.scenario.name, r.kpis, r.revenue) for r in results],
    protocol=pickle.HIGHEST_PROTOCOL)
sys.stdout.write(hashlib.sha256(payload).hexdigest())
"""


class TestChaosCrossProcess:
    def test_two_fresh_interpreters_agree(self):
        def run_once():
            proc = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_TEMPLATE],
                capture_output=True, text=True,
                env={"PYTHONPATH": str(REPO / "src"),
                     "PYTHONHASHSEED": "random"},
                check=False)
            assert proc.returncode == 0, proc.stderr
            return proc.stdout.strip()

        assert run_once() == run_once()
