"""Tests for the run-observability layer (repro.obs)."""

import json

import pytest

from repro.core.runner import run_scenario
from repro.core.scenario import BenchmarkScenario
from repro.experiments.scenarios import chaos_scenario
from repro.obs import (
    RUN_METRIC_NAMES,
    EventProfiler,
    MetricRegistry,
    ObsConfig,
    ObsSession,
    SpanTracer,
    build_manifest,
    format_profile_report,
    wire_run_metrics,
    write_obs_export,
)
from repro.obs.export import ObsExport
from repro.obs.metrics import MetricRegistryError, MetricStream
from repro.parallel.executor import SweepExecutor
from repro.simkernel import SimulationKernel
from repro.sqldb.population import InitialPopulationSpec
from repro.sqldb.tenant_ring import TenantRingConfig
from repro.telemetry.collector import TelemetryCollector
from repro.units import HOUR
from tests.conftest import SMALL_CAPACITIES, make_ring

ALL_ON = ObsConfig(trace=True, metrics=True, profile=True)


def obs_scenario(tiny_document, hours=4, seed=11, obs=ALL_ON, **kwargs):
    return BenchmarkScenario(
        name="test-obs",
        model_document=tiny_document,
        seed=seed,
        duration=hours * HOUR,
        ring=TenantRingConfig(node_count=6,
                              base_capacities=SMALL_CAPACITIES),
        initial_population=InitialPopulationSpec(
            gp_count=30, bc_count=6,
            target_core_fraction=0.7, target_disk_fraction=0.6),
        bootstrap_settle=HOUR,
        obs=obs,
        **kwargs)


def _observed_kernel(config=ALL_ON):
    session = ObsSession(config)
    return SimulationKernel(observer=session.kernel_observer), session


class TestSpanTracer:
    def test_meta_line_first(self):
        tracer = SpanTracer()
        lines = tracer.render().splitlines()
        assert json.loads(lines[0]) == {"type": "meta", "schema": 1}

    def test_parent_links_schedule_site_to_fire_site(self):
        kernel, session = _observed_kernel(ObsConfig(trace=True))

        def outer() -> None:
            kernel.schedule_after(60, inner, label="inner")

        def inner() -> None:
            pass

        kernel.schedule(10, outer, label="outer")
        kernel.run_to_completion()
        spans = {record["label"]: record
                 for record in map(json.loads, session.render()
                                   .trace_jsonl.splitlines())
                 if record["type"] == "span"}
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["inner"]["t_sched"] == 10
        assert spans["inner"]["t_fire"] == 70

    def test_mark_parented_to_current_span(self):
        kernel, session = _observed_kernel(ObsConfig(trace=True))

        def fires() -> None:
            session.tracer.mark("gate-hit", kernel.now)

        kernel.schedule(5, fires, label="firing")
        kernel.run_to_completion()
        records = [json.loads(line) for line in
                   session.render().trace_jsonl.splitlines()]
        marks = [r for r in records if r["type"] == "mark"]
        spans = [r for r in records if r["type"] == "span"]
        assert marks[0]["parent"] == spans[0]["id"]
        assert marks[0]["t"] == 5
        # Marks are emitted inside the span, so they precede it (the
        # span record is written when the callback returns).
        assert records.index(marks[0]) < records.index(spans[0])

    def test_lazy_labels_resolved(self):
        kernel, session = _observed_kernel(ObsConfig(trace=True))
        kernel.schedule(1, lambda: None, label=lambda: "lazy-label-7")
        kernel.run_to_completion()
        assert '"label":"lazy-label-7"' in session.render().trace_jsonl

    def test_span_ids_in_execution_order(self):
        kernel, session = _observed_kernel(ObsConfig(trace=True))
        for offset in (30, 10, 20):
            kernel.schedule(offset, lambda: None, label=f"e{offset}")
        kernel.run_to_completion()
        spans = [json.loads(line) for line in
                 session.render().trace_jsonl.splitlines()][1:]
        assert [s["label"] for s in spans] == ["e10", "e20", "e30"]
        assert [s["id"] for s in spans] == [1, 2, 3]


class TestEventProfiler:
    def run_three_events(self, clock=None):
        session = ObsSession(ObsConfig(profile=True, wall_clock=clock))
        kernel = SimulationKernel(observer=session.kernel_observer)
        kernel.schedule(0, lambda: None, label="tick")
        kernel.schedule(30, lambda: None, label="tick")
        kernel.schedule(7200, lambda: None, label="slow")
        kernel.run_to_completion()
        return session.profiler

    def test_delay_histogram(self):
        profiler = self.run_three_events()
        payload = json.loads(profiler.to_json())
        tick = payload["labels"]["tick"]
        assert tick["count"] == 2
        assert tick["vdelay_total_s"] == 30
        assert tick["vdelay_max_s"] == 30
        assert tick["vdelay_buckets"]["le_0"] == 1
        assert tick["vdelay_buckets"]["le_60"] == 1
        slow = payload["labels"]["slow"]
        assert slow["vdelay_buckets"]["le_14400"] == 1

    def test_export_has_no_wall_times(self):
        ticks = iter(range(100))
        profiler = self.run_three_events(clock=lambda: float(next(ticks)))
        assert "wall" not in profiler.to_json()

    def test_report_wall_columns_only_with_clock(self):
        without = self.run_three_events().format_report()
        assert "wall ms" not in without
        ticks = iter(range(100))
        with_clock = self.run_three_events(
            clock=lambda: float(next(ticks))).format_report()
        assert "wall ms" in with_clock

    def test_format_profile_report_from_export(self):
        report = format_profile_report(self.run_three_events().to_json(),
                                       top=1)
        assert "tick" in report
        assert "slow" not in report  # top=1 keeps only the busiest


class TestMetricRegistry:
    def test_name_validation(self):
        registry = MetricRegistry()
        with pytest.raises(MetricRegistryError):
            registry.gauge("reserved_cores", "no prefix", lambda: 0.0)
        with pytest.raises(MetricRegistryError):
            registry.counter("toto_things", "no _total", lambda: 0.0)
        with pytest.raises(MetricRegistryError):
            registry.gauge("toto_things_total", "gauge w/ _total",
                           lambda: 0.0)

    def test_duplicate_rejected(self):
        registry = MetricRegistry()
        registry.gauge("toto_x", "first", lambda: 1.0)
        with pytest.raises(MetricRegistryError):
            registry.gauge("toto_x", "again", lambda: 2.0)

    def test_prometheus_format(self):
        registry = MetricRegistry()
        registry.counter("toto_widgets_total", "Widgets.", lambda: 3)
        text = registry.to_prometheus()
        assert "# HELP toto_widgets_total Widgets.\n" in text
        assert "# TYPE toto_widgets_total counter\n" in text
        assert "toto_widgets_total 3.0" in text

    def test_run_catalogue_matches_pinned_names(self, kernel,
                                                rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        registry = MetricRegistry()
        wire_run_metrics(registry, kernel, ring, collector)
        assert registry.names() == RUN_METRIC_NAMES

    def test_stream_samples_ride_frames(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        registry = MetricRegistry()
        wire_run_metrics(registry, kernel, ring, collector)
        stream = MetricStream(registry)
        collector.add_frame_listener(stream.on_frame)
        collector.start()
        kernel.run_until(2 * HOUR + 1)
        assert stream.samples == len(collector.frames) == 3
        sample = json.loads(stream.render().splitlines()[-1])
        assert sample["hour"] == 2
        assert sample["metrics"]["toto_kernel_events_executed_total"] >= 0


class TestObservedRunIsPassive:
    def test_kpis_and_events_byte_identical(self, tiny_document):
        plain = run_scenario(obs_scenario(tiny_document, obs=None))
        observed = run_scenario(obs_scenario(tiny_document))
        assert observed.kpis == plain.kpis
        assert observed.frames == plain.frames
        assert observed.events_executed == plain.events_executed
        assert plain.obs is None

    def test_span_per_executed_event(self, tiny_document):
        result = run_scenario(obs_scenario(tiny_document))
        records = [json.loads(line)
                   for line in result.obs.trace_jsonl.splitlines()]
        spans = [r for r in records if r["type"] == "span"]
        assert len(spans) == result.events_executed

    def test_chaos_golden_run_unperturbed_and_marked(self):
        scenario = chaos_scenario("moderate", density=1.1, days=0.25)
        plain = run_scenario(scenario)
        observed = run_scenario(scenario.with_obs(ALL_ON))
        assert observed.kpis == plain.kpis
        assert observed.events_executed == plain.events_executed
        marks = [json.loads(line)
                 for line in observed.obs.trace_jsonl.splitlines()
                 if '"mark"' in line]
        assert marks, "a moderate chaos run should hit at least one gate"
        assert all(m["label"].startswith("chaos-") for m in marks)

    def test_detsan_clean_with_obs(self, tiny_document):
        from repro.analysis.detsan import verify_run
        _, report = verify_run(obs_scenario(tiny_document, hours=3))
        assert report.ok, report.format()

    def test_serial_vs_pooled_exports_byte_identical(self, tiny_document):
        scenarios = [obs_scenario(tiny_document, hours=3, seed=seed)
                     for seed in (11, 12)]
        serial = SweepExecutor(max_workers=1).run(scenarios)
        pooled = SweepExecutor(max_workers=2).run(scenarios)
        for left, right in zip(serial, pooled):
            assert left.obs == right.obs
            assert left.obs.trace_jsonl == right.obs.trace_jsonl
            assert left.obs.metrics_jsonl == right.obs.metrics_jsonl
            assert left.obs.metrics_prom == right.obs.metrics_prom
            assert left.obs.profile_json == right.obs.profile_json
            assert left.kpis == right.kpis


class TestExportAndManifest:
    def test_write_obs_export(self, tiny_document, tmp_path):
        scenario = obs_scenario(tiny_document, hours=2)
        result = run_scenario(scenario)
        written = write_obs_export(result.obs, tmp_path, scenario,
                                   git="test-rev")
        names = [path.name for path in written]
        assert names == ["trace.jsonl", "metrics.jsonl", "metrics.prom",
                         "profile.json", "manifest.json"]
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["scenario"]["seed"] == scenario.seed
        assert manifest["code"]["git_describe"] == "test-rev"
        import hashlib
        trace_sha = hashlib.sha256(
            (tmp_path / "trace.jsonl").read_bytes()).hexdigest()
        assert manifest["artifacts"]["trace.jsonl"] == trace_sha

    def test_manifest_is_deterministic(self, tiny_document):
        scenario = obs_scenario(tiny_document)
        export = ObsExport(trace_jsonl="{}\n")
        a = build_manifest(scenario, export, git="rev")
        b = build_manifest(scenario, export, git="rev")
        assert json.dumps(a, sort_keys=True) == json.dumps(b,
                                                           sort_keys=True)
        assert "timestamp" not in json.dumps(a)

    def test_partial_export_artifacts(self):
        export = ObsExport(metrics_prom="toto_x 1.0\n")
        assert export.artifacts() == {"metrics.prom": "toto_x 1.0\n"}

    def test_manifest_records_chaos_profile(self, tiny_document):
        scenario = chaos_scenario("light", days=0.25).with_obs(ALL_ON)
        manifest = build_manifest(scenario, ObsExport(), git="rev")
        assert manifest["scenario"]["chaos_profile"] == "light"


class TestObsConfig:
    def test_enabled_flags(self):
        assert not ObsConfig().enabled
        assert ObsConfig(trace=True).enabled
        assert ObsConfig(metrics=True).enabled
        assert ObsConfig(profile=True).enabled

    def test_kernel_observer_only_when_needed(self):
        # Metrics-only sessions ride telemetry frames; the kernel hot
        # loop must stay on its unobserved fast path.
        assert ObsSession(ObsConfig(metrics=True)).kernel_observer is None
        assert ObsSession(
            ObsConfig(trace=True)).kernel_observer is not None
        assert ObsSession(
            ObsConfig(profile=True)).kernel_observer is not None

    def test_with_obs_keeps_name(self, tiny_document):
        scenario = obs_scenario(tiny_document, obs=None)
        assert scenario.with_obs(ALL_ON).name == scenario.name
