"""Tests for the deterministic RNG registry."""

import numpy as np
import pytest

from repro.rng import RngRegistry


class TestStreamIdentity:
    def test_same_name_same_object(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_different_names_different_objects(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is not registry.stream("b")

    def test_multi_token_names(self):
        registry = RngRegistry(1)
        assert registry.stream("node", 3) is registry.stream("node", 3)
        assert registry.stream("node", 3) is not registry.stream("node", 4)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RngRegistry(42).stream("x").random(5)
        b = RngRegistry(42).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_seed_different_draws(self):
        a = RngRegistry(42).stream("x").random(5)
        b = RngRegistry(43).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_streams_independent_of_creation_order(self):
        first = RngRegistry(7)
        __ = first.stream("early").random(100)
        late = first.stream("late").random(3)

        second = RngRegistry(7)
        late_only = second.stream("late").random(3)
        assert np.array_equal(late, late_only)

    def test_int_and_string_tokens_distinct(self):
        registry = RngRegistry(7)
        assert registry.stream("a", 1) is not registry.stream("a", "1")


class TestDerivedSeeds:
    def test_derive_seed_stable(self):
        assert (RngRegistry(9).derive_seed("plb")
                == RngRegistry(9).derive_seed("plb"))

    def test_derive_seed_varies_by_name(self):
        registry = RngRegistry(9)
        assert registry.derive_seed("a") != registry.derive_seed("b")

    def test_fork_is_deterministic(self):
        a = RngRegistry(5).fork("child").stream("s").random(4)
        b = RngRegistry(5).fork("child").stream("s").random(4)
        assert np.array_equal(a, b)

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(5)
        child = parent.fork("child")
        assert child.root_seed != parent.root_seed
