"""Tests for the control plane: admission, redirects, CRUD."""

import pytest

from repro.errors import AdmissionRejected, UnknownDatabaseError
from repro.sqldb.editions import Edition
from tests.conftest import make_ring


@pytest.fixture
def ring(kernel, rng_registry):
    return make_ring(kernel, rng_registry, node_count=4)


class TestCreate:
    def test_create_places_replicas(self, ring):
        db = ring.control_plane.create_database("BC_Gen5_2", now=0,
                                                initial_data_gb=40.0)
        record = ring.cluster.service(db.db_id)
        assert len(record.replicas) == 4
        assert ring.cluster.reserved_cores() == 8.0

    def test_db_ids_sequential(self, ring):
        a = ring.control_plane.create_database("GP_Gen5_2", 0, 10.0)
        b = ring.control_plane.create_database("GP_Gen5_2", 0, 10.0)
        assert a.db_id != b.db_id

    def test_flags_stored(self, ring):
        db = ring.control_plane.create_database(
            "BC_Gen5_2", now=0, initial_data_gb=40.0,
            high_initial_growth=True, initial_growth_total_gb=120.0,
            rapid_growth=True)
        assert db.high_initial_growth
        assert db.initial_growth_total_gb == 120.0
        assert db.rapid_growth

    def test_creation_listener_fires(self, ring):
        seen = []
        ring.control_plane.add_creation_listener(seen.append)
        db = ring.control_plane.create_database("GP_Gen5_2", 0, 10.0)
        assert seen == [db]


class TestRedirects:
    def test_core_exhaustion_redirects(self, ring):
        # 4 nodes x 32 cores = 128 total; fill with 30-core... use GP_32.
        for _ in range(4):
            ring.control_plane.create_database("GP_Gen5_32", 0, 10.0)
        with pytest.raises(AdmissionRejected):
            ring.control_plane.create_database("GP_Gen5_2", 0, 10.0)
        redirects = ring.control_plane.redirects
        assert len(redirects) == 1
        assert redirects[0].reason == "insufficient-cluster-cores"

    def test_placement_infeasible_redirects(self, ring):
        # Plenty of core budget, but every node's disk is nearly full:
        # the next big-disk create fails placement, not admission.
        ring.control_plane.create_database("BC_Gen5_2", 0,
                                           initial_data_gb=900.0)
        with pytest.raises(AdmissionRejected):
            ring.control_plane.create_database("BC_Gen5_2", 0,
                                               initial_data_gb=500.0)
        assert ring.control_plane.redirects[-1].reason == \
            "placement-infeasible"

    def test_redirect_records_request_shape(self, ring):
        for _ in range(4):
            ring.control_plane.create_database("GP_Gen5_32", 0, 10.0)
        with pytest.raises(AdmissionRejected):
            ring.control_plane.create_database("BC_Gen5_4", 0, 10.0)
        redirect = ring.control_plane.redirects[-1]
        assert redirect.requested_cores == 16
        assert redirect.edition is Edition.PREMIUM_BC

    def test_redirected_db_not_registered(self, ring):
        for _ in range(4):
            ring.control_plane.create_database("GP_Gen5_32", 0, 10.0)
        count_before = len(ring.control_plane.all_databases())
        with pytest.raises(AdmissionRejected):
            ring.control_plane.create_database("GP_Gen5_8", 0, 10.0)
        assert len(ring.control_plane.all_databases()) == count_before


class TestDrop:
    def test_drop_frees_and_marks(self, ring):
        db = ring.control_plane.create_database("GP_Gen5_4", 0, 10.0)
        ring.control_plane.drop_database(db.db_id, now=100)
        assert not db.is_active
        assert ring.cluster.reserved_cores() == 0.0
        assert not ring.cluster.has_service(db.db_id)

    def test_drop_unknown_raises(self, ring):
        with pytest.raises(UnknownDatabaseError):
            ring.control_plane.drop_database("nope", now=0)

    def test_drop_clears_persisted_loads(self, ring):
        db = ring.control_plane.create_database("BC_Gen5_2", 0, 40.0)
        naming = ring.cluster.naming
        naming.put(f"toto/load/{db.db_id}/disk-gb", 44.0)
        ring.control_plane.drop_database(db.db_id, now=10)
        assert not naming.exists(f"toto/load/{db.db_id}/disk-gb")

    def test_drop_listener_receives_replica_ids(self, ring):
        seen = []
        ring.control_plane.add_drop_listener(
            lambda db: seen.extend(db.dropped_replica_ids))
        db = ring.control_plane.create_database("BC_Gen5_2", 0, 40.0)
        ring.control_plane.drop_database(db.db_id, now=10)
        assert len(seen) == 4

    def test_active_filters(self, ring):
        gp = ring.control_plane.create_database("GP_Gen5_2", 0, 10.0)
        bc = ring.control_plane.create_database("BC_Gen5_2", 0, 40.0)
        assert ring.control_plane.active_count() == 2
        assert ring.control_plane.active_count(Edition.PREMIUM_BC) == 1
        ring.control_plane.drop_database(bc.db_id, now=5)
        assert ring.control_plane.active_count(Edition.PREMIUM_BC) == 0
        assert ring.control_plane.active_databases() == [gp]


class TestDowntimeAccounting:
    def test_capacity_failover_books_whole_minutes(self, ring, kernel):
        from repro.fabric.failover import FailoverRecord, \
            REASON_CAPACITY_VIOLATION
        from repro.fabric.replica import ReplicaRole
        db = ring.control_plane.create_database("GP_Gen5_2", 0, 10.0)
        record = FailoverRecord(
            time=10, service_id=db.db_id, replica_id=1,
            role=ReplicaRole.PRIMARY, from_node=0, to_node=1,
            metric="disk-gb", cores_moved=2.0, disk_moved_gb=8.0,
            downtime_seconds=42.0, rebuild_seconds=0.0,
            reason=REASON_CAPACITY_VIOLATION)
        ring.control_plane._on_failover(record)
        assert db.downtime_seconds == 60.0

    def test_planned_move_books_actual_seconds(self, ring):
        from repro.fabric.failover import FailoverRecord, REASON_MAKE_ROOM
        from repro.fabric.replica import ReplicaRole
        db = ring.control_plane.create_database("GP_Gen5_2", 0, 10.0)
        record = FailoverRecord(
            time=10, service_id=db.db_id, replica_id=1,
            role=ReplicaRole.PRIMARY, from_node=0, to_node=1,
            metric="cpu-cores", cores_moved=2.0, disk_moved_gb=8.0,
            downtime_seconds=3.0, rebuild_seconds=0.0,
            reason=REASON_MAKE_ROOM)
        ring.control_plane._on_failover(record)
        assert db.downtime_seconds == 3.0

    def test_zero_downtime_not_booked(self, ring):
        from repro.fabric.failover import FailoverRecord, \
            REASON_CAPACITY_VIOLATION
        from repro.fabric.replica import ReplicaRole
        db = ring.control_plane.create_database("BC_Gen5_2", 0, 40.0)
        record = FailoverRecord(
            time=10, service_id=db.db_id, replica_id=2,
            role=ReplicaRole.SECONDARY, from_node=0, to_node=1,
            metric="disk-gb", cores_moved=2.0, disk_moved_gb=40.0,
            downtime_seconds=0.0, rebuild_seconds=100.0,
            reason=REASON_CAPACITY_VIOLATION)
        ring.control_plane._on_failover(record)
        assert db.downtime_seconds == 0.0
        assert db.failover_count == 0
