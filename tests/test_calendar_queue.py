"""Calendar-queue regression and order-equivalence tests.

The bucketed calendar queue (repro.simkernel.event) replaced the
binary heap; these tests pin down the two properties the swap must
preserve:

* sizing stays exact through interleaved cancellation and
  debris-compaction cycles (the counters are maintained inline on the
  hot paths, so an off-by-one would drift silently);
* events fire in exactly the old heap's ``(time, sequence)`` order,
  including handle-free one-shot entries, pre-run cancellations, and
  callbacks that schedule more work mid-run — checked against a plain
  ``heapq`` reference model under hypothesis-generated workloads.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import SimulationKernel
from repro.simkernel.event import EventQueue


class TestPendingAccountingUnderCancelCompaction:
    """`len(queue)` / `pending_events` through cancel + compact cycles."""

    def test_queue_len_through_interleaved_cancel_and_compaction(self):
        queue = EventQueue()
        handles = {}
        for i in range(300):
            handles[i] = queue.push(i % 10, lambda: None, label=f"e{i}")
        live = set(handles)
        assert len(queue) == 300
        assert queue.entries_pending == 300
        assert queue.cancelled_pending == 0

        for cycle in range(4):
            # Cancel a stride of the surviving handles; once debris
            # crosses COMPACT_MIN and outnumbers live entries the
            # queue compacts behind our back — accounting must not
            # notice either way.
            victims = sorted(live)[::3]
            for i in victims:
                handles[i].cancel()
                live.discard(i)
            assert len(queue) == len(live)
            assert (queue.entries_pending - queue.cancelled_pending
                    == len(queue))

            # Pop a few live events; pop() skips debris and must keep
            # all three counters consistent while doing so.
            for _ in range(15):
                event = queue.pop()
                if event is None:
                    break
                assert event.callback is not None
                live.discard(event.sequence)
            assert len(queue) == len(live)

        # Explicit compaction with the front cursor mid-bucket: all
        # debris drains, live count is untouched.
        queue.compact()
        assert queue.cancelled_pending == 0
        assert queue.entries_pending == len(queue) == len(live)
        drained = 0
        while queue.pop() is not None:
            drained += 1
        assert drained == len(live)
        assert len(queue) == 0

    def test_compaction_triggers_and_resets_debris(self):
        queue = EventQueue()
        handles = [queue.push(5, lambda: None) for _ in range(200)]
        # Cancel past the trigger: >= COMPACT_MIN debris and more
        # debris than live entries forces an automatic compaction
        # partway through the storm.
        for handle in handles[:120]:
            handle.cancel()
        assert queue.cancelled_pending < 120  # auto-compacted en route
        assert len(queue) == 80
        assert queue.entries_pending - queue.cancelled_pending == 80

    def test_kernel_pending_events_with_oneshots_and_cancels(self):
        kernel = SimulationKernel()
        fired = []
        cancels = []
        for i in range(100):
            at = 10 + (i % 7)
            if i % 2:
                kernel.schedule_oneshot(at, lambda i=i: fired.append(i))
            else:
                handle = kernel.schedule(at, lambda i=i: fired.append(i))
                if i % 4 == 0:
                    cancels.append(handle)
        assert kernel.pending_events == 100
        for handle in cancels:
            handle.cancel()
        assert kernel.pending_events == 100 - len(cancels)
        kernel.run_until(13)  # partial drain, cursor lands mid-stream
        kernel.run_until(100)
        assert kernel.pending_events == 0
        assert len(fired) == 100 - len(cancels)


# One workload item: (time, is_oneshot, cancel_before_run, child_delta).
# Oneshots have no handle, so cancellation only applies to events;
# child_delta schedules a follow-up from inside the callback (delta 0
# joins the currently firing batch).
OPS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),
              st.booleans(),
              st.booleans(),
              st.one_of(st.none(), st.integers(min_value=0, max_value=8))),
    min_size=1, max_size=60)


def reference_firing_order(ops):
    """The old binary heap's firing order, simulated with heapq."""
    heap = []
    seq = 0
    for i, (time, _oneshot, _cancel, _child) in enumerate(ops):
        heapq.heappush(heap, (time, seq, ("op", i)))
        seq += 1
    fired = []
    while heap:
        time, _, tag = heapq.heappop(heap)
        if tag[0] == "op":
            i = tag[1]
            _, is_oneshot, cancelled, child = ops[i]
            if cancelled and not is_oneshot:
                continue
            fired.append(tag)
            if child is not None:
                heapq.heappush(heap, (time + child, seq, ("child", i)))
                seq += 1
        else:
            fired.append(tag)
    return fired


class TestCalendarQueueOrderEquivalence:
    @given(ops=OPS, split=st.integers(min_value=1, max_value=48))
    @settings(max_examples=120, deadline=None)
    def test_fires_in_exact_heap_order(self, ops, split):
        """Calendar queue == reference heap, to the event."""
        kernel = SimulationKernel()
        fired = []
        handles = {}

        def make_callback(i, child):
            def callback():
                fired.append(("op", i))
                if child is not None:
                    kernel.schedule_oneshot(
                        kernel.now + child,
                        lambda: fired.append(("child", i)))
            return callback

        for i, (time, is_oneshot, _cancel, child) in enumerate(ops):
            callback = make_callback(i, child)
            if is_oneshot:
                kernel.schedule_oneshot(time, callback, label=f"op{i}")
            else:
                handles[i] = kernel.schedule(time, callback, label=f"op{i}")
        for i, (_, is_oneshot, cancelled, _) in enumerate(ops):
            if cancelled and not is_oneshot:
                handles[i].cancel()

        # Split the run so the bucket cursor survives a pause.
        kernel.run_until(split)
        kernel.run_until(64)

        assert fired == reference_firing_order(ops)
        assert kernel.pending_events == 0
