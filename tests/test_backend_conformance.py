"""Backend conformance: every orchestrator passes the same contract.

The :class:`~repro.fabric.backend.OrchestratorBackend` seam is only
safe if every registered backend upholds the invariants the rest of
the simulator leans on — replicas never vanish, chaos retries stay
within the backoff budget, and runs are a pure function of the
scenario regardless of sweep sharding. This suite drives each backend
through the golden moderate-chaos scenario and a small fleet merge,
pins the annealing backend byte-identically to the pre-refactor
goldens (the refactor must be a pure extraction), pins each backend's
comparison digest, and regression-tests the bootstrap spill on the
640-node seeds that used to strand at the 90% core target.
"""

import pytest

from repro.core.runner import BenchmarkRunner, run_scenario
from repro.core.scenario import BenchmarkScenario
from repro.experiments.fleet import BackendComparisonStudy
from repro.experiments.scenarios import (
    chaos_profile,
    paper_scenario,
    trained_artifacts,
)
from repro.fabric.backend import backend_names
from repro.fleet import ClusterTemplate, FleetTopology, run_fleet
from repro.units import MINUTE

BACKENDS = ("annealing", "k8s")

#: The pre-refactor golden chaos pins (tests/test_chaos_integration.py):
#: the annealing backend must keep reproducing them bit for bit.
ANNEALING_CHAOS_GOLDEN = dict(
    final_reserved_cores=946.0,
    creation_redirects=0,
    active_databases=219,
    failover_count=0,
    faults_injected=8,
    retries=1390,
    total_adjusted=1384.3280971819195,
    events_executed=562,
)

#: Per-backend comparison digests for the pinned small fleet (2
#: clusters x 6 nodes, densities 1.0/1.2, 0.05 days). Pure functions
#: of the topology — identical on every machine.
COMPARISON_DIGESTS = {
    "annealing": ("57df15cde08e39c8c939f48f6764110510e"
                  "00075bf590c8776f71ed551d6966c"),
    "k8s": ("cf3d920e6beb474d5915deb4df980a4ebc6"
            "77c6ba49718043e19fe0310eb76db"),
}

#: Seeds whose 640-node bootstrap used to strand on the 2-core tail
#: (free CPU and free disk on disjoint nodes) before the spill fix.
STRANDING_SEEDS = (49, 50, 52, 59)


def test_both_backends_are_registered():
    names = backend_names()
    for backend in BACKENDS:
        assert backend in names


@pytest.fixture(scope="module", params=BACKENDS)
def chaos_run(request):
    """The golden 6h moderate-chaos scenario under one backend."""
    scenario = paper_scenario(
        density=1.1, days=0.25, maintenance=False,
        backend=request.param).with_chaos(chaos_profile("moderate"))
    return request.param, run_scenario(scenario)


class TestChaosConformance:
    """Every backend survives the golden fault profile intact."""

    def test_no_database_is_lost(self, chaos_run):
        """Every database ever created is either active or was
        explicitly dropped — a backend bug that strands or leaks a
        service would break this count."""
        _, result = chaos_run
        active = [db for db in result.databases if db.is_active]
        dropped = [db for db in result.databases if not db.is_active]
        assert len(active) == result.kpis.active_databases
        assert len(active) + len(dropped) == len(result.databases)
        assert result.kpis.active_databases > 0

    def test_chaos_retries_stay_within_budget(self, chaos_run):
        """Retries are bounded by the backoff budget per probe — a
        backend that thrashed the naming service would blow this up."""
        _, result = chaos_run
        chaos = result.kpis.chaos
        assert chaos is not None
        assert chaos.faults_injected > 0
        assert chaos.retries <= 5 * chaos.probes

    def test_run_is_deterministic(self, chaos_run):
        """Same scenario, same backend -> byte-identical KPIs."""
        backend, result = chaos_run
        scenario = paper_scenario(
            density=1.1, days=0.25, maintenance=False,
            backend=backend).with_chaos(chaos_profile("moderate"))
        replay = run_scenario(scenario)
        assert replay.kpis == result.kpis
        assert replay.revenue.total_adjusted \
            == result.revenue.total_adjusted
        assert replay.events_executed == result.events_executed

    def test_annealing_matches_pre_refactor_goldens(self, chaos_run):
        """The backend extraction is a pure refactor: the annealing
        path reproduces the pinned chaos goldens bit for bit."""
        backend, result = chaos_run
        if backend != "annealing":
            pytest.skip("golden pins are the annealing backend's")
        golden = ANNEALING_CHAOS_GOLDEN
        kpis = result.kpis
        assert kpis.final_reserved_cores == golden["final_reserved_cores"]
        assert kpis.creation_redirects == golden["creation_redirects"]
        assert kpis.active_databases == golden["active_databases"]
        assert kpis.failovers.count == golden["failover_count"]
        assert kpis.chaos.faults_injected == golden["faults_injected"]
        assert kpis.chaos.retries == golden["retries"]
        assert result.revenue.total_adjusted == golden["total_adjusted"]
        assert result.events_executed == golden["events_executed"]


class TestFleetMergeConformance:
    """Serial and sharded fleet sweeps agree under every backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_six_cluster_merge_is_mode_independent(self, backend):
        topology = FleetTopology(
            cluster_count=6, prefix="conform",
            template=ClusterTemplate(node_count=4, days=0.05,
                                     backend=backend))
        serial = run_fleet(topology, max_workers=1)
        sharded = run_fleet(topology, max_workers=2)
        assert serial.digest == sharded.digest
        assert serial.summaries == sharded.summaries
        assert serial.kpis == sharded.kpis


class TestComparisonDigests:
    """The headline comparison is pinned per backend."""

    @pytest.fixture(scope="class")
    def study(self):
        return BackendComparisonStudy(cluster_count=2, node_count=6,
                                      days=0.05, densities=(1.0, 1.2))

    def test_per_backend_digests_pinned(self, study):
        results = study.run()
        for backend, expected in COMPARISON_DIGESTS.items():
            assert results[backend].digest == expected, backend

    def test_identical_workload_per_backend(self, study):
        """Cluster names and seeds match across backends, so every KPI
        delta in the comparison is attributable to the scheduler."""
        results = study.run()
        names = {backend: [s.name for s in results[backend].summaries]
                 for backend in results}
        seeds = {backend: [s.seed for s in results[backend].summaries]
                 for backend in results}
        assert len(set(map(tuple, names.values()))) == 1
        assert len(set(map(tuple, seeds.values()))) == 1

    def test_comparison_exports_through_obs_layer(self, study):
        export = study.obs_export()
        assert export.metrics_jsonl is not None
        assert export.metrics_prom is not None
        for backend in COMPARISON_DIGESTS:
            assert f"toto_backend_{backend}_redirects_total" \
                in export.metrics_prom
            assert f"toto_backend_{backend}_failover_cores" \
                in export.metrics_prom


@pytest.mark.fleet
class TestBootstrapSpillRegression:
    """The 640-node bootstrap lands every database at the 90% target.

    Before the spill fix these seeds wedged on the GP_Gen5_2 tail:
    nodes with free cores had no free disk and vice versa, make-room
    could not help (it only sheds CPU), and the topology had been
    papered over with an 88% target. The backend's bootstrap spill
    swaps a disk-heavy replica out against a CPU-heavy one, so the
    full population places with zero redirects.
    """

    @pytest.mark.parametrize("seed", STRANDING_SEEDS)
    def test_previously_stranding_seed_bootstraps(self, seed):
        template = ClusterTemplate(node_count=640, days=0.1,
                                   report_interval=30 * MINUTE)
        population = template.resolved_population()
        assert population.target_core_fraction == 0.90
        scenario = BenchmarkScenario(
            name=f"spill-regression-{seed}",
            model_document=trained_artifacts().document,
            seed=seed, duration=1, ring=template.ring(1.0),
            initial_population=population)
        runner = BenchmarkRunner(scenario)
        runner._bootstrap()
        ring = runner.ring
        ring.cluster.validate_invariants()
        assert ring.control_plane.redirect_count() == 0
        assert ring.cluster.plb.stats.make_room_moves > 0
