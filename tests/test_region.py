"""Tests for the multi-ring region routing."""

import numpy as np
import pytest

from repro.errors import UnknownDatabaseError
from repro.sqldb.region import Region
from repro.sqldb.tenant_ring import TenantRingConfig
from tests.conftest import SMALL_CAPACITIES


@pytest.fixture
def region(kernel, rng_registry):
    config = TenantRingConfig(node_count=4,
                              base_capacities=SMALL_CAPACITIES)
    return Region(kernel, ring_count=4, config=config,
                  rng_registry=rng_registry)


class TestRouting:
    def test_create_lands_somewhere(self, region):
        outcome = region.create_database("GP_Gen5_2", now=0,
                                         initial_data_gb=10.0)
        assert outcome.admitted
        assert outcome.placed_ring is not None
        assert region.active_count() == 1

    def test_selection_roughly_uniform(self, region):
        for _ in range(120):
            region.create_database("GP_Gen5_2", now=0,
                                   initial_data_gb=5.0)
        populations = region.ring_populations()
        assert sum(populations) == 120
        # Uniform choice over 4 rings: each should get 30 +/- slack.
        assert min(populations) > 12
        assert max(populations) < 55

    def test_redirect_to_next_ring(self, kernel, rng_registry):
        config = TenantRingConfig(node_count=1,
                                  base_capacities=SMALL_CAPACITIES)
        region = Region(kernel, ring_count=3, config=config,
                        rng_registry=rng_registry)
        # Fill every ring except one with a 32-core database.
        outcomes = [region.create_database("GP_Gen5_32", now=0,
                                           initial_data_gb=5.0)
                    for _ in range(3)]
        assert all(outcome.admitted for outcome in outcomes)
        # A fourth big create fails region-wide.
        final = region.create_database("GP_Gen5_32", now=0,
                                       initial_data_gb=5.0)
        assert not final.admitted
        assert final.redirects == 3
        assert region.creates_rejected_region_wide == 1

    def test_cross_ring_redirect_counted(self, kernel, rng_registry):
        config = TenantRingConfig(node_count=1,
                                  base_capacities=SMALL_CAPACITIES)
        region = Region(kernel, ring_count=2, config=config,
                        rng_registry=rng_registry)
        # Saturate both rings partially so at least one create must hop.
        hops_before = region.cross_ring_redirects
        admitted = 0
        while admitted < 2:
            outcome = region.create_database("GP_Gen5_32", now=0,
                                             initial_data_gb=5.0)
            if outcome.admitted:
                admitted += 1
        # Two 32-core DBs over two 32-core rings: the second create hops
        # whenever the uniform choice repeats the first ring.
        assert region.cross_ring_redirects >= hops_before

    def test_ring_redirect_records_kept_per_ring(self, kernel,
                                                 rng_registry):
        config = TenantRingConfig(node_count=1,
                                  base_capacities=SMALL_CAPACITIES)
        region = Region(kernel, ring_count=2, config=config,
                        rng_registry=rng_registry)
        for _ in range(2):
            region.create_database("GP_Gen5_32", now=0,
                                   initial_data_gb=5.0)
        region.create_database("GP_Gen5_32", now=0, initial_data_gb=5.0)
        assert sum(region.redirect_counts()) >= 2


class TestLifecycle:
    def test_drop_finds_the_hosting_ring(self, region):
        outcome = region.create_database("BC_Gen5_2", now=0,
                                         initial_data_gb=20.0)
        db_id = outcome.database.db_id
        region.drop_database(db_id, now=100)
        assert region.active_count() == 0

    def test_drop_unknown_raises(self, region):
        with pytest.raises(UnknownDatabaseError):
            region.drop_database("db-xyz", now=0)

    def test_find_ring(self, region):
        outcome = region.create_database("GP_Gen5_2", now=0,
                                         initial_data_gb=5.0)
        ring = region.find_ring(outcome.database.db_id)
        assert ring is region.rings[outcome.placed_ring]
        assert region.find_ring("nope") is None

    def test_aggregates(self, region):
        region.create_database("BC_Gen5_2", now=0, initial_data_gb=25.0)
        assert region.reserved_cores() == 8.0
        assert region.disk_usage_gb() == pytest.approx(100.0)

    def test_ring_count_validation(self, kernel, rng_registry):
        config = TenantRingConfig(node_count=1,
                                  base_capacities=SMALL_CAPACITIES)
        with pytest.raises(ValueError):
            Region(kernel, ring_count=0, config=config,
                   rng_registry=rng_registry)

    def test_start_stop(self, region, kernel):
        region.start()
        kernel.run_until(600)
        assert all(ring.report_sweeps > 0 for ring in region.rings)
        region.stop()
