"""Tests for the assembled tenant ring (report sweep, maintenance)."""

import pytest

from repro.core.model_base import TotoModelSet
from repro.errors import ScenarioError
from repro.fabric.metrics import DISK_GB, GEN5_NODE
from repro.sqldb.editions import Edition
from repro.sqldb.tenant_ring import TenantRingConfig
from repro.units import HOUR, MINUTE
from tests.conftest import make_flat_disk_model, make_ring


class TestConfig:
    def test_defaults_match_paper(self):
        config = TenantRingConfig()
        assert config.node_count == 14
        assert config.base_capacities == GEN5_NODE
        assert config.density == 1.0

    def test_density_applied_to_capacities(self):
        config = TenantRingConfig(density=1.4)
        assert config.node_capacities.cpu_cores == pytest.approx(
            GEN5_NODE.cpu_cores * 1.4)
        assert config.node_capacities.disk_gb == GEN5_NODE.disk_gb

    def test_invalid_config_rejected(self):
        with pytest.raises(ScenarioError):
            TenantRingConfig(node_count=0)
        with pytest.raises(ScenarioError):
            TenantRingConfig(density=-1.0)
        with pytest.raises(ScenarioError):
            TenantRingConfig(report_interval=0)


class TestReportSweep:
    def test_sweep_runs_on_interval(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        ring.start()
        kernel.run_until(31 * MINUTE)
        assert ring.report_sweeps == 6  # every 5 minutes

    def test_sweep_applies_models(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=6)
        db = ring.control_plane.create_database("BC_Gen5_2", now=0,
                                                initial_data_gb=50.0)
        model = make_flat_disk_model(Edition.PREMIUM_BC, mu=10.0,
                                     rate_heterogeneity=0.0)
        for rgmanager in ring.rgmanagers:
            rgmanager.install_models(TotoModelSet([model]), 1)
        ring.start()
        kernel.run_until(HOUR + 1)
        # 12 sweeps x 2.5 GB per 5-min interval per replica... first
        # sweep reports the initial value, later ones add growth.
        record = ring.cluster.service(db.db_id)
        primary_disk = record.primary.load(DISK_GB)
        assert primary_disk > 50.0
        # All four replicas report the persisted primary value.
        for replica in record.replicas:
            assert replica.load(DISK_GB) == pytest.approx(primary_disk,
                                                          abs=2.6)

    def test_sweep_without_models_keeps_actuals(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        db = ring.control_plane.create_database("GP_Gen5_2", now=0,
                                                initial_data_gb=30.0)
        ring.start()
        kernel.run_until(HOUR)
        replica = ring.cluster.service(db.db_id).replicas[0]
        assert replica.load(DISK_GB) == pytest.approx(
            db.initial_local_disk_gb())

    def test_failover_clears_source_memory(self, kernel, rng_registry):
        """The wiring that produces §3.3.2 reset semantics end to end."""
        ring = make_ring(kernel, rng_registry, node_count=4)
        db = ring.control_plane.create_database("GP_Gen5_2", now=0,
                                                initial_data_gb=30.0)
        model = make_flat_disk_model(Edition.STANDARD_GP, mu=5.0,
                                     persisted=False,
                                     rate_heterogeneity=0.0)
        for rgmanager in ring.rgmanagers:
            rgmanager.install_models(TotoModelSet([model]), 1)
        ring.start()
        kernel.run_until(HOUR)
        replica = ring.cluster.service(db.db_id).replicas[0]
        grown = replica.load(DISK_GB)
        assert grown > db.initial_local_disk_gb()

        # Simulate the PLB moving it.
        source = ring.cluster.node(replica.node_id)
        target = next(node for node in ring.cluster.nodes
                      if node.node_id != replica.node_id)
        source.detach(replica)
        target.attach(replica)
        ring.rgmanagers[source.node_id].forget_replica(replica.replica_id)
        kernel.run_until(kernel.now + 10 * MINUTE)
        assert replica.load(DISK_GB) < grown

    def test_stop_halts_sweeps(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        ring.start()
        kernel.run_until(20 * MINUTE)
        ring.stop()
        sweeps = ring.report_sweeps
        kernel.run_until(kernel.now + HOUR)
        assert ring.report_sweeps == sweeps


class TestMaintenance:
    def test_maintenance_marks_and_clears_nodes(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=4,
                         maintenance_interval_hours=2.0,
                         maintenance_duration_hours=1.0)
        ring.start()
        saw_maintenance = False
        for _ in range(72):
            kernel.run_until(kernel.now + HOUR)
            if any(node.in_maintenance for node in ring.cluster.nodes):
                saw_maintenance = True
        assert saw_maintenance
        kernel.run_until(kernel.now + 2 * HOUR)
        # Eventually every window closes.
        ring.stop()
        kernel.run_until(kernel.now + 2 * HOUR)
        assert not any(node.in_maintenance for node in ring.cluster.nodes)

    def test_disabled_by_default(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        ring.start()
        kernel.run_until(10 * HOUR)
        assert not any(node.in_maintenance for node in ring.cluster.nodes)
