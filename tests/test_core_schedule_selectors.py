"""Tests for hourly schedules and database selectors."""

import pytest

from repro.errors import ModelSpecError
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.selectors import (
    ALL_DATABASES,
    ALL_PREMIUM_BC,
    ALL_STANDARD_GP,
    DatabaseSelector,
)
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import Edition
from repro.sqldb.slo import get_slo
from repro.units import DAY, HOUR


def make_db(slo="GP_Gen5_4", db_id="db-1"):
    return DatabaseInstance(db_id=db_id, slo=get_slo(slo), created_at=0,
                            initial_data_gb=10.0)


class TestDayType:
    def test_weekday_at_start(self):
        assert DayType.of(0) is DayType.WEEKDAY

    def test_weekend(self):
        assert DayType.of(5 * DAY) is DayType.WEEKEND

    def test_start_weekday_shift(self):
        assert DayType.of(0, start_weekday=6) is DayType.WEEKEND


class TestSchedule:
    def test_constant_is_complete(self):
        schedule = HourlyNormalSchedule.constant(1.0, 0.5)
        assert schedule.is_complete
        schedule.validate()

    def test_set_and_params(self):
        schedule = HourlyNormalSchedule()
        schedule.set(DayType.WEEKDAY, 9, 5.0, 1.0)
        assert schedule.params(DayType.WEEKDAY, 9) == (5.0, 1.0)

    def test_missing_cell_raises(self):
        schedule = HourlyNormalSchedule()
        with pytest.raises(ModelSpecError):
            schedule.params(DayType.WEEKDAY, 0)

    def test_invalid_hour_rejected(self):
        schedule = HourlyNormalSchedule()
        with pytest.raises(ModelSpecError):
            schedule.set(DayType.WEEKDAY, 24, 1.0, 0.0)

    def test_negative_sigma_rejected(self):
        schedule = HourlyNormalSchedule()
        with pytest.raises(ModelSpecError):
            schedule.set(DayType.WEEKDAY, 0, 1.0, -0.1)

    def test_params_at_timestamp(self):
        schedule = HourlyNormalSchedule.constant(0.0, 0.0)
        schedule.set(DayType.WEEKDAY, 13, 9.0, 2.0)
        schedule.set(DayType.WEEKEND, 13, 4.0, 1.0)
        assert schedule.params_at(13 * HOUR) == (9.0, 2.0)
        assert schedule.params_at(5 * DAY + 13 * HOUR) == (4.0, 1.0)

    def test_scaled(self):
        schedule = HourlyNormalSchedule.constant(10.0, 2.0).scaled(0.1)
        assert schedule.params(DayType.WEEKDAY, 0) == (
            pytest.approx(1.0), pytest.approx(0.2))

    def test_scaled_negative_rejected(self):
        with pytest.raises(ModelSpecError):
            HourlyNormalSchedule.constant(1.0, 0.0).scaled(-1.0)

    def test_incomplete_validate_raises(self):
        schedule = HourlyNormalSchedule()
        schedule.set(DayType.WEEKDAY, 0, 1.0, 0.0)
        with pytest.raises(ModelSpecError):
            schedule.validate()

    def test_from_cells(self):
        entries = [(daytype, hour, float(hour), 0.1)
                   for daytype in DayType for hour in range(24)]
        schedule = HourlyNormalSchedule.from_cells(entries)
        schedule.validate()
        assert schedule.params(DayType.WEEKEND, 7)[0] == 7.0

    def test_equality(self):
        a = HourlyNormalSchedule.constant(1.0, 0.0)
        b = HourlyNormalSchedule.constant(1.0, 0.0)
        assert a == b
        b.set(DayType.WEEKDAY, 0, 2.0, 0.0)
        assert a != b


class TestSelectors:
    def test_empty_matches_all(self):
        assert ALL_DATABASES.matches(make_db("GP_Gen5_2"))
        assert ALL_DATABASES.matches(make_db("BC_Gen5_2"))

    def test_edition_selectors(self):
        assert ALL_STANDARD_GP.matches(make_db("GP_Gen5_2"))
        assert not ALL_STANDARD_GP.matches(make_db("BC_Gen5_2"))
        assert ALL_PREMIUM_BC.matches(make_db("BC_Gen5_2"))

    def test_slo_name_filter(self):
        selector = DatabaseSelector(slo_names=frozenset({"GP_Gen5_4"}))
        assert selector.matches(make_db("GP_Gen5_4"))
        assert not selector.matches(make_db("GP_Gen5_2"))

    def test_db_id_filter(self):
        selector = DatabaseSelector(db_ids=frozenset({"db-1"}))
        assert selector.matches(make_db(db_id="db-1"))
        assert not selector.matches(make_db(db_id="db-2"))

    def test_core_range(self):
        selector = DatabaseSelector(min_cores=4, max_cores=16)
        assert selector.matches(make_db("GP_Gen5_8"))
        assert not selector.matches(make_db("GP_Gen5_2"))
        assert not selector.matches(make_db("GP_Gen5_32"))

    def test_invalid_core_range(self):
        with pytest.raises(ModelSpecError):
            DatabaseSelector(min_cores=8, max_cores=4)

    def test_conjunction(self):
        selector = DatabaseSelector(edition=Edition.STANDARD_GP, min_cores=8)
        assert selector.matches(make_db("GP_Gen5_8"))
        assert not selector.matches(make_db("BC_Gen5_8"))
        assert not selector.matches(make_db("GP_Gen5_4"))

    def test_attribute_roundtrip(self):
        selector = DatabaseSelector(edition=Edition.PREMIUM_BC,
                                    slo_names=frozenset({"BC_Gen5_2",
                                                         "BC_Gen5_4"}),
                                    min_cores=2, max_cores=8)
        restored = DatabaseSelector.from_attributes(selector.to_attributes())
        assert restored == selector

    def test_empty_attribute_roundtrip(self):
        assert DatabaseSelector.from_attributes({}) == DatabaseSelector()

    def test_bad_edition_attribute(self):
        with pytest.raises(ModelSpecError):
            DatabaseSelector.from_attributes({"edition": "Hyperscale"})
