"""Integration tests: scenarios through the full BenchmarkRunner."""

import dataclasses

import pytest

from repro.core.runner import BenchmarkRunner, run_scenario
from repro.core.scenario import BenchmarkScenario
from repro.errors import ScenarioError
from repro.sqldb.population import InitialPopulationSpec
from repro.sqldb.tenant_ring import TenantRingConfig
from repro.units import DAY, HOUR
from tests.conftest import SMALL_CAPACITIES


def small_scenario(tiny_document, hours=6, density=1.0, seed=11,
                   plb_salt=0, population=True, **kwargs):
    spec = None
    if population:
        spec = InitialPopulationSpec(gp_count=30, bc_count=6,
                                     target_core_fraction=0.7,
                                     target_disk_fraction=0.6)
    return BenchmarkScenario(
        name="test-small",
        model_document=tiny_document,
        seed=seed,
        plb_salt=plb_salt,
        duration=hours * HOUR,
        ring=TenantRingConfig(node_count=6,
                              base_capacities=SMALL_CAPACITIES,
                              density=density),
        initial_population=spec,
        bootstrap_settle=HOUR,
        **kwargs)


class TestScenarioSpec:
    def test_with_density(self, tiny_document):
        scenario = small_scenario(tiny_document).with_density(1.2)
        assert scenario.ring.density == 1.2
        assert "120%" in scenario.name

    def test_with_plb_salt(self, tiny_document):
        scenario = small_scenario(tiny_document).with_plb_salt(3)
        assert scenario.plb_salt == 3

    def test_with_duration(self, tiny_document):
        scenario = small_scenario(tiny_document).with_duration(2 * DAY)
        assert scenario.duration_hours == 48.0

    def test_invalid_scenarios_rejected(self, tiny_document):
        with pytest.raises(ScenarioError):
            BenchmarkScenario(name="", model_document=tiny_document)
        with pytest.raises(ScenarioError):
            small_scenario(tiny_document, hours=0)

    def test_pm_requires_population_models(self, tiny_document):
        stripped = dataclasses.replace(tiny_document)
        stripped = type(tiny_document)(
            resource_models=tiny_document.resource_models,
            population=None)
        scenario = small_scenario(stripped)
        with pytest.raises(ScenarioError):
            BenchmarkRunner(scenario)


class TestRun:
    @pytest.fixture(scope="class")
    def result(self, tiny_document):
        return run_scenario(small_scenario(tiny_document, hours=8))

    def test_bootstrap_population_placed(self, result):
        first = result.frames[0]
        assert first.active_total == 36
        assert first.active_bc == 6

    def test_bootstrap_disk_near_target(self, result):
        assert result.bootstrap_disk_utilization == pytest.approx(0.6,
                                                                  abs=0.05)

    def test_bootstrap_cores_near_target(self, result):
        total = 6 * SMALL_CAPACITIES.cpu_cores
        reserved = total - result.bootstrap_free_cores
        assert reserved / total == pytest.approx(0.7, abs=0.08)

    def test_hourly_frames_collected(self, result):
        assert len(result.frames) == 9  # h0..h8
        hours = [frame.hour_index for frame in result.frames]
        assert hours == list(range(9))

    def test_population_churns(self, result):
        assert result.frames[-1].active_total != 36 or \
            result.scenario.model_document.population is not None

    def test_invariants_hold_at_end(self, result):
        # run() validates internally; re-check the public surfaces.
        assert result.kpis.final_reserved_cores >= 0
        assert result.kpis.disk_utilization <= 1.5

    def test_revenue_positive(self, result):
        assert result.revenue.total_gross > 0
        assert result.revenue.total_adjusted <= result.revenue.total_gross

    def test_events_executed_counted(self, result):
        assert result.events_executed > 50


class TestDeterminism:
    def test_identical_scenarios_identical_results(self, tiny_document):
        a = run_scenario(small_scenario(tiny_document, hours=6))
        b = run_scenario(small_scenario(tiny_document, hours=6))
        assert a.kpis.final_reserved_cores == b.kpis.final_reserved_cores
        assert a.kpis.final_disk_gb == pytest.approx(b.kpis.final_disk_gb)
        assert a.kpis.creation_redirects == b.kpis.creation_redirects
        assert len(a.failovers) == len(b.failovers)
        assert a.revenue.total_adjusted == pytest.approx(
            b.revenue.total_adjusted)

    def test_plb_salt_changes_only_placement_randomness(self, tiny_document):
        a = run_scenario(small_scenario(tiny_document, hours=6, plb_salt=0))
        b = run_scenario(small_scenario(tiny_document, hours=6, plb_salt=1))
        # The request sequence is pinned by the scenario seed...
        assert a.frames[-1].redirects_cumulative == \
            b.frames[-1].redirects_cumulative or True
        # ...and aggregate population KPIs stay close even though
        # placements differ (the §5.3.4 claim).
        assert a.frames[-1].active_total == pytest.approx(
            b.frames[-1].active_total, abs=3)

    def test_different_seed_different_run(self, tiny_document):
        a = run_scenario(small_scenario(tiny_document, hours=6, seed=1))
        b = run_scenario(small_scenario(tiny_document, hours=6, seed=2))
        assert (a.kpis.final_reserved_cores != b.kpis.final_reserved_cores
                or a.kpis.final_disk_gb != b.kpis.final_disk_gb)


class TestNoPopulationManager:
    def test_static_population_run(self, tiny_document):
        scenario = dataclasses.replace(
            small_scenario(tiny_document, hours=4),
            run_population_manager=False)
        result = run_scenario(scenario)
        assert result.frames[0].active_total == \
            result.frames[-1].active_total
        assert result.kpis.creation_redirects == 0
