"""Tests for database instances and lifecycle state."""

import pytest

from repro.errors import SqlDbError
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import GP_TEMPDB_BASELINE_GB
from repro.sqldb.slo import get_slo
from repro.units import DAY, HOUR


def make_db(slo="GP_Gen5_4", created_at=0, data=50.0, **kwargs):
    return DatabaseInstance(db_id="db-1", slo=get_slo(slo),
                            created_at=created_at, initial_data_gb=data,
                            **kwargs)


class TestLifecycle:
    def test_active_until_dropped(self):
        db = make_db()
        assert db.is_active
        db.mark_dropped(HOUR)
        assert not db.is_active
        assert db.dropped_at == HOUR

    def test_double_drop_rejected(self):
        db = make_db()
        db.mark_dropped(10)
        with pytest.raises(SqlDbError):
            db.mark_dropped(20)

    def test_drop_before_creation_rejected(self):
        db = make_db(created_at=100)
        with pytest.raises(SqlDbError):
            db.mark_dropped(50)

    def test_lifetime_while_active(self):
        db = make_db(created_at=100)
        assert db.lifetime_seconds(100 + DAY) == DAY

    def test_lifetime_frozen_after_drop(self):
        db = make_db()
        db.mark_dropped(HOUR)
        assert db.lifetime_seconds(DAY) == HOUR

    def test_negative_initial_data_rejected(self):
        with pytest.raises(SqlDbError):
            make_db(data=-1.0)


class TestDowntime:
    def test_accumulates(self):
        db = make_db()
        db.record_downtime(30.0)
        db.record_downtime(45.0)
        assert db.downtime_seconds == 75.0
        assert db.failover_count == 2

    def test_negative_rejected(self):
        with pytest.raises(SqlDbError):
            make_db().record_downtime(-1.0)

    def test_downtime_fraction(self):
        db = make_db()
        db.record_downtime(60.0)
        assert db.downtime_fraction(600) == pytest.approx(0.1)

    def test_fraction_zero_lifetime(self):
        assert make_db().downtime_fraction(0) == 0.0

    def test_sla_threshold_example(self):
        # 0.01% of a 6-day lifetime is ~51.8 seconds (§5.1).
        db = make_db()
        db.record_downtime(60.0)
        assert db.downtime_fraction(6 * DAY) >= 0.0001


class TestLocalDisk:
    def test_gp_uses_tempdb_baseline(self):
        db = make_db(slo="GP_Gen5_8", data=500.0)
        assert db.initial_local_disk_gb() == GP_TEMPDB_BASELINE_GB

    def test_bc_uses_full_data(self):
        db = make_db(slo="BC_Gen5_8", data=500.0)
        assert db.initial_local_disk_gb() == 500.0

    def test_edition_passthrough(self):
        assert make_db(slo="BC_Gen5_2").is_local_store
        assert not make_db(slo="GP_Gen5_2").is_local_store
