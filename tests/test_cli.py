"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_density_defaults(self):
        args = build_parser().parse_args(["density-study"])
        assert args.days == 6.0
        assert args.densities == "100,110,120,140"

    def test_incident_defaults_match_paper_story(self):
        args = build_parser().parse_args(["incident"])
        assert args.slo == "BC_Gen5_6"
        assert args.growth_gb == 1300.0


class TestCommands:
    def test_quickstart_runs(self, capsys):
        exit_code = main(["quickstart", "--hours", "2", "--density",
                          "110"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "reserved cores" in out
        assert "adjusted rev." in out

    def test_demographics_runs(self, capsys):
        assert main(["demographics"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3a" in out
        assert "Figure 6" in out

    def test_train_writes_xml(self, tmp_path, capsys):
        out_file = tmp_path / "models.xml"
        exit_code = main(["train", "--days", "7", "--corpus", "120",
                          "--seed", "777", "--out", str(out_file)])
        assert exit_code == 0
        xml = out_file.read_text()
        assert xml.startswith("<TotoModels")
        assert "PopulationModels" in xml

    def test_train_stdout(self, capsys):
        assert main(["train", "--days", "7", "--corpus", "120",
                     "--seed", "777"]) == 0
        assert "<TotoModels" in capsys.readouterr().out

    def test_density_study_small(self, capsys):
        exit_code = main(["density-study", "--days", "0.25",
                          "--densities", "100,140", "--no-maintenance"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Figure 14" in out

    def test_densities_parser_adds_baseline(self):
        from repro.cli import _parse_densities
        assert _parse_densities("120,140") == (1.0, 1.2, 1.4)
        assert _parse_densities("100,110") == (1.0, 1.1)

    def test_repeatability_small(self, capsys):
        exit_code = main(["repeatability", "--repeats", "2", "--hours",
                          "2"])
        assert exit_code == 0
        assert "Wilcoxon" in capsys.readouterr().out
