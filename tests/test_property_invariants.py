"""Property-based tests (hypothesis) on core data structures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.model_base import BinnedUniform
from repro.fabric.metrics import CPU_CORES, DISK_GB, NodeCapacities
from repro.fabric.node import Node
from repro.fabric.replica import Replica, ReplicaRole
from repro.simkernel import EventQueue, SimulationKernel
from repro.stats.descriptive import boxplot_stats
from repro.stats.dtw import dtw_distance

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=0.01, max_value=1e6,
                            allow_nan=False, allow_infinity=False)


class TestEventQueueProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=200))
    def test_pop_order_is_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event.time)
        assert popped == sorted(times)

    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=100))
    def test_kernel_executes_all_events_in_order(self, times):
        kernel = SimulationKernel()
        seen = []
        for time in times:
            kernel.schedule(time, lambda t=time: seen.append(t))
        kernel.run_until(1001)
        assert seen == sorted(times)


class TestBoxplotProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=300))
    def test_ordering_invariants(self, data):
        stats = boxplot_stats(data)
        assert stats.minimum <= stats.q1 <= stats.median \
            <= stats.q3 <= stats.maximum
        epsilon = 1e-9 * max(abs(stats.minimum), abs(stats.maximum), 1.0)
        assert stats.minimum - epsilon <= stats.mean \
            <= stats.maximum + epsilon
        assert stats.whisker_low >= stats.minimum
        assert stats.whisker_high <= stats.maximum
        assert stats.count == len(data)

    @given(st.lists(finite_floats, min_size=1, max_size=300))
    def test_outliers_outside_whiskers(self, data):
        stats = boxplot_stats(data)
        for outlier in stats.outliers:
            assert (outlier < stats.whisker_low
                    or outlier > stats.whisker_high)

    @given(st.lists(finite_floats, min_size=1, max_size=100),
           finite_floats)
    def test_translation_equivariance(self, data, shift):
        base = boxplot_stats(data)
        shifted = boxplot_stats([x + shift for x in data])
        assert shifted.median == np.float64(base.median) + shift \
            or abs(shifted.median - (base.median + shift)) < 1e-6


class TestDtwProperties:
    series = st.lists(st.floats(min_value=-100, max_value=100,
                                allow_nan=False), min_size=1, max_size=40)

    @given(series)
    def test_self_distance_zero(self, a):
        assert dtw_distance(a, a) == 0.0

    @given(series, series)
    def test_nonnegative_and_symmetric(self, a, b):
        d_ab = dtw_distance(a, b)
        d_ba = dtw_distance(b, a)
        assert d_ab >= 0.0
        assert abs(d_ab - d_ba) < 1e-9

    @given(series)
    def test_repetition_is_free(self, a):
        doubled = [x for x in a for _ in range(2)]
        assert dtw_distance(a, doubled) == 0.0


class TestBinnedUniformProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_samples_within_support(self, data, n_bins):
        bins = BinnedUniform.from_sample(data, n_bins=n_bins)
        rng = np.random.default_rng(0)
        low, high = min(data), max(data)
        for _ in range(20):
            assert low - 1e-9 <= bins.sample(rng) <= high + 1e-9

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_bins_are_contiguous(self, data):
        bins = BinnedUniform.from_sample(data, n_bins=5)
        for (_, high_a), (low_b, _) in zip(bins.bins, bins.bins[1:]):
            assert abs(high_a - low_b) < 1e-9


class TestScheduleProperties:
    mus = st.lists(finite_floats, min_size=48, max_size=48)

    @given(mus, st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False))
    def test_scaling_is_linear(self, mus, factor):
        schedule = HourlyNormalSchedule()
        index = 0
        for daytype in DayType:
            for hour in range(24):
                schedule.set(daytype, hour, mus[index], abs(mus[index]))
                index += 1
        scaled = schedule.scaled(factor)
        for key, (mu, sigma) in schedule.cells.items():
            scaled_mu, scaled_sigma = scaled.cells[key]
            assert abs(scaled_mu - mu * factor) < 1e-6 * max(abs(mu), 1)
            assert scaled_sigma >= 0

    @given(st.integers(min_value=0, max_value=10_000_000),
           st.integers(min_value=0, max_value=6))
    def test_params_at_always_defined_for_complete(self, timestamp,
                                                   start_weekday):
        schedule = HourlyNormalSchedule.constant(1.0, 0.5)
        mu, sigma = schedule.params_at(timestamp, start_weekday)
        assert (mu, sigma) == (1.0, 0.5)


class TestNodeAccountingProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=8,
                                        allow_nan=False),
                              st.floats(min_value=0, max_value=50,
                                        allow_nan=False)),
                    min_size=1, max_size=20),
           st.data())
    def test_incremental_equals_recomputed(self, replicas_spec, data):
        node = Node(0, NodeCapacities(cpu_cores=1e6, disk_gb=1e6,
                                      memory_gb=1e6))
        replicas = []
        for index, (cores, disk) in enumerate(replicas_spec):
            replica = Replica(replica_id=index, service_id=f"s{index}",
                              role=ReplicaRole.PRIMARY,
                              reported={CPU_CORES: cores, DISK_GB: disk})
            node.attach(replica)
            replicas.append(replica)
        # Random sequence of re-reports.
        for _ in range(10):
            replica = replicas[data.draw(
                st.integers(0, len(replicas) - 1))]
            new_disk = data.draw(st.floats(min_value=0, max_value=100,
                                           allow_nan=False))
            node.apply_report(replica, {DISK_GB: new_disk})
        incremental = {metric: node.load(metric)
                       for metric in (CPU_CORES, DISK_GB)}
        node.recompute_loads()
        for metric, value in incremental.items():
            assert abs(node.load(metric) - value) < 1e-6
