"""Tests for distribution wrappers and AIC-based model selection."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.stats.distributions import (
    NegativeBinomialDistribution,
    NormalDistribution,
    PoissonDistribution,
    UniformDistribution,
)
from repro.stats.fitting import fit_all_candidates, fit_best


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


class TestNormal:
    def test_fit_recovers_parameters(self, rng):
        sample = rng.normal(5.0, 2.0, size=5000)
        fitted = NormalDistribution.fit(sample)
        assert fitted.mu == pytest.approx(5.0, abs=0.1)
        assert fitted.sigma == pytest.approx(2.0, abs=0.1)

    def test_sample_statistics(self, rng):
        dist = NormalDistribution(mu=3.0, sigma=1.0)
        draws = dist.sample(rng, size=5000)
        assert draws.mean() == pytest.approx(3.0, abs=0.1)

    def test_mean(self):
        assert NormalDistribution(mu=7.0, sigma=2.0).mean() == 7.0

    def test_log_likelihood_finite(self, rng):
        sample = rng.normal(size=100)
        fitted = NormalDistribution.fit(sample)
        assert np.isfinite(fitted.log_likelihood(sample))

    def test_empty_fit_raises(self):
        with pytest.raises(TrainingError):
            NormalDistribution.fit([])


class TestUniform:
    def test_fit_bounds(self):
        fitted = UniformDistribution.fit([1.0, 3.0, 2.0])
        assert fitted.low == 1.0
        assert fitted.high == 3.0

    def test_degenerate_sample_widened(self):
        fitted = UniformDistribution.fit([2.0, 2.0])
        assert fitted.high > fitted.low

    def test_samples_within_bounds(self, rng):
        dist = UniformDistribution(low=-1.0, high=1.0)
        draws = dist.sample(rng, size=1000)
        assert draws.min() >= -1.0 and draws.max() <= 1.0

    def test_likelihood_outside_support(self):
        dist = UniformDistribution(low=0.0, high=1.0)
        assert dist.log_likelihood([2.0]) == float("-inf")

    def test_mean(self):
        assert UniformDistribution(low=0.0, high=4.0).mean() == 2.0


class TestPoisson:
    def test_fit_lambda(self, rng):
        sample = rng.poisson(4.0, size=5000)
        fitted = PoissonDistribution.fit(sample)
        assert fitted.lam == pytest.approx(4.0, abs=0.15)

    def test_negative_counts_rejected(self):
        with pytest.raises(TrainingError):
            PoissonDistribution.fit([-1.0, 2.0])

    def test_samples_nonnegative_integers(self, rng):
        draws = PoissonDistribution(lam=2.0).sample(rng, size=500)
        assert (draws >= 0).all()
        assert np.array_equal(draws, np.round(draws))


class TestNegativeBinomial:
    def test_fit_overdispersed(self, rng):
        sample = rng.negative_binomial(5, 0.3, size=5000).astype(float)
        fitted = NegativeBinomialDistribution.fit(sample)
        assert fitted.mean() == pytest.approx(sample.mean(), rel=0.1)

    def test_underdispersed_degenerate_ok(self):
        # var <= mean: fit must not crash.
        fitted = NegativeBinomialDistribution.fit([3.0, 3.0, 3.0, 3.0])
        assert fitted.n > 0 and 0 < fitted.p < 1

    def test_negative_rejected(self):
        with pytest.raises(TrainingError):
            NegativeBinomialDistribution.fit([-2.0])


class TestFitting:
    def test_normal_wins_on_normal_data(self, rng):
        sample = rng.normal(50.0, 5.0, size=500)
        assert fit_best(sample).name == "normal"

    def test_results_sorted_by_aic(self, rng):
        sample = rng.normal(20.0, 4.0, size=300)
        results = fit_all_candidates(sample)
        aics = [result.aic for result in results]
        assert aics == sorted(aics)

    def test_poisson_competitive_on_counts(self, rng):
        sample = rng.poisson(3.0, size=500).astype(float)
        results = fit_all_candidates(sample)
        names = [result.name for result in results[:2]]
        assert "poisson" in names or "negative-binomial" in names

    def test_negative_data_skips_count_models(self, rng):
        sample = rng.normal(0.0, 1.0, size=200)  # has negative values
        results = fit_all_candidates(sample)
        names = {result.name for result in results}
        assert "poisson" not in names

    def test_all_candidates_fail_raises(self):
        with pytest.raises(TrainingError):
            fit_all_candidates([], candidates=(NormalDistribution,))
