"""Tests for nodes, replicas, and load aggregation."""

import pytest

from repro.errors import FabricError
from repro.fabric.metrics import (
    CPU_CORES,
    DISK_GB,
    GEN5_NODE,
    MEMORY_GB,
    NodeCapacities,
)
from repro.fabric.node import Node, total_capacity, total_load
from repro.fabric.replica import Replica, ReplicaRole


def make_replica(replica_id=1, service="svc-a", role=ReplicaRole.PRIMARY,
                 cores=4.0, disk=100.0):
    return Replica(replica_id=replica_id, service_id=service, role=role,
                   reported={CPU_CORES: cores, DISK_GB: disk})


@pytest.fixture
def node():
    return Node(0, NodeCapacities(cpu_cores=32, disk_gb=1000, memory_gb=128))


class TestCapacities:
    def test_positive_required(self):
        with pytest.raises(FabricError):
            NodeCapacities(cpu_cores=0, disk_gb=1, memory_gb=1)

    def test_metric_lookup(self):
        caps = NodeCapacities(cpu_cores=8, disk_gb=100, memory_gb=32)
        assert caps.of(CPU_CORES) == 8
        assert caps.of(DISK_GB) == 100
        assert caps.of(MEMORY_GB) == 32

    def test_unknown_metric(self):
        with pytest.raises(FabricError):
            GEN5_NODE.of("bogus")

    def test_density_scales_only_cpu(self):
        scaled = GEN5_NODE.scaled_cpu(1.4)
        assert scaled.cpu_cores == pytest.approx(GEN5_NODE.cpu_cores * 1.4)
        assert scaled.disk_gb == GEN5_NODE.disk_gb
        assert scaled.memory_gb == GEN5_NODE.memory_gb

    def test_invalid_density(self):
        with pytest.raises(FabricError):
            GEN5_NODE.scaled_cpu(0.0)


class TestAttachDetach:
    def test_attach_updates_aggregates(self, node):
        node.attach(make_replica(cores=4, disk=50))
        assert node.load(CPU_CORES) == 4
        assert node.load(DISK_GB) == 50
        assert node.replica_count == 1

    def test_detach_restores_aggregates(self, node):
        replica = make_replica(cores=4, disk=50)
        node.attach(replica)
        node.detach(replica)
        assert node.load(CPU_CORES) == 0
        assert node.load(DISK_GB) == 0
        assert replica.node_id is None

    def test_attach_sets_node_id(self, node):
        replica = make_replica()
        node.attach(replica)
        assert replica.node_id == 0

    def test_double_attach_rejected(self, node):
        replica = make_replica()
        node.attach(replica)
        with pytest.raises(FabricError):
            node.attach(replica)

    def test_anti_affinity_enforced(self, node):
        node.attach(make_replica(replica_id=1, service="same"))
        with pytest.raises(FabricError):
            node.attach(make_replica(replica_id=2, service="same",
                                     role=ReplicaRole.SECONDARY))

    def test_detach_unknown_rejected(self, node):
        with pytest.raises(FabricError):
            node.detach(make_replica())

    def test_hosts_service(self, node):
        node.attach(make_replica(service="svc-x"))
        assert node.hosts_service("svc-x")
        assert not node.hosts_service("svc-y")


class TestLoadReports:
    def test_report_updates_incrementally(self, node):
        replica = make_replica(disk=100)
        node.attach(replica)
        node.apply_report(replica, {DISK_GB: 140.0})
        assert node.load(DISK_GB) == pytest.approx(140.0)
        assert replica.load(DISK_GB) == pytest.approx(140.0)

    def test_report_new_metric(self, node):
        replica = make_replica()
        node.attach(replica)
        node.apply_report(replica, {MEMORY_GB: 8.0})
        assert node.load(MEMORY_GB) == pytest.approx(8.0)

    def test_report_for_foreign_replica_rejected(self, node):
        with pytest.raises(FabricError):
            node.apply_report(make_replica(), {DISK_GB: 1.0})

    def test_aggregates_over_many_replicas(self, node):
        for index in range(4):
            node.attach(make_replica(replica_id=index,
                                     service=f"svc-{index}",
                                     cores=2, disk=10))
        assert node.load(CPU_CORES) == 8
        assert node.load(DISK_GB) == 40

    def test_recompute_matches_incremental(self, node):
        replicas = [make_replica(replica_id=i, service=f"s{i}", disk=25)
                    for i in range(3)]
        for replica in replicas:
            node.attach(replica)
        node.apply_report(replicas[1], {DISK_GB: 75.0})
        incremental = node.load(DISK_GB)
        node.recompute_loads()
        assert node.load(DISK_GB) == pytest.approx(incremental)


class TestCapacityQueries:
    def test_free(self, node):
        node.attach(make_replica(cores=10, disk=400))
        assert node.free(CPU_CORES) == pytest.approx(22)
        assert node.free(DISK_GB) == pytest.approx(600)

    def test_utilization(self, node):
        node.attach(make_replica(cores=16, disk=500))
        assert node.utilization(CPU_CORES) == pytest.approx(0.5)
        assert node.utilization(DISK_GB) == pytest.approx(0.5)

    def test_violates(self, node):
        replica = make_replica(disk=999)
        node.attach(replica)
        assert not node.violates(DISK_GB)
        node.apply_report(replica, {DISK_GB: 1001.0})
        assert node.violates(DISK_GB)

    def test_totals_helpers(self, node):
        other = Node(1, node.capacities)
        node.attach(make_replica(cores=4))
        other.attach(make_replica(replica_id=2, service="b", cores=6))
        assert total_load([node, other], CPU_CORES) == 10
        assert total_capacity([node, other], CPU_CORES) == 64
