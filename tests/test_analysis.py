"""The determinism linter: every rule fires on bad code, stays silent
on good code, suppressions work, reports are stable, exit codes hold.

Each rule test feeds a crafted snippet through
:func:`repro.analysis.lint_source` under a virtual path, so
package-scoped rules (TL003/TL007/TL008) can be exercised without
touching the real tree. The suite ends with the contract that matters
most: the repository itself lints clean.
"""

import json
import pathlib
import subprocess
import sys
from io import StringIO
from pathlib import Path

import pytest

from repro.analysis import (
    LintReport,
    all_rules,
    format_json,
    format_text,
    get_rules,
    lint_paths,
    lint_source,
)
from repro.analysis.cli import (
    EXIT_CLEAN,
    EXIT_INTERNAL_ERROR,
    EXIT_VIOLATIONS,
    run_lint,
)
from repro.analysis.engine import LintEngineError, module_name_for
from repro.analysis.perf_rules import PERF_TIER

REPO = pathlib.Path(__file__).resolve().parent.parent

SIMKERNEL = "src/repro/simkernel/fixture.py"
FABRIC = "src/repro/fabric/fixture.py"
CORE = "src/repro/core/fixture.py"
STATS = "src/repro/stats/fixture.py"
CHAOS = "src/repro/chaos/fixture.py"


def codes(report, path=None):
    return [violation.rule for violation in report.violations]


class TestTL001WallClock:
    def test_fires_on_time_time(self):
        report = lint_source("import time\n\n"
                             "def stamp():\n"
                             "    return time.time()\n")
        assert codes(report) == ["TL001"]

    def test_fires_on_datetime_now_and_bare_perf_counter(self):
        report = lint_source(
            "import datetime\n"
            "from time import perf_counter\n\n"
            "def stamps():\n"
            "    return datetime.datetime.now(), perf_counter()\n")
        assert codes(report) == ["TL001", "TL001"]

    def test_silent_on_kernel_clock(self):
        report = lint_source("def stamp(kernel):\n"
                             "    return kernel.now\n",
                             path=STATS)
        assert "TL001" not in codes(report)


class TestTL002GlobalRng:
    def test_fires_on_random_module_and_np_seed(self):
        report = lint_source("import random\n"
                             "import numpy as np\n\n"
                             "def draw():\n"
                             "    np.random.seed(7)\n"
                             "    return random.random()\n")
        assert codes(report) == ["TL002", "TL002"]

    def test_silent_on_seeded_generators_and_streams(self):
        report = lint_source(
            "import numpy as np\n\n"
            "def draw(registry):\n"
            "    rng = np.random.default_rng(42)\n"
            "    seq = np.random.SeedSequence(entropy=1)\n"
            "    return rng.normal(), registry.stream('plb').random(), seq\n")
        assert "TL002" not in codes(report)


class TestTL003UnorderedIteration:
    def test_fires_on_set_iteration_in_hot_package(self):
        report = lint_source("def drain(pending: list) -> None:\n"
                             "    for item in set(pending):\n"
                             "        item.fire()\n",
                             path=SIMKERNEL)
        assert codes(report) == ["TL003"]

    def test_fires_on_set_literal_and_union_comprehension(self):
        report = lint_source(
            "def spread(a, b):\n"
            "    totals = [n.load for n in a.union(b)]\n"
            "    for node in {a, b}:\n"
            "        node.rebalance()\n"
            "    return totals\n",
            path=FABRIC)
        assert codes(report) == ["TL003", "TL003"]

    def test_silent_when_sorted_or_membership_only(self):
        report = lint_source(
            "def drain(pending, seen):\n"
            "    for item in sorted(set(pending)):\n"
            "        if item in {1, 2}:\n"
            "            seen.add(item)\n",
            path=SIMKERNEL)
        assert "TL003" not in codes(report)

    def test_out_of_scope_package_is_not_checked(self):
        report = lint_source("def tally(values):\n"
                             "    return [v for v in set(values)]\n",
                             path=STATS)
        assert "TL003" not in codes(report)


class TestTL004IdentityKeys:
    def test_fires_on_id_and_hash_calls(self):
        report = lint_source(
            "def order(replicas, name):\n"
            "    bucket = hash(name) % 8\n"
            "    return sorted(replicas, key=lambda r: id(r)), bucket\n")
        assert codes(report) == ["TL004", "TL004"]

    def test_silent_on_stable_keys(self):
        report = lint_source(
            "def order(replicas):\n"
            "    return sorted(replicas, key=lambda r: r.replica_id)\n")
        assert "TL004" not in codes(report)


class TestTL005MutableDefaults:
    def test_fires_on_list_dict_and_constructor_defaults(self):
        report = lint_source("def a(x=[]):\n    return x\n\n"
                             "def b(x={}):\n    return x\n\n"
                             "def c(*, x=set()):\n    return x\n")
        assert codes(report) == ["TL005", "TL005", "TL005"]

    def test_silent_on_none_and_immutable_defaults(self):
        report = lint_source("def a(x=None, y=(), z='label', n=3):\n"
                             "    return x, y, z, n\n")
        assert "TL005" not in codes(report)


class TestTL006BroadExcept:
    def test_fires_on_bare_broad_and_tuple_forms(self):
        report = lint_source(
            "def swallow(op):\n"
            "    try:\n"
            "        op()\n"
            "    except Exception:\n"
            "        pass\n"
            "    try:\n"
            "        op()\n"
            "    except (ValueError, BaseException):\n"
            "        return None\n"
            "    try:\n"
            "        op()\n"
            "    except:\n"
            "        return None\n")
        assert codes(report) == ["TL006", "TL006", "TL006"]

    def test_silent_on_narrow_or_reraising_handlers(self):
        report = lint_source(
            "def tolerate(op):\n"
            "    try:\n"
            "        op()\n"
            "    except ValueError:\n"
            "        return None\n"
            "    try:\n"
            "        op()\n"
            "    except Exception as error:\n"
            "        raise RuntimeError('context') from error\n")
        assert "TL006" not in codes(report)


class TestTL007KernelSlots:
    def test_fires_on_dictful_simkernel_class(self):
        report = lint_source("class Payload:\n"
                             "    def __init__(self, t: int) -> None:\n"
                             "        self.t = t\n",
                             path=SIMKERNEL)
        assert codes(report) == ["TL007"]

    def test_silent_on_slots_exceptions_and_slotted_dataclass(self):
        report = lint_source(
            "from dataclasses import dataclass\n"
            "from repro.errors import SimulationError\n\n\n"
            "class Payload:\n"
            "    __slots__ = ('t',)\n\n"
            "    def __init__(self, t):\n"
            "        self.t = t\n\n\n"
            "class QueueError(SimulationError):\n"
            "    pass\n\n\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class Marker:\n"
            "    t: int\n",
            path=SIMKERNEL)
        assert "TL007" not in codes(report)

    def test_out_of_scope_package_is_not_checked(self):
        report = lint_source("class Row:\n"
                             "    def __init__(self):\n"
                             "        self.x = 1\n",
                             path=STATS)
        assert "TL007" not in codes(report)


class TestTL008PublicAnnotations:
    def test_fires_on_missing_param_and_return(self):
        report = lint_source("def shuffle(items, seed: int):\n"
                             "    return items\n",
                             path=CORE)
        assert codes(report) == ["TL008"]
        assert "items" in report.violations[0].message
        assert "return" in report.violations[0].message

    def test_silent_on_fully_annotated_and_private(self):
        report = lint_source(
            "from typing import List\n\n\n"
            "def shuffle(items: List[int], seed: int) -> List[int]:\n"
            "    def swap(i, j):\n"  # nested closures exempt
            "        items[i], items[j] = items[j], items[i]\n"
            "    return items\n\n\n"
            "def _helper(anything):\n"  # private exempt
            "    return anything\n\n\n"
            "class _Internal:\n"  # private class exempt
            "    def run(self, x):\n"
            "        return x\n",
            path=CORE)
        assert "TL008" not in codes(report)

    def test_out_of_scope_package_is_not_checked(self):
        report = lint_source("def loose(x):\n    return x\n", path=STATS)
        assert "TL008" not in codes(report)


class TestTL009ChaosNeverSleeps:
    def test_fires_on_time_sleep(self):
        report = lint_source("import time\n\n"
                             "def wait():\n"
                             "    time.sleep(5)\n", path=CHAOS)
        assert "TL009" in codes(report)

    def test_fires_on_bare_sleep(self):
        report = lint_source("from time import sleep\n\n"
                             "def wait():\n"
                             "    sleep(1)\n", path=CHAOS)
        assert "TL009" in codes(report)

    def test_fires_on_unbounded_while_retry(self):
        report = lint_source("def retry(op):\n"
                             "    while True:\n"
                             "        op()\n", path=CHAOS)
        assert codes(report) == ["TL009"]

    def test_bounded_for_loop_and_breaking_while_pass(self):
        report = lint_source(
            "def retry(policy, op):\n"
            "    for attempt in range(policy.max_retries):\n"
            "        op()\n"
            "    while True:\n"
            "        if op():\n"
            "            break\n", path=CHAOS)
        assert "TL009" not in codes(report)

    def test_out_of_scope_package_is_not_checked(self):
        report = lint_source("import time\n\n"
                             "def wait():\n"
                             "    time.sleep(5)\n", path=STATS)
        assert "TL009" not in codes(report)


OBS = "src/repro/obs/fixture.py"


class TestTL014ObservabilityIsPassive:
    def test_fires_on_time_import(self):
        # The *import* is banned, before any call happens (TL001 only
        # flags call sites).
        report = lint_source("import time\n", path=OBS)
        assert codes(report) == ["TL014"]

    def test_fires_on_from_import_of_clock(self):
        report = lint_source("from time import perf_counter\n", path=OBS)
        assert "TL014" in codes(report)

    def test_fires_on_rng_imports(self):
        assert "TL014" in codes(lint_source(
            "from repro.rng import RngRegistry\n", path=OBS))
        assert "TL014" in codes(lint_source(
            "import numpy.random\n", path=OBS))
        assert "TL014" in codes(lint_source(
            "import random\n", path=OBS))
        assert "TL014" in codes(lint_source(
            "import datetime\n", path=OBS))

    def test_fires_on_draw_method_calls(self):
        report = lint_source("def sample(rng):\n"
                             "    return rng.integers(10)\n", path=OBS)
        assert "TL014" in codes(report)
        report = lint_source("def derive(registry):\n"
                             "    return registry.stream('obs')\n",
                             path=OBS)
        assert "TL014" in codes(report)

    def test_silent_on_passive_code(self):
        report = lint_source(
            "import hashlib\n"
            "import json\n\n"
            "def render(records):\n"
            "    text = json.dumps(records, sort_keys=True)\n"
            "    return hashlib.sha256(text.encode()).hexdigest()\n",
            path=OBS)
        assert "TL014" not in codes(report)

    def test_out_of_scope_package_is_not_checked(self):
        report = lint_source("import datetime\n", path=STATS)
        assert "TL014" not in codes(report)

    def test_real_obs_package_is_clean(self):
        report = lint_paths([REPO / "src" / "repro" / "obs"],
                            rules=get_rules(["TL014"]))
        assert codes(report) == []


class TestSuppression:
    BAD_LINE = "def stamp():\n    import time\n    return time.time()"

    def test_line_suppression(self):
        source = self.BAD_LINE + "  # totolint: disable=TL001\n"
        assert lint_source(source).clean

    def test_line_suppression_with_list_and_all(self):
        listed = self.BAD_LINE + "  # totolint: disable=TL004,TL001\n"
        everything = self.BAD_LINE + "  # totolint: disable=all\n"
        # TL001 is suppressed; the TL004 in the list never fires here,
        # which the TL013 audit flags as a stale suppression code.
        assert codes(lint_source(listed)) == ["TL013"]
        assert lint_source(listed, rules=get_rules(["TL001"])).clean
        assert lint_source(everything).clean

    def test_file_suppression(self):
        source = ("# totolint: disable-file=TL001\n" + self.BAD_LINE + "\n")
        assert lint_source(source).clean

    def test_wrong_code_does_not_suppress(self):
        source = self.BAD_LINE + "  # totolint: disable=TL002\n"
        # TL001 still fires, and the useless TL002 suppression is TL013
        # (which sorts first: the comment anchors at column 0).
        assert codes(lint_source(source)) == ["TL013", "TL001"]
        assert codes(lint_source(
            source, rules=get_rules(["TL001"]))) == ["TL001"]


class TestEngine:
    def test_module_name_anchors_at_repro(self):
        assert module_name_for(
            Path("src/repro/simkernel/event.py")) == "repro.simkernel.event"
        assert module_name_for(
            Path("src/repro/core/__init__.py")) == "repro.core"
        assert module_name_for(Path("scratch/snippet.py")) == "snippet"

    def test_rule_selection(self):
        assert [rule.code for rule in get_rules(["tl006", "TL001"])] \
            == ["TL001", "TL006"]
        with pytest.raises(LintEngineError):
            get_rules(["TL999"])

    def test_catalogue_is_complete(self):
        assert [rule.code for rule in all_rules()] == [
            f"TL{n:03d}" for n in range(1, 15)] + [
            f"TL{n:03d}" for n in range(20, 25)] + [
            f"TL{n:03d}" for n in range(30, 35)]
        for rule in all_rules():
            assert rule.title and rule.rationale

    def test_unparseable_file_is_internal_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(LintEngineError):
            lint_paths([bad])

    def test_violations_sorted_and_json_stable(self):
        report = lint_source("import time\n\n"
                             "def b(x=[]):\n"
                             "    return time.time()\n")
        assert codes(report) == ["TL005", "TL001"]  # line order
        document = json.loads(format_json(report))
        assert document["version"] == 1
        assert document["tool"] == "totolint"
        assert document["files_checked"] == 1
        assert document["violation_count"] == 2
        assert document["counts"] == {"TL001": 1, "TL005": 1}
        assert set(document["violations"][0]) \
            == {"rule", "path", "line", "col", "message"}

    def test_text_report_summarizes(self):
        report = lint_source("def a(x=[]):\n    return x\n")
        text = format_text(report)
        assert "TL005" in text
        assert "1 violations (TL005 x1)" in text
        clean = format_text(LintReport(violations=(), files_checked=3))
        assert "3 files checked, no violations" in clean


class TestExitCodes:
    """0 clean / 1 violations / 2 internal error — the CI contract."""

    def run(self, **kwargs):
        out, err = StringIO(), StringIO()
        code = run_lint(stdout=out, stderr=err, **kwargs)
        return code, out.getvalue(), err.getvalue()

    def test_clean_file_exits_zero(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("def fine(x: int) -> int:\n    return x\n")
        code, out, _ = self.run(paths=[good])
        assert code == EXIT_CLEAN
        assert "no violations" in out

    def test_violations_exit_one_in_both_formats(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def bad(x=[]):\n    return x\n")
        code, out, _ = self.run(paths=[bad])
        assert code == EXIT_VIOLATIONS
        code, out, _ = self.run(paths=[bad], output_format="json")
        assert code == EXIT_VIOLATIONS
        assert json.loads(out)["violation_count"] == 1

    def test_missing_path_and_unknown_rule_exit_two(self, tmp_path):
        code, _, err = self.run(paths=[tmp_path / "nope.py"])
        assert code == EXIT_INTERNAL_ERROR
        assert "internal error" in err
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        code, _, err = self.run(paths=[good], rules="TL999")
        assert code == EXIT_INTERNAL_ERROR
        assert "unknown rule" in err

    def test_list_rules_exits_zero(self):
        code, out, _ = self.run(paths=[], list_rules=True)
        assert code == EXIT_CLEAN
        assert "TL001" in out and "TL008" in out

    def test_cli_subcommand_wires_through(self, tmp_path):
        from repro.cli import main
        bad = tmp_path / "bad.py"
        bad.write_text("def bad(x=[]):\n    return x\n")
        assert main(["lint", str(bad)]) == EXIT_VIOLATIONS

    def test_tools_wrapper_runs_uninstalled(self, tmp_path):
        """tools/totolint.py works from a bare checkout (CI's view)."""
        bad = tmp_path / "bad.py"
        bad.write_text("def bad(x=[]):\n    return x\n")
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "totolint.py"),
             str(bad)],
            capture_output=True, text=True, cwd=str(tmp_path))
        assert proc.returncode == EXIT_VIOLATIONS
        assert "TL005" in proc.stdout


class TestRepoIsClean:
    """The determinism contract holds at HEAD, with no suppressions
    hiding real problems outside the two audited ones."""

    def test_whole_package_lints_clean(self):
        # The determinism tier gates hard with no baseline; the perf
        # tier's remaining findings ride the committed burn-down
        # baseline (test_analysis_program.py checks that side).
        determinism = [rule for rule in all_rules()
                       if rule.code not in PERF_TIER]
        report = lint_paths([REPO / "src" / "repro"], rules=determinism)
        assert report.files_checked > 80
        assert report.violations == (), format_text(report)

    def test_suppressions_are_rare_and_justified(self):
        suppressions = []
        for path in sorted((REPO / "src" / "repro").rglob("*.py")):
            # The analysis package itself documents (and once uses) the
            # syntax; the linter's internal-error catch-all in cli.py is
            # the one sanctioned broad except. Everywhere else,
            # suppressions need review here before they land.
            if "analysis" in path.parts:
                continue
            for line in path.read_text().splitlines():
                if "totolint: disable" in line:
                    suppressions.append(str(path.relative_to(REPO)))
        # scenarios.py: trained_artifacts' memo is keyed by content and
        # training is pure, so the TL023 worker-cache hazard does not
        # apply (reviewed with the perf-tier burn-down).
        # backend.py / k8s.py: the bootstrap spill and the preemption
        # scan build sort keys and scratch sequences; both run only
        # after a placement has already failed (or a node violates
        # capacity), never on the per-event hot path — TL020 flags them
        # because make_room is transitively reachable from the report
        # sweep (reviewed with the orchestrator-backend extraction).
        assert suppressions == [
            "src/repro/experiments/scenarios.py",
            "src/repro/fabric/backend.py",
            "src/repro/fabric/k8s.py",
            "src/repro/fabric/k8s.py",
            "src/repro/fabric/k8s.py",
        ], suppressions
