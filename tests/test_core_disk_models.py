"""Tests for the composite disk-usage model (§4.2)."""

import numpy as np
import pytest

from repro.errors import ModelSpecError
from repro.core.disk_models import (
    DiskUsageModel,
    InitialGrowthSpec,
    RapidGrowthSpec,
)
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.model_base import BinnedUniform, ModelContext
from repro.core.selectors import ALL_PREMIUM_BC, ALL_STANDARD_GP
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import GP_TEMPDB_BASELINE_GB
from repro.sqldb.slo import get_slo
from repro.units import DELTA_DISK_PERIOD, HOUR, MINUTE
from tests.conftest import make_flat_disk_model


def make_db(slo="BC_Gen5_4", created_at=0, data=100.0, **kwargs):
    return DatabaseInstance(db_id="db-7", slo=get_slo(slo),
                            created_at=created_at, initial_data_gb=data,
                            **kwargs)


def context(db, now=DELTA_DISK_PERIOD, prev=None,
            interval=DELTA_DISK_PERIOD, primary=True, seed=0):
    return ModelContext(now=now, interval_seconds=interval, database=db,
                        is_primary=primary, previous_value=prev,
                        rng=np.random.default_rng(seed))


class TestBinnedUniform:
    def test_from_sample_equiprobable_bins(self):
        bins = BinnedUniform.from_sample(list(range(100)), n_bins=5)
        assert len(bins.bins) == 5
        assert bins.bins[0][0] == 0.0
        assert bins.bins[-1][1] == 99.0

    def test_samples_within_support(self):
        bins = BinnedUniform.from_sample([10.0, 20.0, 30.0, 40.0])
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert 10.0 <= bins.sample(rng) <= 40.0

    def test_empty_rejected(self):
        with pytest.raises(ModelSpecError):
            BinnedUniform.from_sample([])

    def test_inverted_bin_rejected(self):
        with pytest.raises(ModelSpecError):
            BinnedUniform(bins=((5.0, 1.0),))

    def test_mean(self):
        bins = BinnedUniform(bins=((0.0, 2.0), (4.0, 6.0)))
        assert bins.mean() == pytest.approx(3.0)


class TestSpecs:
    def test_initial_probability_bounds(self):
        totals = BinnedUniform(bins=((10.0, 20.0),))
        with pytest.raises(ModelSpecError):
            InitialGrowthSpec(probability=1.5, totals=totals)

    def test_rapid_phase_cycle(self):
        spec = RapidGrowthSpec(
            probability=0.1, steady_duration=100, increase_duration=10,
            between_duration=50, decrease_duration=10,
            increase_totals=BinnedUniform(bins=((1.0, 2.0),)),
            decrease_totals=BinnedUniform(bins=((1.0, 2.0),)))
        assert spec.cycle_seconds == 170
        assert spec.phase_at(0) == "steady"
        assert spec.phase_at(105) == "increase"
        assert spec.phase_at(140) == "between"
        assert spec.phase_at(165) == "decrease"
        assert spec.phase_at(170) == "steady"  # wraps

    def test_rapid_durations_positive(self):
        bins = BinnedUniform(bins=((1.0, 2.0),))
        with pytest.raises(ModelSpecError):
            RapidGrowthSpec(probability=0.1, steady_duration=0,
                            increase_duration=1, between_duration=1,
                            decrease_duration=1, increase_totals=bins,
                            decrease_totals=bins)


class TestSteadyGrowth:
    def test_initial_value_is_local_disk(self):
        from repro.sqldb.editions import Edition
        model = make_flat_disk_model(Edition.PREMIUM_BC)
        db = make_db(data=250.0)
        assert model.initial_value(context(db)) == 250.0

    def test_gp_initial_value_is_tempdb(self):
        from repro.sqldb.editions import Edition
        model = make_flat_disk_model(Edition.STANDARD_GP)
        db = make_db(slo="GP_Gen5_4", data=250.0)
        assert model.initial_value(context(db)) == GP_TEMPDB_BASELINE_GB

    def test_none_previous_returns_initial(self):
        from repro.sqldb.editions import Edition
        model = make_flat_disk_model(Edition.PREMIUM_BC, mu=5.0)
        db = make_db(data=100.0)
        assert model.next_value(context(db, prev=None)) == 100.0

    def test_constant_growth_applied(self):
        from repro.sqldb.editions import Edition
        model = make_flat_disk_model(Edition.PREMIUM_BC, mu=2.0, sigma=0.0,
                                     rate_heterogeneity=0.0)
        db = make_db()
        value = model.next_value(context(db, prev=100.0))
        assert value == pytest.approx(102.0)

    def test_interval_scaling(self):
        from repro.sqldb.editions import Edition
        model = make_flat_disk_model(Edition.PREMIUM_BC, mu=2.0,
                                     rate_heterogeneity=0.0)
        db = make_db()
        half = model.next_value(context(db, prev=100.0,
                                        interval=DELTA_DISK_PERIOD // 2))
        assert half == pytest.approx(101.0)

    def test_floor_enforced(self):
        from repro.sqldb.editions import Edition
        model = make_flat_disk_model(Edition.PREMIUM_BC, mu=-50.0,
                                     rate_heterogeneity=0.0, floor_gb=1.0)
        db = make_db()
        assert model.next_value(context(db, prev=10.0)) == 1.0

    def test_slo_cap_enforced(self):
        from repro.sqldb.editions import Edition
        model = make_flat_disk_model(Edition.PREMIUM_BC, mu=1e9,
                                     rate_heterogeneity=0.0)
        db = make_db(slo="BC_Gen5_2")
        value = model.next_value(context(db, prev=10.0))
        assert value == db.slo.max_data_gb

    def test_rate_heterogeneity_deterministic_per_db(self):
        from repro.sqldb.editions import Edition
        model = make_flat_disk_model(Edition.PREMIUM_BC,
                                     rate_heterogeneity=0.8)
        assert model.rate_factor("db-1") == model.rate_factor("db-1")
        assert model.rate_factor("db-1") != model.rate_factor("db-2")

    def test_rate_heterogeneity_mean_near_one(self):
        from repro.sqldb.editions import Edition
        model = make_flat_disk_model(Edition.PREMIUM_BC,
                                     rate_heterogeneity=0.8)
        factors = [model.rate_factor(f"db-{i}") for i in range(4000)]
        assert np.mean(factors) == pytest.approx(1.0, abs=0.1)

    def test_zero_heterogeneity_factor_one(self):
        from repro.sqldb.editions import Edition
        model = make_flat_disk_model(Edition.PREMIUM_BC,
                                     rate_heterogeneity=0.0)
        assert model.rate_factor("anything") == 1.0


class TestInitialCreationGrowth:
    def make_model(self, probability=1.0):
        from repro.sqldb.editions import Edition
        totals = BinnedUniform(bins=((120.0, 120.0),))
        return DiskUsageModel(
            selector=ALL_PREMIUM_BC,
            steady=HourlyNormalSchedule.constant(0.0, 0.0),
            initial_growth=InitialGrowthSpec(probability=probability,
                                             totals=totals),
            rate_heterogeneity=0.0)

    def test_growth_spread_over_window(self):
        model = self.make_model()
        db = make_db(data=100.0, high_initial_growth=True,
                     initial_growth_total_gb=120.0)
        # One 5-minute report interval delivers 120 * 5/30 = 20 GB.
        value = model.next_value(context(db, now=5 * MINUTE, prev=100.0,
                                         interval=5 * MINUTE))
        assert value == pytest.approx(120.0)

    def test_no_growth_after_window(self):
        model = self.make_model()
        db = make_db(data=100.0, high_initial_growth=True,
                     initial_growth_total_gb=120.0)
        value = model.next_value(context(db, now=2 * HOUR, prev=220.0))
        assert value == pytest.approx(220.0)

    def test_flag_gates_growth(self):
        model = self.make_model()
        db = make_db(data=100.0, high_initial_growth=False)
        value = model.next_value(context(db, now=5 * MINUTE, prev=100.0,
                                         interval=5 * MINUTE))
        assert value == pytest.approx(100.0)

    def test_sample_creation_flags_probability_one(self):
        model = self.make_model(probability=1.0)
        rng = np.random.default_rng(0)
        high, total, __ = model.sample_creation_flags(rng)
        assert high
        assert total == pytest.approx(120.0)

    def test_sample_creation_flags_probability_zero(self):
        model = self.make_model(probability=0.0)
        rng = np.random.default_rng(0)
        high, total, __ = model.sample_creation_flags(rng)
        assert not high
        assert total == 0.0

    def test_flag_sampling_consumes_fixed_draws(self):
        # Identical rng state afterwards regardless of outcome, so the
        # Population Manager's request sequence stays aligned (§5.2).
        model_yes = self.make_model(probability=1.0)
        model_no = self.make_model(probability=0.0)
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        model_yes.sample_creation_flags(rng_a)
        model_no.sample_creation_flags(rng_b)
        assert rng_a.random() == rng_b.random()


class TestRapidGrowth:
    def make_model(self):
        spec = RapidGrowthSpec(
            probability=1.0,
            steady_duration=1 * HOUR,
            increase_duration=20 * MINUTE,
            between_duration=1 * HOUR,
            decrease_duration=20 * MINUTE,
            increase_totals=BinnedUniform(bins=((60.0, 60.0),)),
            decrease_totals=BinnedUniform(bins=((60.0, 60.0),)))
        return DiskUsageModel(
            selector=ALL_PREMIUM_BC,
            steady=HourlyNormalSchedule.constant(0.0, 0.0),
            rapid_growth=spec, rate_heterogeneity=0.0)

    def test_increase_phase_adds(self):
        model = self.make_model()
        db = make_db(rapid_growth=True)
        now = 1 * HOUR + 10 * MINUTE  # inside the increase phase
        value = model.next_value(context(db, now=now, prev=100.0,
                                         interval=10 * MINUTE))
        assert value == pytest.approx(130.0)  # 60 * 10/20

    def test_decrease_phase_subtracts(self):
        model = self.make_model()
        db = make_db(rapid_growth=True)
        now = (2 * HOUR + 20 * MINUTE) + 10 * MINUTE
        value = model.next_value(context(db, now=now, prev=200.0,
                                         interval=10 * MINUTE))
        assert value == pytest.approx(170.0)

    def test_steady_phase_unchanged(self):
        model = self.make_model()
        db = make_db(rapid_growth=True)
        value = model.next_value(context(db, now=30 * MINUTE, prev=100.0))
        assert value == pytest.approx(100.0)

    def test_flag_gates_rapid(self):
        model = self.make_model()
        db = make_db(rapid_growth=False)
        now = 1 * HOUR + 10 * MINUTE
        value = model.next_value(context(db, now=now, prev=100.0))
        assert value == pytest.approx(100.0)
