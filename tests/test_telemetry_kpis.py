"""Tests for KPI aggregation helpers."""

import pytest

from repro.fabric.failover import (
    REASON_CAPACITY_VIOLATION,
    REASON_MAKE_ROOM,
    FailoverRecord,
)
from repro.fabric.replica import ReplicaRole
from repro.telemetry.kpis import FailoverKpis
from tests.conftest import make_ring


def make_record(service_id, cores=4.0, disk=100.0, downtime=30.0,
                role=ReplicaRole.PRIMARY,
                reason=REASON_CAPACITY_VIOLATION):
    return FailoverRecord(
        time=0, service_id=service_id, replica_id=1, role=role,
        from_node=0, to_node=1, metric="disk-gb", cores_moved=cores,
        disk_moved_gb=disk, downtime_seconds=downtime,
        rebuild_seconds=0.0, reason=reason)


@pytest.fixture
def ring(kernel, rng_registry):
    return make_ring(kernel, rng_registry, node_count=6)


class TestFailoverKpis:
    def test_edition_split(self, ring):
        gp = ring.control_plane.create_database("GP_Gen5_4", 0, 10.0)
        bc = ring.control_plane.create_database("BC_Gen5_2", 0, 40.0)
        records = [make_record(gp.db_id, cores=4.0),
                   make_record(bc.db_id, cores=2.0)]
        kpis = FailoverKpis.from_records(records, ring.control_plane)
        assert kpis.count == 2
        assert kpis.gp_cores_moved == 4.0
        assert kpis.bc_cores_moved == 2.0
        assert kpis.total_cores_moved == 6.0

    def test_make_room_excluded(self, ring):
        gp = ring.control_plane.create_database("GP_Gen5_4", 0, 10.0)
        records = [make_record(gp.db_id),
                   make_record(gp.db_id, reason=REASON_MAKE_ROOM)]
        kpis = FailoverKpis.from_records(records, ring.control_plane)
        assert kpis.count == 1

    def test_primary_moves_counted(self, ring):
        gp = ring.control_plane.create_database("GP_Gen5_4", 0, 10.0)
        records = [make_record(gp.db_id, role=ReplicaRole.PRIMARY),
                   make_record(gp.db_id, role=ReplicaRole.SECONDARY,
                               downtime=0.0)]
        kpis = FailoverKpis.from_records(records, ring.control_plane)
        assert kpis.primary_moves == 1
        assert kpis.total_downtime_seconds == 30.0

    def test_empty_records(self, ring):
        kpis = FailoverKpis.from_records([], ring.control_plane)
        assert kpis.count == 0
        assert kpis.total_cores_moved == 0.0

    def test_disk_moved_accumulates(self, ring):
        gp = ring.control_plane.create_database("GP_Gen5_4", 0, 10.0)
        records = [make_record(gp.db_id, disk=50.0),
                   make_record(gp.db_id, disk=75.0)]
        kpis = FailoverKpis.from_records(records, ring.control_plane)
        assert kpis.total_disk_moved_gb == 125.0
