"""Tests for scripted incident replay (paper use case (c))."""

import dataclasses

import pytest

from repro.core.runner import run_scenario
from repro.core.scenario import ScriptedCreate
from repro.errors import ScenarioError
from repro.units import HOUR
from tests.test_runner_integration import small_scenario


class TestSpec:
    def test_negative_offset_rejected(self):
        with pytest.raises(ScenarioError):
            ScriptedCreate(at_offset=-1, slo_name="GP_Gen5_2",
                           initial_data_gb=10.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ScenarioError):
            ScriptedCreate(at_offset=0, slo_name="GP_Gen5_2",
                           initial_data_gb=-1.0)


class TestReplay:
    def make_scenario(self, tiny_document, scripted, hours=4):
        base = small_scenario(tiny_document, hours=hours)
        return dataclasses.replace(base, scripted_creates=tuple(scripted),
                                   run_population_manager=False)

    def test_scripted_create_lands_at_offset(self, tiny_document):
        scripted = ScriptedCreate(at_offset=2 * HOUR,
                                  slo_name="BC_Gen5_2",
                                  initial_data_gb=30.0,
                                  high_initial_growth=True,
                                  initial_growth_total_gb=120.0)
        result = run_scenario(self.make_scenario(tiny_document, [scripted]))
        databases = [db for db in result.databases
                     if db.high_initial_growth]
        assert len(databases) == 1
        db = databases[0]
        assert db.slo.name == "BC_Gen5_2"
        assert db.initial_growth_total_gb == 120.0
        # Created exactly at settle + 2h.
        assert db.created_at == result.frames[0].time + 2 * HOUR

    def test_incident_grows_cluster_disk(self, tiny_document):
        scripted = ScriptedCreate(at_offset=1 * HOUR,
                                  slo_name="BC_Gen5_2",
                                  initial_data_gb=20.0,
                                  high_initial_growth=True,
                                  initial_growth_total_gb=200.0)
        with_incident = run_scenario(
            self.make_scenario(tiny_document, [scripted]))
        without = run_scenario(self.make_scenario(tiny_document, []))
        gap = (with_incident.kpis.final_disk_gb
               - without.kpis.final_disk_gb)
        # ~200 GB growth x 4 replicas, plus the initial 20 x 4.
        assert gap > 500.0

    def test_redirected_incident_recorded(self, tiny_document):
        # A 32-core BC (128 cores) cannot fit the 6x32-core test ring
        # after bootstrap.
        scripted = ScriptedCreate(at_offset=HOUR, slo_name="BC_Gen5_32",
                                  initial_data_gb=100.0)
        result = run_scenario(self.make_scenario(tiny_document, [scripted]))
        assert result.kpis.creation_redirects == 1
        assert result.redirects[0].slo_name == "BC_Gen5_32"
