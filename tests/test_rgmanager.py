"""Tests for RgManager's interception hook and persistence semantics.

These cover the §3.3.1-3.3.2 behaviours directly: model-vs-actual
pass-through, node-local memory for non-persisted metrics (reset on
failover), and Naming-Service persistence for local-store disk
(primary executes + writes, secondaries read).
"""

import numpy as np
import pytest

from repro.core.model_base import TotoModelSet
from repro.fabric.metrics import DISK_GB, MEMORY_GB
from repro.fabric.naming import NamingService
from repro.fabric.replica import Replica, ReplicaRole
from repro.rng import RngRegistry
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import Edition
from repro.sqldb.rgmanager import RgManager, persisted_load_key
from repro.sqldb.slo import get_slo
from tests.conftest import make_flat_disk_model


@pytest.fixture
def naming():
    return NamingService()


def make_rgmanager(naming, node_id=0):
    return RgManager(node_id=node_id, naming=naming,
                     rng_registry=RngRegistry(5))


def make_db(slo="BC_Gen5_4", db_id="db-1", data=100.0):
    return DatabaseInstance(db_id=db_id, slo=get_slo(slo), created_at=0,
                            initial_data_gb=data)


def make_replica(role=ReplicaRole.PRIMARY, replica_id=1, service="db-1",
                 disk=100.0):
    return Replica(replica_id=replica_id, service_id=service, role=role,
                   node_id=0, reported={DISK_GB: disk, MEMORY_GB: 2.0})


class TestPassThrough:
    def test_no_models_reports_actual(self, naming):
        rgmanager = make_rgmanager(naming)
        replica = make_replica(disk=42.0)
        loads = rgmanager.get_metric_loads(replica, make_db(), now=300,
                                           interval_seconds=300)
        assert loads[DISK_GB] == 42.0
        assert loads[MEMORY_GB] == 2.0

    def test_unmatched_selector_reports_actual(self, naming):
        rgmanager = make_rgmanager(naming)
        rgmanager.install_models(
            TotoModelSet([make_flat_disk_model(Edition.STANDARD_GP)]), 1)
        replica = make_replica(disk=42.0)
        loads = rgmanager.get_metric_loads(replica, make_db("BC_Gen5_4"),
                                           now=300, interval_seconds=300)
        assert loads[DISK_GB] == 42.0  # BC db, GP-only model

    def test_rpc_counter(self, naming):
        rgmanager = make_rgmanager(naming)
        rgmanager.get_metric_loads(make_replica(), make_db(), 300, 300)
        rgmanager.get_metric_loads(make_replica(), make_db(), 600, 300)
        assert rgmanager.rpcs_served == 2


class TestPersistedDisk:
    """Local-store disk: primary executes and writes; secondaries read."""

    def install_bc_model(self, rgmanager, mu=10.0):
        model = make_flat_disk_model(Edition.PREMIUM_BC, mu=mu,
                                     rate_heterogeneity=0.0)
        rgmanager.install_models(TotoModelSet([model]), 1)
        return model

    def test_primary_first_report_initial_value(self, naming):
        rgmanager = make_rgmanager(naming)
        self.install_bc_model(rgmanager)
        db = make_db(data=100.0)
        loads = rgmanager.get_metric_loads(make_replica(), db, 300, 300)
        assert loads[DISK_GB] == 100.0

    def test_primary_growth_persisted(self, naming):
        rgmanager = make_rgmanager(naming)
        self.install_bc_model(rgmanager, mu=12.0)
        db = make_db(data=100.0)
        primary = make_replica()
        rgmanager.get_metric_loads(primary, db, 300, 300)
        loads = rgmanager.get_metric_loads(primary, db, 600, 300)
        assert loads[DISK_GB] == pytest.approx(103.0)  # 12 GB/20min * 5min
        assert naming.get(persisted_load_key("db-1", DISK_GB)) == \
            pytest.approx(103.0)

    def test_secondary_reads_primary_value(self, naming):
        rgmanager_a = make_rgmanager(naming, node_id=0)
        rgmanager_b = make_rgmanager(naming, node_id=1)
        self.install_bc_model(rgmanager_a, mu=12.0)
        self.install_bc_model(rgmanager_b, mu=12.0)
        db = make_db(data=100.0)
        primary = make_replica(role=ReplicaRole.PRIMARY, replica_id=1)
        secondary = make_replica(role=ReplicaRole.SECONDARY, replica_id=2)
        primary_loads = rgmanager_a.get_metric_loads(primary, db, 300, 300)
        secondary_loads = rgmanager_b.get_metric_loads(secondary, db, 300,
                                                       300)
        assert secondary_loads[DISK_GB] == primary_loads[DISK_GB]

    def test_secondary_does_not_execute_model(self, naming):
        rgmanager = make_rgmanager(naming)
        self.install_bc_model(rgmanager, mu=12.0)
        db = make_db(data=100.0)
        secondary = make_replica(role=ReplicaRole.SECONDARY)
        naming.put(persisted_load_key("db-1", DISK_GB), 250.0)
        for now in (300, 600, 900):
            loads = rgmanager.get_metric_loads(secondary, db, now, 300)
            assert loads[DISK_GB] == 250.0  # never grows it
        assert naming.get(persisted_load_key("db-1", DISK_GB)) == 250.0

    def test_secondary_before_any_primary_uses_initial(self, naming):
        rgmanager = make_rgmanager(naming)
        self.install_bc_model(rgmanager)
        db = make_db(data=77.0)
        secondary = make_replica(role=ReplicaRole.SECONDARY)
        loads = rgmanager.get_metric_loads(secondary, db, 300, 300)
        assert loads[DISK_GB] == 77.0
        # and it must NOT have claimed the persisted slot
        assert not naming.exists(persisted_load_key("db-1", DISK_GB))

    def test_disk_survives_failover(self, naming):
        """§3.3.2: on failover the newly promoted primary has the same
        disk usage as the previous primary."""
        node_a = make_rgmanager(naming, node_id=0)
        node_b = make_rgmanager(naming, node_id=1)
        self.install_bc_model(node_a, mu=12.0)
        self.install_bc_model(node_b, mu=12.0)
        db = make_db(data=100.0)
        old_primary = make_replica(role=ReplicaRole.PRIMARY, replica_id=1)
        for now in (300, 600, 900):
            last = node_a.get_metric_loads(old_primary, db, now, 300)
        # Failover: replica 2 on node B is promoted.
        new_primary = make_replica(role=ReplicaRole.PRIMARY, replica_id=2)
        new_primary.node_id = 1
        loads = node_b.get_metric_loads(new_primary, db, 1200, 300)
        assert loads[DISK_GB] == pytest.approx(last[DISK_GB] + 3.0)


class TestNonPersistedDisk:
    """Remote-store tempdb: node-local memory, reset on failover."""

    def install_gp_model(self, rgmanager, mu=12.0):
        model = make_flat_disk_model(Edition.STANDARD_GP, mu=mu,
                                     persisted=False,
                                     rate_heterogeneity=0.0)
        rgmanager.install_models(TotoModelSet([model]), 1)

    def test_grows_in_node_memory(self, naming):
        rgmanager = make_rgmanager(naming)
        self.install_gp_model(rgmanager)
        db = make_db("GP_Gen5_4")
        replica = make_replica()
        first = rgmanager.get_metric_loads(replica, db, 300, 300)
        second = rgmanager.get_metric_loads(replica, db, 600, 300)
        assert second[DISK_GB] == pytest.approx(first[DISK_GB] + 3.0)
        # nothing persisted for non-persisted metrics
        assert not naming.exists(persisted_load_key("db-1", DISK_GB))

    def test_resets_after_failover(self, naming):
        """§3.3.2: tempdb is lost on failover — the new node's
        RgManager has no memory of the replica, so the load resets to
        the model's initial value."""
        node_a = make_rgmanager(naming, node_id=0)
        node_b = make_rgmanager(naming, node_id=1)
        self.install_gp_model(node_a)
        self.install_gp_model(node_b)
        db = make_db("GP_Gen5_4")
        replica = make_replica()
        for now in (300, 600, 900, 1200):
            grown = node_a.get_metric_loads(replica, db, now, 300)
        replica.node_id = 1
        reset = node_b.get_metric_loads(replica, db, 1500, 300)
        assert reset[DISK_GB] < grown[DISK_GB]
        # A fresh node has no history: the report restarts from the
        # model's initial value (a fresh tempdb).
        assert reset[DISK_GB] == pytest.approx(db.initial_local_disk_gb())

    def test_forget_replica_resets_memory(self, naming):
        rgmanager = make_rgmanager(naming)
        self.install_gp_model(rgmanager)
        db = make_db("GP_Gen5_4")
        replica = make_replica()
        rgmanager.get_metric_loads(replica, db, 300, 300)
        rgmanager.forget_replica(replica.replica_id)
        loads = rgmanager.get_metric_loads(replica, db, 600, 300)
        assert loads[DISK_GB] == pytest.approx(db.initial_local_disk_gb())


class TestModelInstall:
    def test_install_tracks_version(self, naming):
        rgmanager = make_rgmanager(naming)
        rgmanager.install_models(TotoModelSet([]), 7)
        assert rgmanager.model_version == 7

    def test_uninstall(self, naming):
        rgmanager = make_rgmanager(naming)
        rgmanager.install_models(
            TotoModelSet([make_flat_disk_model(Edition.PREMIUM_BC,
                                               mu=50.0)]), 1)
        rgmanager.install_models(None, 0)
        replica = make_replica(disk=42.0)
        loads = rgmanager.get_metric_loads(replica, make_db(), 300, 300)
        assert loads[DISK_GB] == 42.0
