"""Shared fixtures: small rings, tiny trained documents, fast scenarios.

Expensive artifacts (trained model documents) are session-scoped and
downsized so the whole suite stays fast while still exercising every
code path the full experiments use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hourly_schedule import HourlyNormalSchedule
from repro.core.model_xml import TotoModelDocument
from repro.core.population_models import (
    InitialDataSpec,
    PopulationModels,
    SloMix,
)
from repro.core.create_drop import CreateDropModel
from repro.core.disk_models import DiskUsageModel
from repro.core.selectors import ALL_PREMIUM_BC, ALL_STANDARD_GP
from repro.fabric.metrics import NodeCapacities
from repro.models.training import TrainingArtifacts, train_model_document
from repro.rng import RngRegistry
from repro.simkernel import SimulationKernel
from repro.sqldb.editions import Edition
from repro.sqldb.tenant_ring import TenantRing, TenantRingConfig
from repro.telemetry.region import US_EAST_LIKE


SMALL_CAPACITIES = NodeCapacities(cpu_cores=32.0, disk_gb=1024.0,
                                  memory_gb=128.0)


@pytest.fixture
def kernel() -> SimulationKernel:
    return SimulationKernel()


@pytest.fixture
def rng_registry() -> RngRegistry:
    return RngRegistry(12345)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_ring(kernel, rng_registry) -> TenantRing:
    """A 4-node ring with small capacities for fast unit tests."""
    config = TenantRingConfig(node_count=4, base_capacities=SMALL_CAPACITIES,
                              density=1.0)
    return TenantRing(kernel, config, rng_registry)


def make_ring(kernel, rng_registry, node_count=4, density=1.0,
              capacities=SMALL_CAPACITIES, **kwargs) -> TenantRing:
    config = TenantRingConfig(node_count=node_count,
                              base_capacities=capacities,
                              density=density, **kwargs)
    return TenantRing(kernel, config, rng_registry)


@pytest.fixture(scope="session")
def tiny_artifacts() -> TrainingArtifacts:
    """A small but complete trained model document (shared, read-only)."""
    rng = np.random.default_rng(777)
    return train_model_document(US_EAST_LIKE, rng, training_days=7,
                                disk_corpus_size=120)


@pytest.fixture(scope="session")
def tiny_document(tiny_artifacts) -> TotoModelDocument:
    return tiny_artifacts.document


def make_flat_disk_model(edition: Edition, mu: float = 0.0,
                         sigma: float = 0.0, persisted: bool = None,
                         **kwargs) -> DiskUsageModel:
    """A disk model with constant growth parameters (no training)."""
    if persisted is None:
        persisted = edition is Edition.PREMIUM_BC
    selector = (ALL_PREMIUM_BC if edition is Edition.PREMIUM_BC
                else ALL_STANDARD_GP)
    return DiskUsageModel(selector=selector,
                          steady=HourlyNormalSchedule.constant(mu, sigma),
                          persisted=persisted, **kwargs)


def make_flat_population(creates_per_hour: float = 2.0,
                         drops_per_hour: float = 1.0) -> PopulationModels:
    """Population models with flat hourly rates (no training)."""
    population = PopulationModels()
    for edition, prefix in ((Edition.STANDARD_GP, "GP"),
                            (Edition.PREMIUM_BC, "BC")):
        rate = creates_per_hour if edition is Edition.STANDARD_GP \
            else creates_per_hour / 4.0
        drop = drops_per_hour if edition is Edition.STANDARD_GP \
            else drops_per_hour / 4.0
        population.create_drop[edition] = CreateDropModel(
            edition=edition,
            creates=HourlyNormalSchedule.constant(rate, 0.0),
            drops=HourlyNormalSchedule.constant(drop, 0.0))
        population.slo_mix[edition] = SloMix.from_dict(
            edition, {f"{prefix}_Gen5_2": 0.7, f"{prefix}_Gen5_4": 0.3})
        population.initial_data[edition] = InitialDataSpec(
            edition=edition, mu=2.0, sigma=0.5, cap_gb=128.0)
    return population
