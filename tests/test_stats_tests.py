"""Tests for the K-S and Wilcoxon statistical tests."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.stats.ks import ks_normality_test
from repro.stats.wilcoxon import wilcoxon_signed_rank


class TestKsNormality:
    def test_normal_sample_not_rejected(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, size=200)
        result = ks_normality_test(sample)
        assert result.p_value > 0.05
        assert not result.rejects_normality()

    def test_uniform_sample_rejected(self):
        rng = np.random.default_rng(0)
        sample = rng.uniform(0.0, 1.0, size=2000)
        result = ks_normality_test(sample)
        assert result.rejects_normality()

    def test_exponential_sample_rejected(self):
        rng = np.random.default_rng(0)
        sample = rng.exponential(1.0, size=1000)
        assert ks_normality_test(sample).rejects_normality()

    def test_statistic_in_unit_interval(self):
        rng = np.random.default_rng(1)
        result = ks_normality_test(rng.normal(size=50))
        assert 0.0 <= result.statistic <= 1.0

    def test_sample_size_recorded(self):
        rng = np.random.default_rng(1)
        assert ks_normality_test(rng.normal(size=37)).sample_size == 37

    def test_too_small_raises(self):
        with pytest.raises(TrainingError):
            ks_normality_test([1.0, 2.0])

    def test_zero_variance_raises(self):
        with pytest.raises(TrainingError):
            ks_normality_test([5.0] * 10)

    def test_custom_alpha(self):
        rng = np.random.default_rng(0)
        result = ks_normality_test(rng.normal(size=100))
        assert not result.rejects_normality(alpha=1e-9)


class TestWilcoxon:
    def test_identical_samples_insignificant(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        result = wilcoxon_signed_rank(sample, sample)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_shifted_samples_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 1.0, size=100)
        b = a + 2.0
        assert wilcoxon_signed_rank(a, b).significant()

    def test_noise_only_insignificant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 1.0, size=100)
        b = a + rng.normal(0.0, 0.01, size=100)
        assert not wilcoxon_signed_rank(a, b).significant()

    def test_pair_count(self):
        a = list(range(10))
        b = [x + ((-1) ** x) * 0.5 for x in range(10)]
        assert wilcoxon_signed_rank(a, b).n_pairs == 10

    def test_length_mismatch_raises(self):
        with pytest.raises(TrainingError):
            wilcoxon_signed_rank([1, 2, 3, 4, 5], [1, 2, 3, 4])

    def test_too_few_pairs_raises(self):
        with pytest.raises(TrainingError):
            wilcoxon_signed_rank([1, 2, 3], [3, 2, 1])
