"""Property-based round-trip tests for the model XML layer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.disk_models import (
    DiskUsageModel,
    InitialGrowthSpec,
    RapidGrowthSpec,
)
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.model_base import BinnedUniform
from repro.core.model_xml import (
    TotoModelDocument,
    parse_model_xml,
    serialize_model_xml,
)
from repro.core.selectors import DatabaseSelector
from repro.sqldb.editions import Edition

param_floats = st.floats(min_value=-1000.0, max_value=1000.0,
                         allow_nan=False, allow_infinity=False)
sigma_floats = st.floats(min_value=0.0, max_value=100.0,
                         allow_nan=False, allow_infinity=False)
probability = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
durations = st.integers(min_value=60, max_value=100_000)


@st.composite
def schedules(draw):
    schedule = HourlyNormalSchedule()
    for daytype in DayType:
        for hour in range(24):
            schedule.set(daytype, hour, draw(param_floats),
                         draw(sigma_floats))
    return schedule


@st.composite
def binned(draw):
    edges = sorted(draw(st.lists(param_floats, min_size=2, max_size=6)))
    bins = tuple((edges[i], edges[i + 1]) for i in range(len(edges) - 1))
    if not bins:
        bins = ((0.0, 1.0),)
    return BinnedUniform(bins=bins)


@st.composite
def disk_models(draw):
    initial = None
    if draw(st.booleans()):
        initial = InitialGrowthSpec(probability=draw(probability),
                                    totals=draw(binned()),
                                    duration_seconds=draw(durations))
    rapid = None
    if draw(st.booleans()):
        rapid = RapidGrowthSpec(
            probability=draw(probability),
            steady_duration=draw(durations),
            increase_duration=draw(durations),
            between_duration=draw(durations),
            decrease_duration=draw(durations),
            increase_totals=draw(binned()),
            decrease_totals=draw(binned()))
    edition = draw(st.sampled_from([None, Edition.STANDARD_GP,
                                    Edition.PREMIUM_BC]))
    return DiskUsageModel(
        selector=DatabaseSelector(edition=edition),
        steady=draw(schedules()),
        initial_growth=initial,
        rapid_growth=rapid,
        persisted=draw(st.booleans()),
        floor_gb=draw(st.floats(min_value=0.01, max_value=10.0,
                                allow_nan=False)),
        rate_heterogeneity=draw(st.floats(min_value=0.0, max_value=2.0,
                                          allow_nan=False)))


class TestXmlRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(disk_models())
    def test_disk_model_roundtrip_exact(self, model):
        document = TotoModelDocument(resource_models=[model])
        restored = parse_model_xml(serialize_model_xml(document))
        parsed = restored.resource_models[0]
        assert parsed.persisted == model.persisted
        assert parsed.floor_gb == model.floor_gb
        assert parsed.rate_heterogeneity == model.rate_heterogeneity
        assert parsed.selector == model.selector
        assert parsed.steady == model.steady
        if model.initial_growth is None:
            assert parsed.initial_growth is None
        else:
            assert parsed.initial_growth.probability == \
                model.initial_growth.probability
            assert parsed.initial_growth.totals.bins == \
                model.initial_growth.totals.bins
        if model.rapid_growth is None:
            assert parsed.rapid_growth is None
        else:
            assert parsed.rapid_growth.cycle_seconds == \
                model.rapid_growth.cycle_seconds
            assert parsed.rapid_growth.increase_totals.bins == \
                model.rapid_growth.increase_totals.bins

    @settings(max_examples=10, deadline=None)
    @given(disk_models(), st.integers(min_value=0, max_value=2 ** 31))
    def test_roundtrip_preserves_sampling(self, model, seed):
        """Serialization must be behaviour-preserving, not just
        field-preserving."""
        from repro.core.model_base import ModelContext
        from repro.sqldb.database import DatabaseInstance
        from repro.sqldb.slo import get_slo

        document = TotoModelDocument(resource_models=[model])
        parsed = parse_model_xml(
            serialize_model_xml(document)).resource_models[0]
        slo = "BC_Gen5_4" if model.selector.edition is not \
            Edition.STANDARD_GP else "GP_Gen5_4"
        db = DatabaseInstance(db_id="db-x", slo=get_slo(slo),
                              created_at=0, initial_data_gb=10.0,
                              rapid_growth=True)

        def sample(candidate):
            return candidate.next_value(ModelContext(
                now=3600, interval_seconds=300, database=db,
                is_primary=True, previous_value=50.0,
                rng=np.random.default_rng(seed)))

        assert sample(model) == sample(parsed)
