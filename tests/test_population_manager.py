"""Tests for the Population Manager (§3.3.3)."""

import pytest

from repro.core.population_manager import PopulationManager
from repro.sqldb.editions import Edition
from repro.units import DAY, HOUR
from tests.conftest import make_flat_population, make_ring


def make_manager(kernel, ring, rng_registry, creates=2.0, drops=0.0,
                 document=None):
    return PopulationManager(
        kernel=kernel, control_plane=ring.control_plane,
        models=make_flat_population(creates_per_hour=creates,
                                    drops_per_hour=drops),
        rng=rng_registry.stream("population-manager"),
        model_document=document)


class TestScheduling:
    def test_wakes_at_top_of_hour(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=8)
        manager = make_manager(kernel, ring, rng_registry)
        kernel.run_until(30 * 60)  # 00:30
        manager.start()
        kernel.run_until(HOUR + 1)
        assert manager.stats.hours_ticked == 1

    def test_requests_spread_within_hour(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=8)
        manager = make_manager(kernel, ring, rng_registry, creates=8.0)
        manager.start()
        kernel.run_until(2 * HOUR)
        offsets = [request.at % HOUR for request in manager.request_log]
        assert len(set(offsets)) > 1  # not all at the top of the hour

    def test_creates_reach_control_plane(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=8)
        manager = make_manager(kernel, ring, rng_registry, creates=2.0)
        manager.start()
        kernel.run_until(4 * HOUR)
        # 3 full hours x (2 GP + 0.5 BC) — BC rounds to 0 or 1.
        assert ring.control_plane.creates_succeeded >= 6
        assert manager.stats.creates_admitted == \
            ring.control_plane.creates_succeeded

    def test_stop_halts_churn(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=8)
        manager = make_manager(kernel, ring, rng_registry)
        manager.start()
        kernel.run_until(90 * 60)
        manager.stop()
        ticked = manager.stats.hours_ticked
        kernel.run_until(kernel.now + 5 * HOUR)
        assert manager.stats.hours_ticked == ticked


class TestDrops:
    def test_drops_remove_young_databases(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=8)
        manager = make_manager(kernel, ring, rng_registry, creates=4.0,
                               drops=2.0)
        manager.start()
        kernel.run_until(6 * HOUR)
        assert manager.stats.drops_executed > 0
        assert ring.control_plane.drops_executed == \
            manager.stats.drops_executed

    def test_drops_skip_when_only_old_databases(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=8)
        # Create one old database manually, then run drops only.
        ring.control_plane.create_database("GP_Gen5_2", now=0,
                                           initial_data_gb=10.0)
        kernel.run_until(3 * DAY)
        manager = make_manager(kernel, ring, rng_registry, creates=0.0,
                               drops=2.0)
        manager.start()
        kernel.run_until(kernel.now + 3 * HOUR)
        assert manager.stats.drops_executed == 0
        assert manager.stats.drops_skipped_empty > 0
        assert ring.control_plane.active_count() == 1

    def test_drop_respects_edition(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=8)
        # Flat population: GP creates 4/h, BC creates 1/h; drops GP only.
        manager = PopulationManager(
            kernel=kernel, control_plane=ring.control_plane,
            models=make_flat_population(creates_per_hour=4.0,
                                        drops_per_hour=4.0),
            rng=rng_registry.stream("pm"))
        manager.start()
        kernel.run_until(5 * HOUR)
        # BC drops requested at 1/h; all executed drops must match the
        # requested edition, which we can only verify via counts:
        dropped = [db for db in ring.control_plane.all_databases()
                   if not db.is_active]
        assert all(db.edition in (Edition.STANDARD_GP, Edition.PREMIUM_BC)
                   for db in dropped)
        assert manager.stats.drops_requested >= manager.stats.drops_executed


class TestDeterminism:
    def test_identical_request_log_across_densities(self, rng_registry,
                                                    tiny_document):
        """§5.2: one Population Manager seed fixes order, SLO, sizes and
        flags of every creation, independent of admission outcomes."""
        from repro.rng import RngRegistry
        from repro.simkernel import SimulationKernel

        def run(density):
            kernel = SimulationKernel()
            registry = RngRegistry(777)
            ring = make_ring(kernel, registry, node_count=6,
                             density=density)
            manager = PopulationManager(
                kernel=kernel, control_plane=ring.control_plane,
                models=tiny_document.population,
                rng=registry.stream("population-manager"),
                model_document=tiny_document)
            ring.start()
            manager.start()
            kernel.run_until(12 * HOUR)
            return manager.request_log

        log_a = run(1.0)
        log_b = run(1.4)
        assert log_a == log_b
        assert log_a, "expected some requests"

    def test_redirects_recorded_not_raised(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=4)
        # Fill the ring completely.
        for _ in range(4):
            ring.control_plane.create_database("GP_Gen5_32", now=0,
                                               initial_data_gb=10.0)
        manager = make_manager(kernel, ring, rng_registry, creates=3.0)
        manager.start()
        kernel.run_until(3 * HOUR)  # must not raise
        assert manager.stats.creates_redirected > 0
        assert ring.control_plane.redirect_count() == \
            manager.stats.creates_redirected
