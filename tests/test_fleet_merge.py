"""The fleet merge determinism contract (docs/FLEET.md).

A fleet run's summaries, merged KPIs, frames, and digest must not
depend on *how* the sweep executed: serial, sharded across a warm
process pool, or degraded mid-flight by a broken pool, the outputs are
byte-identical because summaries are always re-ordered to spec order
(ascending cluster index) before the sequential-float merge.
"""

import dataclasses

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.analysis.detsan import verify_run
from repro.fleet import (
    ClusterTemplate,
    FleetFrame,
    FleetTopology,
    fleet_digest,
    merge_frames,
    merge_summaries,
    run_fleet,
    summarize_result,
)
from repro.parallel import SweepExecutor


def small_topology(prefix="merge", clusters=4):
    return FleetTopology(cluster_count=clusters, prefix=prefix,
                         template=ClusterTemplate(node_count=4, days=0.05))


class TestSerialShardedIdentity:
    def test_serial_vs_two_workers_byte_identical(self):
        topology = small_topology()
        serial = run_fleet(topology, max_workers=1)
        sharded = run_fleet(topology, max_workers=2)
        assert serial.mode == "serial"
        assert serial.summaries == sharded.summaries
        assert serial.frames == sharded.frames
        assert serial.kpis == sharded.kpis
        assert serial.digest == sharded.digest

    def test_summaries_come_back_in_spec_order(self):
        result = run_fleet(small_topology(), max_workers=2)
        names = [summary.name for summary in result.summaries]
        assert names == [result.topology.cluster_name(index)
                        for index in range(result.topology.cluster_count)]

    def test_density_cycle_survives_the_shard(self):
        topology = dataclasses.replace(small_topology(prefix="cycle"),
                                       densities=(1.0, 1.2))
        serial = run_fleet(topology, max_workers=1)
        sharded = run_fleet(topology, max_workers=2)
        assert serial.digest == sharded.digest
        assert [s.density for s in serial.summaries] == [1.0, 1.2, 1.0, 1.2]


class _BrokenPool:
    """A pool that dies on first use, like a worker OOM-kill."""

    def submit(self, fn, *args):
        raise BrokenProcessPool("worker died")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestBrokenPoolFallback:
    def test_broken_pool_finishes_serially_with_identical_digest(
            self, monkeypatch):
        topology = small_topology(prefix="broken")
        clean = run_fleet(topology, max_workers=1)

        executor = SweepExecutor(max_workers=2, reducer=summarize_result)
        monkeypatch.setattr(executor, "_pool_for",
                            lambda workers, blobs: _BrokenPool())
        try:
            summaries = tuple(executor.run(topology.scenarios()))
        finally:
            executor.shutdown()
        assert executor.last_mode == "serial"
        assert summaries == clean.summaries
        assert fleet_digest(summaries) == clean.digest


class TestMergeUnits:
    """Pure-merge behavior on hand-built summaries."""

    def make(self, name, seed, hour_values):
        from repro.fleet import ClusterSummary
        frames = tuple(
            FleetFrame(hour_index=hour, reserved_cores=cores,
                       disk_gb=cores * 10.0, active_databases=5,
                       redirects_cumulative=1, failover_count_cumulative=0)
            for hour, cores in hour_values)
        return ClusterSummary(
            name=name, seed=seed, density=1.0, node_count=4,
            final_reserved_cores=100.0, final_disk_gb=50.0,
            core_utilization=0.5, disk_utilization=0.25,
            creation_redirects=2, databases_created=10,
            active_databases=9, failover_count=1,
            failover_downtime_seconds=3.5, revenue_gross=20.0,
            revenue_penalty=1.0, revenue_adjusted=19.0,
            penalized_databases=1, faults_injected=0,
            events_executed=42, frames=frames)

    def test_merge_summaries_accumulates_in_order(self):
        kpis = merge_summaries([self.make("a", 1, [(0, 1.0)]),
                                self.make("b", 2, [(0, 2.0)])])
        assert kpis.clusters == 2
        assert kpis.nodes == 8
        assert kpis.databases_created == 20
        assert kpis.reserved_cores == 200.0
        assert kpis.revenue_adjusted == 38.0

    def test_merge_frames_sums_per_hour_and_sorts(self):
        merged = merge_frames([
            self.make("a", 1, [(1, 4.0), (0, 1.0)]),
            self.make("b", 2, [(0, 2.0), (2, 8.0)]),
        ])
        assert [frame.hour_index for frame in merged] == [0, 1, 2]
        assert [frame.reserved_cores for frame in merged] == [3.0, 4.0, 8.0]
        # Clusters missing an hour contribute nothing to it.
        assert merged[2].active_databases == 5

    def test_digest_is_order_sensitive(self):
        first = self.make("a", 1, [(0, 1.0)])
        second = self.make("b", 2, [(0, 2.0)])
        assert (fleet_digest([first, second])
                != fleet_digest([second, first]))

    def test_empty_fleet_merges_to_zeroes(self):
        kpis = merge_summaries([])
        assert kpis.clusters == 0
        assert kpis.reserved_cores == 0.0
        assert merge_frames([]) == []


@pytest.mark.fleet
class TestFleetDetSan:
    def test_fleet_cluster_scenario_is_detsan_clean(self):
        """A fleet-stamped scenario replays draw-for-draw identically."""
        scenario = small_topology(prefix="detsan", clusters=1).scenarios()[0]
        _, report = verify_run(scenario)
        assert report.ok, report.format()
        assert report.divergence is None
