"""Tests for model XML serialization (§3.3.1)."""

import pytest

from repro.errors import ModelSpecError
from repro.core.cpu_model import CpuUsageModel
from repro.core.disk_models import (
    DiskUsageModel,
    InitialGrowthSpec,
    RapidGrowthSpec,
)
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.memory_model import MemoryUsageModel
from repro.core.model_base import BinnedUniform
from repro.core.model_xml import (
    TotoModelDocument,
    parse_model_xml,
    serialize_model_xml,
)
from repro.core.selectors import ALL_PREMIUM_BC, DatabaseSelector
from repro.sqldb.editions import Edition
from tests.conftest import make_flat_population


def make_disk_model():
    return DiskUsageModel(
        selector=ALL_PREMIUM_BC,
        steady=HourlyNormalSchedule.constant(0.05, 0.2),
        initial_growth=InitialGrowthSpec(
            probability=0.1,
            totals=BinnedUniform(bins=((30.0, 60.0), (60.0, 400.0)))),
        rapid_growth=RapidGrowthSpec(
            probability=0.02, steady_duration=36000,
            increase_duration=2400, between_duration=18000,
            decrease_duration=2400,
            increase_totals=BinnedUniform(bins=((10.0, 200.0),)),
            decrease_totals=BinnedUniform(bins=((10.0, 180.0),))),
        persisted=True, floor_gb=0.75, rate_heterogeneity=0.6)


class TestRoundTrip:
    def test_disk_model_roundtrip(self):
        document = TotoModelDocument(resource_models=[make_disk_model()],
                                     seed_salt="test", start_weekday=2)
        restored = parse_model_xml(serialize_model_xml(document))
        assert restored.seed_salt == "test"
        assert restored.start_weekday == 2
        model = restored.resource_models[0]
        assert isinstance(model, DiskUsageModel)
        assert model.persisted is True
        assert model.floor_gb == 0.75
        assert model.rate_heterogeneity == 0.6
        assert model.selector.edition is Edition.PREMIUM_BC
        assert model.steady == make_disk_model().steady
        assert model.initial_growth.probability == 0.1
        assert model.initial_growth.totals.bins == \
            ((30.0, 60.0), (60.0, 400.0))
        assert model.rapid_growth.steady_duration == 36000
        assert model.rapid_growth.decrease_totals.bins == ((10.0, 180.0),)

    def test_memory_model_roundtrip(self):
        original = MemoryUsageModel(DatabaseSelector(min_cores=8),
                                    primary_target_fraction=0.6,
                                    secondary_target_fraction=0.2,
                                    warmup_hours=3.0, jitter_fraction=0.05)
        document = TotoModelDocument(resource_models=[original])
        restored = parse_model_xml(serialize_model_xml(document))
        model = restored.resource_models[0]
        assert isinstance(model, MemoryUsageModel)
        assert model.primary_target_fraction == 0.6
        assert model.warmup_hours == 3.0
        assert model.selector.min_cores == 8

    def test_cpu_model_roundtrip(self):
        original = CpuUsageModel(ALL_PREMIUM_BC,
                                 HourlyNormalSchedule.constant(0.2, 0.05),
                                 secondary_fraction=0.4)
        document = TotoModelDocument(resource_models=[original])
        restored = parse_model_xml(serialize_model_xml(document))
        model = restored.resource_models[0]
        assert isinstance(model, CpuUsageModel)
        assert model.secondary_fraction == 0.4
        assert model.utilization == original.utilization

    def test_population_roundtrip(self):
        population = make_flat_population()
        document = TotoModelDocument(population=population)
        restored = parse_model_xml(serialize_model_xml(document)).population
        assert restored is not None
        for edition in Edition:
            assert (restored.create_drop[edition].creates
                    == population.create_drop[edition].creates)
            assert (restored.slo_mix[edition].weights
                    == population.slo_mix[edition].weights)
            spec = restored.initial_data[edition]
            assert spec.mu == population.initial_data[edition].mu
            assert spec.core_exponent == \
                population.initial_data[edition].core_exponent

    def test_model_order_preserved(self):
        models = [make_disk_model(), MemoryUsageModel(ALL_PREMIUM_BC)]
        document = TotoModelDocument(resource_models=models)
        restored = parse_model_xml(serialize_model_xml(document))
        assert [type(m).__name__ for m in restored.resource_models] == \
            ["DiskUsageModel", "MemoryUsageModel"]


class TestParsing:
    def test_malformed_xml_rejected(self):
        with pytest.raises(ModelSpecError):
            parse_model_xml("<TotoModels")

    def test_wrong_root_rejected(self):
        with pytest.raises(ModelSpecError):
            parse_model_xml("<NotToto version='1'/>")

    def test_wrong_version_rejected(self):
        with pytest.raises(ModelSpecError):
            parse_model_xml("<TotoModels version='99'/>")

    def test_unknown_model_element_rejected(self):
        xml = ("<TotoModels version='1'><ResourceModels>"
               "<MysteryModel/></ResourceModels></TotoModels>")
        with pytest.raises(ModelSpecError):
            parse_model_xml(xml)

    def test_disk_model_requires_steady_state(self):
        xml = ("<TotoModels version='1'><ResourceModels>"
               "<DiskUsageModel persisted='true'/>"
               "</ResourceModels></TotoModels>")
        with pytest.raises(ModelSpecError):
            parse_model_xml(xml)

    def test_empty_document_ok(self):
        document = parse_model_xml("<TotoModels version='1'/>")
        assert document.resource_models == []
        assert document.population is None

    def test_bad_boolean_rejected(self):
        document = TotoModelDocument(resource_models=[make_disk_model()])
        xml = serialize_model_xml(document).replace(
            'persisted="true"', 'persisted="maybe"')
        with pytest.raises(ModelSpecError):
            parse_model_xml(xml)


class TestSemanticsPreserved:
    def test_parsed_model_samples_like_original(self):
        """A parsed model given the same context and seed produces the
        same value as the original — the declarative round trip is
        behaviour-preserving."""
        import numpy as np
        from repro.core.model_base import ModelContext
        from repro.sqldb.database import DatabaseInstance
        from repro.sqldb.slo import get_slo

        original = make_disk_model()
        document = TotoModelDocument(resource_models=[original])
        restored = parse_model_xml(serialize_model_xml(document))
        parsed = restored.resource_models[0]

        db = DatabaseInstance(db_id="db-3", slo=get_slo("BC_Gen5_4"),
                              created_at=0, initial_data_gb=80.0)

        def sample(model, seed):
            return model.next_value(ModelContext(
                now=7200, interval_seconds=300, database=db,
                is_primary=True, previous_value=123.0,
                rng=np.random.default_rng(seed)))

        for seed in range(5):
            assert sample(original, seed) == sample(parsed, seed)
