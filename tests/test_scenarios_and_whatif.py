"""Tests for the canonical paper scenarios and the what-if tooling."""

import pytest

from repro.core.disk_models import DiskUsageModel
from repro.core.hourly_schedule import DayType
from repro.experiments.scenarios import paper_scenario, trained_artifacts
from repro.sqldb.editions import Edition


class TestTrainedArtifacts:
    def test_cached_per_parameters(self):
        a = trained_artifacts()
        b = trained_artifacts()
        assert a is b

    def test_different_seed_different_artifacts(self):
        a = trained_artifacts(training_seed=1, disk_corpus_size=120,
                              training_days=7)
        b = trained_artifacts(training_seed=2, disk_corpus_size=120,
                              training_days=7)
        assert a is not b

    def test_document_has_both_disk_models(self):
        document = trained_artifacts().document
        editions = {model.selector.edition
                    for model in document.resource_models
                    if isinstance(model, DiskUsageModel)}
        assert editions == {Edition.STANDARD_GP, Edition.PREMIUM_BC}


class TestPaperScenario:
    def test_defaults_match_paper_setup(self):
        scenario = paper_scenario()
        assert scenario.ring.node_count == 14
        assert scenario.duration_hours == pytest.approx(144.0)
        assert scenario.initial_population.gp_count == 187
        assert scenario.initial_population.bc_count == 33

    def test_density_knob(self):
        scenario = paper_scenario(density=1.4)
        assert scenario.ring.density == 1.4
        assert "140" in scenario.name

    def test_same_document_across_densities(self):
        a = paper_scenario(density=1.0)
        b = paper_scenario(density=1.4)
        assert a.model_document is b.model_document
        assert a.seed == b.seed

    def test_plb_salt_passthrough(self):
        assert paper_scenario(plb_salt=2).plb_salt == 2

    def test_maintenance_toggle(self):
        assert paper_scenario(maintenance=False) \
            .ring.maintenance_interval_hours == 0.0
        assert paper_scenario(maintenance=True) \
            .ring.maintenance_interval_hours > 0.0


class TestWhatIfScaling:
    def test_scale_bc_growth_only_touches_bc(self):
        import sys
        sys.path.insert(0, "examples")
        from whatif_disk_growth import scale_bc_growth

        document = trained_artifacts().document
        scaled = scale_bc_growth(document, 2.0)
        original = {model.selector.edition: model
                    for model in document.resource_models
                    if isinstance(model, DiskUsageModel)}
        modified = {model.selector.edition: model
                    for model in scaled.resource_models
                    if isinstance(model, DiskUsageModel)}

        bc_before = original[Edition.PREMIUM_BC].steady.params(
            DayType.WEEKDAY, 13)[0]
        bc_after = modified[Edition.PREMIUM_BC].steady.params(
            DayType.WEEKDAY, 13)[0]
        assert bc_after == pytest.approx(2.0 * bc_before)

        gp_before = original[Edition.STANDARD_GP].steady.params(
            DayType.WEEKDAY, 13)[0]
        gp_after = modified[Edition.STANDARD_GP].steady.params(
            DayType.WEEKDAY, 13)[0]
        assert gp_after == gp_before
        # Population models carried over untouched.
        assert scaled.population is document.population
