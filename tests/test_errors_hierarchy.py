"""Tests for the exception hierarchy contract.

Callers rely on two properties: every library error is caught by
``except ReproError``, and subsystem bases (FabricError, SqlDbError,
ModelError) partition their children so callers can be selective.
"""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SimulationError,
    errors.FabricError,
    errors.PlacementError,
    errors.CapacityError,
    errors.NamingServiceError,
    errors.UnknownReplicaError,
    errors.SqlDbError,
    errors.UnknownSloError,
    errors.UnknownDatabaseError,
    errors.AdmissionRejected,
    errors.ModelError,
    errors.ModelSpecError,
    errors.TrainingError,
    errors.ScenarioError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    @pytest.mark.parametrize("exc", [errors.PlacementError,
                                     errors.CapacityError,
                                     errors.NamingServiceError,
                                     errors.UnknownReplicaError])
    def test_fabric_family(self, exc):
        assert issubclass(exc, errors.FabricError)
        assert not issubclass(exc, errors.SqlDbError)

    @pytest.mark.parametrize("exc", [errors.UnknownSloError,
                                     errors.UnknownDatabaseError,
                                     errors.AdmissionRejected])
    def test_sqldb_family(self, exc):
        assert issubclass(exc, errors.SqlDbError)
        assert not issubclass(exc, errors.FabricError)

    @pytest.mark.parametrize("exc", [errors.ModelSpecError,
                                     errors.TrainingError])
    def test_model_family(self, exc):
        assert issubclass(exc, errors.ModelError)

    def test_admission_rejected_carries_capacity_context(self):
        exc = errors.AdmissionRejected("full", required_cores=96,
                                       free_cores=12)
        assert exc.required_cores == 96
        assert exc.free_cores == 12
        assert "full" in str(exc)

    def test_repro_error_not_caught_by_foreign_except(self):
        with pytest.raises(errors.ReproError):
            try:
                raise errors.PlacementError("no room")
            except (ValueError, KeyError):  # must not swallow
                pytest.fail("library error caught by builtin handler")
