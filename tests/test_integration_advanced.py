"""Advanced integration tests: rebuild windows, live memory models,
mid-run XML retuning, and the greedy-placement ablation."""

import numpy as np
import pytest

from repro.core.disk_models import DiskUsageModel
from repro.core.hourly_schedule import HourlyNormalSchedule
from repro.core.memory_model import MemoryUsageModel
from repro.core.model_base import TotoModelSet
from repro.core.model_xml import TotoModelDocument
from repro.core.orchestrator import TotoOrchestrator
from repro.core.selectors import ALL_DATABASES, ALL_PREMIUM_BC
from repro.fabric.cluster import ServiceFabricCluster
from repro.fabric.metrics import DISK_GB, MEMORY_GB, NodeCapacities
from repro.fabric.replica import ReplicaRole
from repro.sqldb.editions import COLD_BUFFER_POOL_GB, Edition
from repro.units import HOUR, MINUTE
from tests.conftest import make_flat_disk_model, make_ring


class TestRebuildWindowVulnerability:
    def make_cluster(self):
        return ServiceFabricCluster(
            node_count=6,
            capacities=NodeCapacities(cpu_cores=32, disk_gb=1000,
                                      memory_gb=128),
            plb_rng=np.random.default_rng(1))

    def test_rebuild_window_recorded_on_bc_move(self):
        cluster = self.make_cluster()
        record = cluster.create_service("bc", 4, 2.0, {DISK_GB: 100.0},
                                        now=0)
        replica = record.secondaries[0]
        cluster.report_load(replica, {DISK_GB: 1200.0})
        cluster.sweep_violations(now=100)
        # Either the big replica moved (rebuild window set) or it was
        # stuck; when a move happened the window must be in the future.
        if cluster.failovers:
            assert cluster.rebuilding_until("bc") > 100

    def test_primary_move_during_rebuild_costs_the_window(self):
        cluster = self.make_cluster()
        record = cluster.create_service("bc", 4, 2.0, {DISK_GB: 200.0},
                                        now=0)
        cluster.set_rebuilding("bc", until=3000)
        primary = record.primary
        # Force a violation on the primary's node.
        cluster.report_load(primary, {DISK_GB: 1100.0})
        records = cluster.sweep_violations(now=600)
        primary_moves = [r for r in records
                         if r.role is ReplicaRole.PRIMARY
                         and r.service_id == "bc"]
        if primary_moves:
            # Remaining window is 2400s; downtime must reflect it.
            assert primary_moves[0].downtime_seconds >= 2400 - 1

    def test_window_cleared_on_drop(self):
        cluster = self.make_cluster()
        cluster.create_service("bc", 4, 2.0, {DISK_GB: 10.0}, now=0)
        cluster.set_rebuilding("bc", until=9999)
        cluster.drop_service("bc")
        assert cluster.rebuilding_until("bc") == 0

    def test_window_monotone(self):
        cluster = self.make_cluster()
        cluster.create_service("bc", 4, 2.0, {}, now=0)
        cluster.set_rebuilding("bc", until=500)
        cluster.set_rebuilding("bc", until=300)  # shorter: ignored
        assert cluster.rebuilding_until("bc") == 500


class TestLiveMemoryModel:
    def test_memory_warms_up_through_sweeps(self, kernel, rng_registry):
        """The §5.5 memory model running inside the full report loop."""
        ring = make_ring(kernel, rng_registry, node_count=6)
        db = ring.control_plane.create_database("BC_Gen5_4", now=0,
                                                initial_data_gb=40.0)
        memory_model = MemoryUsageModel(ALL_DATABASES, warmup_hours=0.5,
                                        jitter_fraction=0.0)
        for rgmanager in ring.rgmanagers:
            rgmanager.install_models(TotoModelSet([memory_model]), 1)
        ring.start()
        kernel.run_until(4 * HOUR)
        record = ring.cluster.service(db.db_id)
        primary_memory = record.primary.load(MEMORY_GB)
        assert primary_memory > COLD_BUFFER_POOL_GB
        assert primary_memory == pytest.approx(0.75 * db.slo.memory_gb,
                                               rel=0.05)
        # Secondaries warm to their lower target.
        for secondary in record.secondaries:
            assert secondary.load(MEMORY_GB) < primary_memory


class TestMidRunRetuning:
    def test_xml_update_changes_growth_within_refresh(self, kernel,
                                                      rng_registry):
        """§3.3.1: 'grow disk usage of Premium/BC replicas 2x faster is
        easily configurable simply by changing XML properties' — and it
        propagates via the 15-minute refresh, no restart."""
        ring = make_ring(kernel, rng_registry, node_count=6)
        orchestrator = TotoOrchestrator(kernel, ring)
        orchestrator.start()
        ring.start()
        db = ring.control_plane.create_database("BC_Gen5_4", now=0,
                                                initial_data_gb=100.0)

        def document(mu):
            return TotoModelDocument(resource_models=[
                DiskUsageModel(selector=ALL_PREMIUM_BC,
                               steady=HourlyNormalSchedule.constant(mu, 0.0),
                               persisted=True, rate_heterogeneity=0.0)])

        orchestrator.publish_models(document(4.0), propagate_now=True)
        kernel.run_until(2 * HOUR)
        primary = ring.cluster.service(db.db_id).primary
        disk_slow = primary.load(DISK_GB)
        slow_rate = (disk_slow - 100.0) / 2.0  # GB per hour

        orchestrator.publish_models(document(8.0))  # no propagate_now
        kernel.run_until(2 * HOUR + 20 * MINUTE)   # refresh picks it up
        start_fast = primary.load(DISK_GB)
        kernel.run_until(4 * HOUR + 20 * MINUTE)
        fast_rate = (primary.load(DISK_GB) - start_fast) / 2.0

        assert fast_rate == pytest.approx(2.0 * slow_rate, rel=0.1)


class TestGreedyAblation:
    def run_placements(self, use_annealing, seed=0):
        cluster = ServiceFabricCluster(
            node_count=8,
            capacities=NodeCapacities(cpu_cores=64, disk_gb=4096,
                                      memory_gb=256),
            plb_rng=np.random.default_rng(seed),
            use_annealing=use_annealing)
        rng = np.random.default_rng(42)
        for index in range(40):
            cores = float(rng.integers(2, 9))
            disk = float(rng.integers(20, 400))
            replica_count = 4 if index % 6 == 0 else 1
            cluster.create_service(f"s{index}", replica_count, cores,
                                   {DISK_GB: disk}, now=index)
        return cluster

    def test_both_modes_produce_valid_clusters(self):
        for use_annealing in (True, False):
            cluster = self.run_placements(use_annealing)
            cluster.validate_invariants()
            assert cluster.service_count == 40

    def test_greedy_is_deterministic(self):
        a = self.run_placements(False, seed=1)
        b = self.run_placements(False, seed=2)  # PLB seed unused
        placements_a = [r.node_id for r in a.replicas()]
        placements_b = [r.node_id for r in b.replicas()]
        assert placements_a == placements_b

    def test_annealing_spreads_cpu_reasonably(self):
        cluster = self.run_placements(True)
        loads = [node.load("cpu-cores") for node in cluster.nodes]
        assert max(loads) - min(loads) <= 24
