"""Tests for time/size unit helpers."""

import pytest

from repro.units import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    day_index,
    format_duration,
    hour_of_day,
    hours,
    is_weekend,
    weekday_index,
)


class TestConstants:
    def test_minute(self):
        assert MINUTE == 60

    def test_hour(self):
        assert HOUR == 3600

    def test_day(self):
        assert DAY == 24 * HOUR

    def test_week(self):
        assert WEEK == 7 * DAY


class TestHourOfDay:
    def test_time_zero(self):
        assert hour_of_day(0) == 0

    def test_mid_hour(self):
        assert hour_of_day(HOUR + 120) == 1

    def test_last_hour(self):
        assert hour_of_day(23 * HOUR) == 23

    def test_wraps_at_midnight(self):
        assert hour_of_day(DAY) == 0

    def test_second_day(self):
        assert hour_of_day(DAY + 5 * HOUR) == 5


class TestDayIndex:
    def test_first_day(self):
        assert day_index(0) == 0
        assert day_index(DAY - 1) == 0

    def test_second_day(self):
        assert day_index(DAY) == 1


class TestWeekday:
    def test_monday_start(self):
        assert weekday_index(0) == 0

    def test_saturday(self):
        assert weekday_index(5 * DAY) == 5

    def test_wraps_after_week(self):
        assert weekday_index(7 * DAY) == 0

    def test_custom_start_weekday(self):
        # Start on Friday (4): next day is Saturday.
        assert weekday_index(DAY, start_weekday=4) == 5

    def test_weekend_detection(self):
        assert not is_weekend(0)            # Monday
        assert not is_weekend(4 * DAY)      # Friday
        assert is_weekend(5 * DAY)          # Saturday
        assert is_weekend(6 * DAY)          # Sunday
        assert not is_weekend(7 * DAY)      # Monday again

    def test_weekend_with_start_offset(self):
        assert is_weekend(0, start_weekday=6)
        assert not is_weekend(DAY, start_weekday=6)


class TestFormatting:
    def test_hours_conversion(self):
        assert hours(2 * HOUR) == 2.0
        assert hours(90 * MINUTE) == 1.5

    def test_format_short(self):
        assert format_duration(3 * HOUR + 5 * MINUTE + 7) == "03:05:07"

    def test_format_with_days(self):
        assert format_duration(2 * DAY + 3 * HOUR) == "2d 03:00:00"

    def test_format_zero(self):
        assert format_duration(0) == "00:00:00"
