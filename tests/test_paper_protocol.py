"""Protocol-level assertions from §5.2 on short paper-style runs.

These verify the experimental *protocol* the paper relies on, using
scaled-down runs of the real scenario builder:

* the initial population is identical in each experiment;
* the Population Manager's request sequence is identical across
  densities (single seed);
* the PLB seed is the only intentionally varying source of randomness.
"""

import pytest

from repro.core.runner import BenchmarkRunner, run_scenario
from repro.experiments.scenarios import paper_scenario


@pytest.fixture(scope="module")
def short_runs():
    """Two density levels, 6 hours each, shared training artifacts."""
    runners = {}
    for density in (1.0, 1.4):
        runner = BenchmarkRunner(paper_scenario(density=density,
                                                days=0.25,
                                                maintenance=False))
        runner.run()
        runners[density] = runner
    return runners


class TestBootstrapIdentical:
    def test_same_population_counts(self, short_runs):
        frames = {density: runner.collector.frames[0]
                  for density, runner in short_runs.items()}
        assert frames[1.0].active_gp == frames[1.4].active_gp == 187
        assert frames[1.0].active_bc == frames[1.4].active_bc == 33

    def test_same_reserved_cores_at_start(self, short_runs):
        cores = {density: runner.collector.frames[0].reserved_cores
                 for density, runner in short_runs.items()}
        assert cores[1.0] == cores[1.4]

    def test_same_disk_at_start(self, short_runs):
        disk = {density: runner.collector.frames[0].disk_gb
                for density, runner in short_runs.items()}
        assert disk[1.0] == pytest.approx(disk[1.4])

    def test_free_cores_scale_with_density(self, short_runs):
        free = {density: runner._bootstrap_free_cores
                for density, runner in short_runs.items()}
        # +40% density on a 14 x 72-core ring frees ~403 more cores.
        assert free[1.4] - free[1.0] == pytest.approx(0.4 * 14 * 72,
                                                      abs=1.0)


class TestChurnIdentical:
    def test_request_logs_identical(self, short_runs):
        logs = [runner.population_manager.request_log
                for runner in short_runs.values()]
        assert logs[0] == logs[1]
        assert logs[0], "expected requests within 6 hours"

    def test_admission_outcomes_may_differ(self, short_runs):
        """Only outcomes (not requests) may differ across densities."""
        admitted = {density: runner.population_manager.stats.creates_admitted
                    for density, runner in short_runs.items()}
        requested = {density: runner.population_manager.stats
                     .creates_requested
                     for density, runner in short_runs.items()}
        assert requested[1.0] == requested[1.4]
        assert admitted[1.0] <= admitted[1.4] or True  # no crash; log parity
        # is the real §5.2 guarantee asserted above.


class TestPlbSeedIsolation:
    def test_plb_salt_preserves_request_log(self):
        logs = []
        for salt in (0, 1):
            runner = BenchmarkRunner(paper_scenario(density=1.1,
                                                    days=0.2,
                                                    plb_salt=salt,
                                                    maintenance=False))
            runner.run()
            logs.append(runner.population_manager.request_log)
        assert logs[0] == logs[1]

    def test_plb_salt_changes_placements(self):
        placements = []
        for salt in (0, 1):
            runner = BenchmarkRunner(paper_scenario(density=1.1,
                                                    days=0.1,
                                                    plb_salt=salt,
                                                    maintenance=False))
            runner.run()
            placements.append(tuple(
                replica.node_id
                for replica in runner.ring.cluster.replicas()))
        # Identical population, different annealing randomness: the
        # replica-to-node assignment differs somewhere.
        assert placements[0] != placements[1]
