"""Tests for create/drop, memory, and CPU models plus the model set."""

import numpy as np
import pytest

from repro.errors import ModelSpecError
from repro.core.cpu_model import CPU_USED_CORES, CpuUsageModel
from repro.core.create_drop import CreateDropModel
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.memory_model import MemoryUsageModel
from repro.core.model_base import ModelContext, TotoModelSet
from repro.core.selectors import ALL_DATABASES, ALL_PREMIUM_BC
from repro.fabric.metrics import DISK_GB, MEMORY_GB
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import COLD_BUFFER_POOL_GB, Edition
from repro.sqldb.slo import get_slo
from repro.units import HOUR
from tests.conftest import make_flat_disk_model


def make_db(slo="BC_Gen5_4"):
    return DatabaseInstance(db_id="db-1", slo=get_slo(slo), created_at=0,
                            initial_data_gb=50.0)


def context(db, now=0, prev=None, interval=300, primary=True, seed=0):
    return ModelContext(now=now, interval_seconds=interval, database=db,
                        is_primary=primary, previous_value=prev,
                        rng=np.random.default_rng(seed))


class TestCreateDropModel:
    def make_model(self, create_mu=4.0, drop_mu=2.0, sigma=0.0):
        return CreateDropModel(
            edition=Edition.STANDARD_GP,
            creates=HourlyNormalSchedule.constant(create_mu, sigma),
            drops=HourlyNormalSchedule.constant(drop_mu, sigma))

    def test_deterministic_when_sigma_zero(self):
        model = self.make_model()
        rng = np.random.default_rng(0)
        assert model.sample_creates(DayType.WEEKDAY, 10, rng) == 4
        assert model.sample_drops(DayType.WEEKDAY, 10, rng) == 2

    def test_never_negative(self):
        model = self.make_model(create_mu=-5.0)
        rng = np.random.default_rng(0)
        assert model.sample_creates(DayType.WEEKDAY, 0, rng) == 0

    def test_rounding(self):
        model = self.make_model(create_mu=2.6)
        rng = np.random.default_rng(0)
        assert model.sample_creates(DayType.WEEKEND, 5, rng) == 3

    def test_expected_net_per_day(self):
        model = self.make_model(create_mu=4.0, drop_mu=2.0)
        assert model.expected_net_per_day(DayType.WEEKDAY) == \
            pytest.approx(48.0)

    def test_ring_scaling(self):
        model = self.make_model(create_mu=30.0).scaled_to_ring(15)
        assert model.expected_creates(DayType.WEEKDAY, 0) == \
            pytest.approx(2.0)

    def test_bad_ring_count(self):
        with pytest.raises(ModelSpecError):
            self.make_model().scaled_to_ring(0)

    def test_incomplete_schedule_rejected(self):
        partial = HourlyNormalSchedule()
        partial.set(DayType.WEEKDAY, 0, 1.0, 0.0)
        with pytest.raises(ModelSpecError):
            CreateDropModel(edition=Edition.STANDARD_GP, creates=partial,
                            drops=HourlyNormalSchedule.constant(0, 0))


class TestMemoryModel:
    def test_initial_is_cold_buffer_pool(self):
        model = MemoryUsageModel(ALL_DATABASES)
        db = make_db()
        assert model.initial_value(context(db)) == COLD_BUFFER_POOL_GB

    def test_warmup_approaches_target(self):
        model = MemoryUsageModel(ALL_DATABASES, warmup_hours=1.0,
                                 jitter_fraction=0.0)
        db = make_db("BC_Gen5_4")  # 20.4 GB grant
        value = COLD_BUFFER_POOL_GB
        for _ in range(48):  # 4 hours of 5-minute reports
            value = model.next_value(context(db, prev=value, interval=300))
        target = 0.75 * db.slo.memory_gb
        assert value == pytest.approx(target, rel=0.05)

    def test_secondary_target_lower(self):
        model = MemoryUsageModel(ALL_DATABASES, warmup_hours=0.01,
                                 jitter_fraction=0.0)
        db = make_db()
        primary = model.next_value(context(db, prev=10.0, primary=True,
                                           interval=HOUR))
        secondary = model.next_value(context(db, prev=10.0, primary=False,
                                             interval=HOUR))
        assert secondary < primary

    def test_never_exceeds_grant(self):
        model = MemoryUsageModel(ALL_DATABASES, jitter_fraction=0.5)
        db = make_db("BC_Gen5_2")
        for seed in range(20):
            value = model.next_value(context(db, prev=db.slo.memory_gb,
                                             seed=seed))
            assert value <= db.slo.memory_gb

    def test_not_persisted(self):
        assert MemoryUsageModel(ALL_DATABASES).persisted is False

    def test_bad_fraction_rejected(self):
        with pytest.raises(ModelSpecError):
            MemoryUsageModel(ALL_DATABASES, primary_target_fraction=1.5)


class TestCpuModel:
    def make_model(self, mu=0.25, sigma=0.0):
        return CpuUsageModel(ALL_DATABASES,
                             HourlyNormalSchedule.constant(mu, sigma))

    def test_reports_used_cores(self):
        model = self.make_model(mu=0.25)
        db = make_db("BC_Gen5_8")
        value = model.next_value(context(db, prev=0.0))
        assert value == pytest.approx(0.25 * 8)

    def test_secondary_fraction(self):
        model = self.make_model(mu=0.5)
        db = make_db("BC_Gen5_8")
        secondary = model.next_value(context(db, prev=0.0, primary=False))
        assert secondary == pytest.approx(0.5 * 8 * 0.3)

    def test_utilization_clamped(self):
        model = self.make_model(mu=3.0)
        db = make_db("GP_Gen5_4")
        assert model.next_value(context(db, prev=0.0)) == pytest.approx(4.0)

    def test_initial_is_idle(self):
        assert self.make_model().initial_value(context(make_db())) == 0.0

    def test_advisory_metric_name(self):
        assert self.make_model().metric == CPU_USED_CORES
        assert CPU_USED_CORES != "cpu-cores"


class TestTotoModelSet:
    def test_find_by_metric_and_selector(self):
        disk_bc = make_flat_disk_model(Edition.PREMIUM_BC)
        disk_gp = make_flat_disk_model(Edition.STANDARD_GP)
        memory = MemoryUsageModel(ALL_DATABASES)
        model_set = TotoModelSet([disk_bc, disk_gp, memory])
        assert model_set.find(DISK_GB, make_db("BC_Gen5_2")) is disk_bc
        assert model_set.find(DISK_GB, make_db("GP_Gen5_2")) is disk_gp
        assert model_set.find(MEMORY_GB, make_db("GP_Gen5_2")) is memory

    def test_find_returns_none_when_no_match(self):
        model_set = TotoModelSet([make_flat_disk_model(Edition.PREMIUM_BC)])
        assert model_set.find(DISK_GB, make_db("GP_Gen5_2")) is None
        assert model_set.find(MEMORY_GB, make_db("BC_Gen5_2")) is None

    def test_first_match_wins(self):
        specific = make_flat_disk_model(Edition.PREMIUM_BC, mu=9.0)
        broad = make_flat_disk_model(Edition.PREMIUM_BC, mu=1.0)
        model_set = TotoModelSet([specific, broad])
        assert model_set.find(DISK_GB, make_db("BC_Gen5_2")) is specific

    def test_metrics_modeled(self):
        model_set = TotoModelSet([
            make_flat_disk_model(Edition.PREMIUM_BC),
            MemoryUsageModel(ALL_PREMIUM_BC),
        ])
        assert model_set.metrics_modeled() == [DISK_GB, MEMORY_GB]

    def test_len(self):
        assert len(TotoModelSet([])) == 0
