"""Property-based tests for the behaviour models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.create_drop import CreateDropModel
from repro.core.disk_models import DiskUsageModel
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.model_base import ModelContext
from repro.core.selectors import ALL_PREMIUM_BC, DatabaseSelector
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import Edition
from repro.sqldb.slo import SLO_CATALOG, get_slo
from repro.units import DELTA_DISK_PERIOD


def make_db(slo="BC_Gen5_4"):
    return DatabaseInstance(db_id="db-p", slo=get_slo(slo), created_at=0,
                            initial_data_gb=50.0)


class TestCreateDropSampling:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_sample_mean_tracks_mu(self, mu, sigma, seed):
        model = CreateDropModel(
            edition=Edition.STANDARD_GP,
            creates=HourlyNormalSchedule.constant(mu, sigma),
            drops=HourlyNormalSchedule.constant(mu, sigma))
        rng = np.random.default_rng(seed)
        samples = [model.sample_creates(DayType.WEEKDAY, 12, rng)
                   for _ in range(400)]
        # Rounding contributes up to 0.5 absolute error; sampling error
        # of the mean is sigma / sqrt(400); truncation at zero adds a
        # positive bias bounded by sigma.
        tolerance = 0.5 + sigma / 20.0 * 4.0 + sigma
        assert abs(np.mean(samples) - mu) <= tolerance
        assert min(samples) >= 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=50))
    def test_ring_scaling_preserves_shape(self, ring_count):
        creates = HourlyNormalSchedule.constant(30.0, 5.0)
        creates.set(DayType.WEEKDAY, 13, 90.0, 10.0)
        model = CreateDropModel(edition=Edition.PREMIUM_BC,
                                creates=creates,
                                drops=HourlyNormalSchedule.constant(10, 1))
        scaled = model.scaled_to_ring(ring_count)
        peak = scaled.expected_creates(DayType.WEEKDAY, 13)
        base = scaled.expected_creates(DayType.WEEKDAY, 0)
        assert peak / base == pytest.approx(3.0)  # shape invariant


class TestDiskModelBounds:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.0, max_value=4000.0, allow_nan=False),
           st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_next_value_within_floor_and_cap(self, prev, mu, sigma, seed):
        model = DiskUsageModel(
            selector=ALL_PREMIUM_BC,
            steady=HourlyNormalSchedule.constant(mu, sigma),
            floor_gb=1.0, rate_heterogeneity=0.5)
        db = make_db("BC_Gen5_4")
        value = model.next_value(ModelContext(
            now=7200, interval_seconds=DELTA_DISK_PERIOD, database=db,
            is_primary=True, previous_value=prev,
            rng=np.random.default_rng(seed)))
        assert 1.0 <= value <= db.slo.max_data_gb

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="abcdef0123456789-", min_size=1,
                   max_size=20))
    def test_rate_factor_positive_and_stable(self, db_id):
        model = DiskUsageModel(selector=ALL_PREMIUM_BC,
                               steady=HourlyNormalSchedule.constant(0, 0),
                               rate_heterogeneity=0.8)
        factor = model.rate_factor(db_id)
        assert factor > 0
        assert model.rate_factor(db_id) == factor


@st.composite
def selectors(draw):
    slo_names = None
    if draw(st.booleans()):
        slo_names = frozenset(draw(st.sets(
            st.sampled_from(sorted(SLO_CATALOG)), min_size=1,
            max_size=4)))
    db_ids = None
    if draw(st.booleans()):
        db_ids = frozenset(draw(st.sets(
            st.text(alphabet="abc123-", min_size=1, max_size=8),
            min_size=1, max_size=3)))
    cores = sorted(draw(st.lists(
        st.sampled_from([None, 2, 4, 8, 16, 32]), min_size=2,
        max_size=2)), key=lambda x: (x is None, x))
    min_cores = cores[0] if cores[0] is not None else None
    max_cores = cores[1] if cores[1] is not None else None
    if min_cores is not None and max_cores is not None \
            and min_cores > max_cores:
        min_cores, max_cores = max_cores, min_cores
    return DatabaseSelector(
        edition=draw(st.sampled_from([None, Edition.STANDARD_GP,
                                      Edition.PREMIUM_BC])),
        slo_names=slo_names, db_ids=db_ids,
        min_cores=min_cores, max_cores=max_cores)


class TestSelectorProperties:
    @settings(max_examples=50, deadline=None)
    @given(selectors())
    def test_attribute_roundtrip(self, selector):
        restored = DatabaseSelector.from_attributes(
            selector.to_attributes())
        assert restored == selector

    @settings(max_examples=50, deadline=None)
    @given(selectors(), st.sampled_from(sorted(SLO_CATALOG)))
    def test_roundtrip_preserves_matching(self, selector, slo_name):
        db = DatabaseInstance(db_id="db-1", slo=get_slo(slo_name),
                              created_at=0, initial_data_gb=1.0)
        restored = DatabaseSelector.from_attributes(
            selector.to_attributes())
        assert restored.matches(db) == selector.matches(db)
