"""Tests for JSON result export."""

import io
import json

import pytest

from repro.core.runner import run_scenario
from repro.experiments.density import DensityStudy
from repro.experiments.export import (
    result_to_dict,
    study_to_dict,
    write_json,
)
from tests.test_runner_integration import small_scenario


@pytest.fixture(scope="module")
def result(tiny_document):
    return run_scenario(small_scenario(tiny_document, hours=4))


class TestResultExport:
    def test_roundtrips_through_json(self, result):
        payload = result_to_dict(result)
        restored = json.loads(json.dumps(payload))
        assert restored == payload

    def test_kpis_present(self, result):
        payload = result_to_dict(result)
        assert payload["kpis"]["final_reserved_cores"] == \
            result.kpis.final_reserved_cores
        assert payload["revenue"]["adjusted"] == pytest.approx(
            result.revenue.total_adjusted)

    def test_hourly_series(self, result):
        payload = result_to_dict(result)
        assert len(payload["hourly"]) == len(result.frames)
        assert payload["hourly"][0]["hour"] == 0

    def test_write_to_path(self, result, tmp_path):
        path = tmp_path / "run.json"
        write_json(result, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["scenario"]["name"] == result.scenario.name

    def test_write_to_handle(self, result):
        buffer = io.StringIO()
        write_json(result, buffer)
        buffer.seek(0)
        assert json.load(buffer)["scenario"]["seed"] == \
            result.scenario.seed


class TestStudyExport:
    def test_small_study_export(self):
        study = DensityStudy(densities=(1.0, 1.2), days=0.2,
                             maintenance=False)
        payload = study_to_dict(study)
        json.dumps(payload)  # must be serializable
        assert set(payload["runs"]) == {"100", "120"}
        assert payload["table3"][0]["density_pct"] == 100
        assert len(payload["figure14"]) == 2
