"""Tests for the Naming Service metastore."""

import pytest

from repro.errors import NamingServiceError
from repro.fabric.naming import NamingService


@pytest.fixture
def naming():
    return NamingService()


class TestBasicOps:
    def test_put_get(self, naming):
        naming.put("k", "v")
        assert naming.get("k") == "v"

    def test_get_missing_raises(self, naming):
        with pytest.raises(NamingServiceError):
            naming.get("missing")

    def test_get_or_default(self, naming):
        assert naming.get_or_default("missing") is None
        assert naming.get_or_default("missing", 7) == 7

    def test_overwrite(self, naming):
        naming.put("k", 1)
        naming.put("k", 2)
        assert naming.get("k") == 2

    def test_exists(self, naming):
        assert not naming.exists("k")
        naming.put("k", 1)
        assert naming.exists("k")

    def test_delete(self, naming):
        naming.put("k", 1)
        naming.delete("k")
        assert not naming.exists("k")

    def test_delete_missing_raises(self, naming):
        with pytest.raises(NamingServiceError):
            naming.delete("missing")

    def test_delete_if_exists(self, naming):
        assert not naming.delete_if_exists("k")
        naming.put("k", 1)
        assert naming.delete_if_exists("k")

    def test_len_and_iter(self, naming):
        naming.put("b", 1)
        naming.put("a", 2)
        assert len(naming) == 2
        assert list(naming) == ["a", "b"]


class TestVersions:
    def test_version_starts_at_zero(self, naming):
        assert naming.version("k") == 0

    def test_version_increments_on_put(self, naming):
        assert naming.put("k", "x") == 1
        assert naming.put("k", "y") == 2
        assert naming.version("k") == 2

    def test_versions_independent_per_key(self, naming):
        naming.put("a", 1)
        naming.put("a", 2)
        naming.put("b", 1)
        assert naming.version("a") == 2
        assert naming.version("b") == 1


class TestPrefixScan:
    def test_keys_by_prefix(self, naming):
        naming.put("toto/load/db-1/disk", 10)
        naming.put("toto/load/db-2/disk", 20)
        naming.put("toto/models/xml", "<x/>")
        assert naming.keys("toto/load/") == [
            "toto/load/db-1/disk", "toto/load/db-2/disk"]

    def test_all_keys_sorted(self, naming):
        naming.put("z", 1)
        naming.put("a", 1)
        assert naming.keys() == ["a", "z"]


class TestCounters:
    def test_read_write_counters(self, naming):
        naming.put("k", 1)
        naming.get("k")
        naming.get_or_default("other")
        assert naming.writes == 1
        assert naming.reads == 2
