"""Tests for the §4 training pipeline."""

import numpy as np
import pytest

from repro.core.hourly_schedule import DayType
from repro.errors import TrainingError
from repro.models.delta_disk import (
    build_delta_disk_dataset,
    label_initial_growth,
    label_rapid_growth,
    robust_sigma,
)
from repro.models.hourly import HourlyTrainingSets, ks_p_values
from repro.models.training import (
    train_create_drop_model,
    train_disk_usage_model,
    train_initial_data_spec,
    train_population_models,
)
from repro.core.selectors import ALL_PREMIUM_BC
from repro.sqldb.editions import Edition
from repro.telemetry.production import ProductionTraceGenerator
from repro.telemetry.region import US_EAST_LIKE


@pytest.fixture(scope="module")
def generator():
    return ProductionTraceGenerator(US_EAST_LIKE, np.random.default_rng(55))


@pytest.fixture(scope="module")
def event_traces(generator):
    return generator.create_and_drop_traces(days=14)


@pytest.fixture(scope="module")
def disk_corpus(generator):
    return generator.disk_corpus(n_databases=150, days=7)


class TestHourlyTraining:
    def test_groups_have_48_cells_for_two_weeks(self, event_traces):
        trace = event_traces[(Edition.STANDARD_GP, "create")]
        sets = HourlyTrainingSets.from_trace(trace)
        assert len(sets.groups) == 48

    def test_weekday_samples_count(self, event_traces):
        trace = event_traces[(Edition.STANDARD_GP, "create")]
        sets = HourlyTrainingSets.from_trace(trace)
        # 14 days starting Monday: 10 weekdays, 4 weekend days.
        assert len(sets.sample(DayType.WEEKDAY, 0)) == 10
        assert len(sets.sample(DayType.WEEKEND, 0)) == 4

    def test_fit_schedule_complete(self, event_traces):
        trace = event_traces[(Edition.PREMIUM_BC, "drop")]
        schedule = HourlyTrainingSets.from_trace(trace).fit_schedule()
        schedule.validate()

    def test_ks_p_values_mostly_pass(self, event_traces):
        trace = event_traces[(Edition.STANDARD_GP, "create")]
        sets = HourlyTrainingSets.from_trace(trace)
        values = ks_p_values(sets, DayType.WEEKDAY)
        assert len(values) > 0
        passing = sum(1 for p in values if p > 0.05)
        assert passing >= 0.75 * len(values)

    def test_missing_group_raises(self):
        sets = HourlyTrainingSets(groups={})
        with pytest.raises(TrainingError):
            sets.sample(DayType.WEEKDAY, 0)


class TestCreateDropTraining:
    def test_trained_model_matches_trace_scale(self, event_traces):
        create = event_traces[(Edition.STANDARD_GP, "create")]
        drop = event_traces[(Edition.STANDARD_GP, "drop")]
        model = train_create_drop_model(create, drop)
        trained_daily = sum(model.expected_creates(DayType.WEEKDAY, hour)
                            for hour in range(24))
        observed = np.mean([total for day, total in
                            enumerate(create.daily_totals())
                            if day % 7 < 5])
        assert trained_daily == pytest.approx(observed, rel=0.05)

    def test_mismatched_editions_rejected(self, event_traces):
        with pytest.raises(TrainingError):
            train_create_drop_model(
                event_traces[(Edition.STANDARD_GP, "create")],
                event_traces[(Edition.PREMIUM_BC, "drop")])

    def test_short_trace_fills_weekend_cells(self, generator):
        # 4 days starting Monday never sees a weekend.
        create = generator.event_trace(Edition.STANDARD_GP, "create",
                                       days=4)
        drop = generator.event_trace(Edition.STANDARD_GP, "drop", days=4)
        model = train_create_drop_model(create, drop)
        model.creates.validate()  # weekend cells filled with fallback


class TestDeltaDiskLabeling:
    def test_robust_sigma_ignores_spikes(self):
        deltas = np.concatenate([np.full(100, 0.01), [500.0, -500.0]])
        assert robust_sigma(deltas) < 0.1
        assert np.std(deltas) > 10.0

    def test_initial_label(self, generator):
        trace = generator.disk_trace(0, Edition.PREMIUM_BC, days=2,
                                     pattern="initial")
        assert label_initial_growth(trace)

    def test_steady_not_labeled_initial(self, generator):
        trace = generator.disk_trace(0, Edition.STANDARD_GP, days=2,
                                     pattern="steady")
        assert not label_initial_growth(trace)

    def test_rapid_label(self, generator):
        trace = generator.disk_trace(0, Edition.PREMIUM_BC, days=14,
                                     pattern="rapid")
        assert label_rapid_growth(trace)

    def test_steady_not_labeled_rapid(self, generator):
        trace = generator.disk_trace(0, Edition.STANDARD_GP, days=14,
                                     pattern="steady")
        assert not label_rapid_growth(trace)

    def test_dataset_steady_fraction_high(self, disk_corpus):
        dataset = build_delta_disk_dataset(disk_corpus)
        assert dataset.steady_fraction > 0.98  # paper reports ~99.8%

    def test_dataset_probabilities_sane(self, disk_corpus):
        dataset = build_delta_disk_dataset(disk_corpus)
        assert 0 < dataset.initial_probability < 0.3
        assert 0 < dataset.rapid_probability < 0.3

    def test_empty_corpus_rejected(self):
        with pytest.raises(TrainingError):
            build_delta_disk_dataset([])


class TestDiskModelTraining:
    def test_trained_model_has_all_components(self, disk_corpus):
        bc_traces = [t for t in disk_corpus
                     if t.edition is Edition.PREMIUM_BC]
        dataset = build_delta_disk_dataset(bc_traces)
        model = train_disk_usage_model(dataset, ALL_PREMIUM_BC,
                                       persisted=True)
        model.steady.validate()
        assert model.persisted
        assert model.initial_growth is not None
        assert model.rapid_growth is not None
        assert model.rapid_growth.cycle_seconds > 0

    def test_initial_data_spec_fit(self, disk_corpus):
        spec = train_initial_data_spec(disk_corpus, Edition.PREMIUM_BC)
        starts = [t.usage_gb[0] for t in disk_corpus
                  if t.edition is Edition.PREMIUM_BC]
        assert spec.median_gb() == pytest.approx(np.exp(
            np.mean(np.log(starts))), rel=0.01)
        assert spec.core_exponent > 0

    def test_initial_data_spec_needs_traces(self):
        with pytest.raises(TrainingError):
            train_initial_data_spec([], Edition.PREMIUM_BC)


class TestPopulationTraining:
    def test_population_models_complete(self, event_traces, disk_corpus):
        population = train_population_models(event_traces, disk_corpus,
                                             ring_count=15)
        population.validate()
        assert len(population.editions) == 2

    def test_ring_scaling_applied(self, event_traces, disk_corpus):
        region = train_population_models(event_traces, disk_corpus,
                                         ring_count=1)
        ring = train_population_models(event_traces, disk_corpus,
                                       ring_count=10)
        region_rate = region.create_drop[Edition.STANDARD_GP] \
            .expected_creates(DayType.WEEKDAY, 13)
        ring_rate = ring.create_drop[Edition.STANDARD_GP] \
            .expected_creates(DayType.WEEKDAY, 13)
        assert ring_rate == pytest.approx(region_rate / 10.0)


class TestFullPipeline:
    def test_tiny_artifacts_document_complete(self, tiny_artifacts):
        document = tiny_artifacts.document
        assert len(document.resource_models) == 2
        assert document.population is not None
        document.population.validate()

    def test_document_serializable(self, tiny_artifacts):
        from repro.core.model_xml import parse_model_xml, \
            serialize_model_xml
        xml = serialize_model_xml(tiny_artifacts.document)
        restored = parse_model_xml(xml)
        assert len(restored.resource_models) == 2

    def test_gp_model_not_persisted_bc_persisted(self, tiny_artifacts):
        by_edition = {model.selector.edition: model
                      for model in tiny_artifacts.document.resource_models}
        assert by_edition[Edition.PREMIUM_BC].persisted is True
        assert by_edition[Edition.STANDARD_GP].persisted is False
