"""Regression tests for the BENCH_perf.json ``--check`` gates.

The gates run on shared 1-core CI runners, so every timing-derived
gate must know when its number is noise: the sweep wall ratio means
nothing with fewer cores than workers (satellite fix: it used to flag
a ~1.0x ratio on 1-core machines as a parallelism regression), while
the fleet digest gate is deliberately machine-independent and must
fire on any drift.
"""

import json

from benchmarks.emit_bench import check_fleet_gate, run_checks
from repro.fleet import ClusterTemplate, FleetTopology, run_fleet


def committed_record(tmp_path, **overrides):
    """A minimal committed BENCH_perf.json that skips the slow gates.

    The kernel gate is skipped by recording an impossible cpu_count,
    the lint gate by omitting ``lint.cold_seconds``, and the fleet
    gate by omitting the row — each test then overrides the one block
    it exercises.
    """
    payload = {
        "machine": {"cpu_count": -1},
        "sweep": {"results_identical": True, "workers": 4,
                  "effective_cores": 4, "speedup": 1.8,
                  "measured_ratio": 1.8},
    }
    payload.update(overrides)
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestSweepRatioGate:
    def test_cpu_bound_record_skips_the_ratio_gate(self, tmp_path, capsys):
        """A ~1.0x wall ratio on a 1-core machine is not a regression."""
        path = committed_record(tmp_path, sweep={
            "results_identical": True, "workers": 4,
            "effective_cores": 1, "speedup": None,
            "speedup_note": "cpu-bound: 1 core(s) < 4 workers",
            "measured_ratio": 0.97})
        assert run_checks(path, kernel_events=1) == 0
        assert "sweep ratio gate SKIPPED" in capsys.readouterr().out

    def test_slow_parallel_on_capable_machine_fails(self, tmp_path, capsys):
        path = committed_record(tmp_path, sweep={
            "results_identical": True, "workers": 4,
            "effective_cores": 8, "speedup": 0.7,
            "measured_ratio": 0.7})
        assert run_checks(path, kernel_events=1) == 1
        assert "speedup 0.7 < 1.0" in capsys.readouterr().out

    def test_healthy_speedup_passes(self, tmp_path, capsys):
        path = committed_record(tmp_path)
        assert run_checks(path, kernel_events=1) == 0
        assert "sweep ratio: OK" in capsys.readouterr().out

    def test_nonidentical_results_still_fail_even_cpu_bound(self, tmp_path):
        """The byte-identity gate never has a noise excuse."""
        path = committed_record(tmp_path, sweep={
            "results_identical": False, "workers": 4,
            "effective_cores": 1, "speedup": None})
        assert run_checks(path, kernel_events=1) == 1


class TestExplicitGateField:
    """The committed record carries its own ``gate`` verdict."""

    def test_emitter_records_skipped_when_cpu_bound(self, monkeypatch):
        import benchmarks.emit_bench as emit_bench
        monkeypatch.setattr(emit_bench.os, "cpu_count", lambda: 1)
        sweep = emit_bench.bench_sweep(days=0.01, seeds=(42,), workers=4)
        assert sweep["gate"] == "skipped"
        assert sweep["speedup"] is None

    def test_emitter_records_active_with_enough_cores(self, monkeypatch):
        import benchmarks.emit_bench as emit_bench
        monkeypatch.setattr(emit_bench.os, "cpu_count", lambda: 64)
        sweep = emit_bench.bench_sweep(days=0.01, seeds=(42,), workers=1)
        assert sweep["gate"] == "active"
        assert sweep["speedup"] is not None

    def test_check_honors_explicit_skipped_gate(self, tmp_path, capsys):
        """An explicitly skipped record never trips the ratio gate,
        even when the raw ratio looks like a regression."""
        path = committed_record(tmp_path, sweep={
            "results_identical": True, "workers": 4,
            "effective_cores": 1, "speedup": None,
            "gate": "skipped", "measured_ratio": 0.5})
        assert run_checks(path, kernel_events=1) == 0
        assert "sweep ratio gate SKIPPED" in capsys.readouterr().out

    def test_check_honors_explicit_active_gate(self, tmp_path, capsys):
        path = committed_record(tmp_path, sweep={
            "results_identical": True, "workers": 4,
            "effective_cores": 8, "speedup": 0.7,
            "gate": "active", "measured_ratio": 0.7})
        assert run_checks(path, kernel_events=1) == 1
        assert "speedup 0.7 < 1.0" in capsys.readouterr().out

    def test_committed_record_carries_the_gate_field(self):
        """The repo's own BENCH_perf.json says whether its sweep ratio
        gates anything — the skip is data, not an inference."""
        import pathlib
        root = pathlib.Path(__file__).resolve().parent.parent
        committed = json.loads((root / "BENCH_perf.json").read_text())
        assert committed["sweep"]["gate"] in ("skipped", "active")
        if committed["sweep"]["speedup"] is None:
            assert committed["sweep"]["gate"] == "skipped"


class TestFleetGate:
    CONFIG = {"clusters": 1, "node_count": 4, "days": 0.05}

    def digest_of(self):
        topology = FleetTopology(
            cluster_count=self.CONFIG["clusters"], prefix="bench",
            template=ClusterTemplate(node_count=self.CONFIG["node_count"],
                                     days=self.CONFIG["days"]))
        return run_fleet(topology, max_workers=1).digest

    def test_missing_row_is_skipped(self, capsys):
        assert check_fleet_gate(None) == 0
        assert "no fleet row" in capsys.readouterr().out

    def test_recorded_mode_divergence_fails_without_replay(self, capsys):
        fleet = dict(self.CONFIG, digest="irrelevant",
                     digests_identical=False)
        assert check_fleet_gate(fleet) == 1
        assert "serial != sharded" in capsys.readouterr().out

    def test_digest_replay_matches(self, capsys):
        fleet = dict(self.CONFIG, digest=self.digest_of(),
                     digests_identical=True)
        assert check_fleet_gate(fleet) == 0
        assert "-> OK" in capsys.readouterr().out

    def test_digest_drift_fails(self, capsys):
        fleet = dict(self.CONFIG, digest="0" * 64,
                     digests_identical=True)
        assert check_fleet_gate(fleet) == 1
        assert "REGRESSION" in capsys.readouterr().out
