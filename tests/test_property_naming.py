"""Property-based model check: NamingService vs a plain dict.

The Naming Service must behave observationally like a dictionary with
a version counter — this stateful property test drives random
operation sequences against both and compares.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import NamingServiceError
from repro.fabric.naming import NamingService

KEYS = st.sampled_from(["a", "b", "toto/models/xml", "toto/load/db-1"])
OPS = st.lists(
    st.tuples(st.sampled_from(["put", "get", "delete", "exists"]),
              KEYS,
              st.integers(min_value=0, max_value=99)),
    min_size=1, max_size=60)


class TestNamingModel:
    @settings(max_examples=60, deadline=None)
    @given(OPS)
    def test_behaves_like_dict_with_versions(self, operations):
        naming = NamingService()
        model = {}
        versions = {}
        for op, key, value in operations:
            if op == "put":
                version = naming.put(key, value)
                model[key] = value
                versions[key] = versions.get(key, 0) + 1
                assert version == versions[key]
            elif op == "get":
                if key in model:
                    assert naming.get(key) == model[key]
                else:
                    try:
                        naming.get(key)
                        assert False, "expected NamingServiceError"
                    except NamingServiceError:
                        pass
                assert naming.get_or_default(key, -1) == \
                    model.get(key, -1)
            elif op == "delete":
                existed = naming.delete_if_exists(key)
                assert existed == (key in model)
                model.pop(key, None)
            elif op == "exists":
                assert naming.exists(key) == (key in model)
        assert sorted(naming.keys()) == sorted(model)
        assert len(naming) == len(model)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(KEYS, min_size=1, max_size=30))
    def test_prefix_scan_consistent(self, keys):
        naming = NamingService()
        for key in keys:
            naming.put(key, 1)
        for prefix in ("", "toto/", "toto/load/"):
            expected = sorted({k for k in keys if k.startswith(prefix)})
            assert naming.keys(prefix) == expected
