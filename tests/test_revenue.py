"""Tests for the modeled adjusted revenue (§5.1)."""

import pytest

from repro.errors import ReproError
from repro.fabric.naming import NamingService
from repro.revenue.adjusted import adjusted_revenue_report, database_revenue
from repro.revenue.pricing import STANDARD_PRICES, PriceCatalog
from repro.revenue.sla import DEFAULT_CREDITS, ServiceCreditSchedule
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import Edition
from repro.sqldb.rgmanager import persisted_load_key
from repro.sqldb.slo import get_slo
from repro.units import DAY, HOUR


def make_db(slo="GP_Gen5_4", created_at=0, data=100.0, db_id="db-1"):
    return DatabaseInstance(db_id=db_id, slo=get_slo(slo),
                            created_at=created_at, initial_data_gb=data)


class TestPricing:
    def test_bc_compute_costs_more_per_core(self):
        gp = STANDARD_PRICES.compute_hourly(get_slo("GP_Gen5_4"))
        bc = STANDARD_PRICES.compute_hourly(get_slo("BC_Gen5_4"))
        assert bc > gp

    def test_compute_scales_with_cores(self):
        small = STANDARD_PRICES.compute_hourly(get_slo("GP_Gen5_2"))
        large = STANDARD_PRICES.compute_hourly(get_slo("GP_Gen5_16"))
        assert large == pytest.approx(8 * small)

    def test_storage_hourly_conversion(self):
        hourly = STANDARD_PRICES.storage_hourly_per_gb(Edition.STANDARD_GP)
        assert hourly == pytest.approx(0.115 / 730.5)

    def test_incomplete_catalog_rejected(self):
        with pytest.raises(ReproError):
            PriceCatalog(compute_per_core_hour={},
                         storage_per_gb_month={})


class TestSla:
    def test_no_credit_at_full_uptime(self):
        assert DEFAULT_CREDITS.credit_fraction(1.0) == 0.0

    def test_ten_percent_tier(self):
        assert DEFAULT_CREDITS.credit_fraction(0.9995) == 0.10

    def test_twenty_five_percent_tier(self):
        assert DEFAULT_CREDITS.credit_fraction(0.985) == 0.25

    def test_full_refund_tier(self):
        assert DEFAULT_CREDITS.credit_fraction(0.90) == 1.00

    def test_boundary_exactly_at_target(self):
        assert DEFAULT_CREDITS.credit_fraction(0.9999) == 0.0

    def test_invalid_uptime_rejected(self):
        with pytest.raises(ReproError):
            DEFAULT_CREDITS.credit_fraction(1.5)

    def test_bad_tier_order_rejected(self):
        with pytest.raises(ReproError):
            ServiceCreditSchedule(tiers=((0.99, 0.25), (0.95, 1.0)))


class TestDatabaseRevenue:
    def test_compute_revenue(self):
        db = make_db("GP_Gen5_4")
        revenue = database_revenue(db, now=10 * HOUR)
        expected = 4 * 0.2529 * 10
        assert revenue.compute_revenue == pytest.approx(expected)

    def test_storage_revenue(self):
        db = make_db("GP_Gen5_4", data=200.0)
        revenue = database_revenue(db, now=730 * HOUR + 30 * 60)
        # ~one month of 200 GB at $0.115/GB-month
        assert revenue.storage_revenue == pytest.approx(23.0, rel=0.01)

    def test_dropped_database_stops_earning(self):
        db = make_db()
        db.mark_dropped(5 * HOUR)
        revenue = database_revenue(db, now=100 * HOUR)
        assert revenue.lifetime_hours == 5.0

    def test_no_penalty_below_threshold(self):
        db = make_db()
        db.record_downtime(10.0)   # 10s over 6 days << 0.01%
        revenue = database_revenue(db, now=6 * DAY)
        assert revenue.penalty == 0.0
        assert not revenue.penalized

    def test_penalty_when_downtime_exceeds_threshold(self):
        db = make_db()
        db.record_downtime(60.0)   # > 51.8s = 0.01% of 6 days
        revenue = database_revenue(db, now=6 * DAY)
        # Credits are 10% of the *monthly* bill (public SLA semantics):
        # on a 6-day lifetime that is 10% x (730.5h / 144h) of gross.
        expected = 0.10 * revenue.gross * (730.5 / 144.0)
        assert revenue.penalty == pytest.approx(expected)
        assert revenue.adjusted == pytest.approx(revenue.gross - expected)

    def test_heavy_downtime_bigger_tier_capped_at_gross(self):
        db = make_db()
        db.record_downtime(0.02 * 6 * DAY)  # 2% downtime -> uptime 98%
        revenue = database_revenue(db, now=6 * DAY)
        # 25% of a monthly bill exceeds 6 days of accrued revenue, so
        # the penalty caps at gross (the database nets zero).
        assert revenue.penalty == pytest.approx(revenue.gross)
        assert revenue.adjusted == pytest.approx(0.0)

    def test_long_lifetime_uncapped_tier(self):
        db = make_db()
        db.record_downtime(0.0005 * 60 * DAY)  # uptime 99.95% over 60d
        revenue = database_revenue(db, now=60 * DAY)
        expected = 0.10 * revenue.gross * (730.5 / (60 * 24))
        assert revenue.penalty == pytest.approx(expected)
        assert revenue.penalty < revenue.gross

    def test_bc_storage_billed_from_persisted_disk(self):
        naming = NamingService()
        db = make_db("BC_Gen5_4", data=100.0)
        naming.put(persisted_load_key(db.db_id, "disk-gb"), 400.0)
        with_persisted = database_revenue(db, now=DAY, naming=naming)
        without = database_revenue(db, now=DAY)
        # 400 GB persisted vs the 100 GB creation-time fallback.
        assert with_persisted.storage_revenue == pytest.approx(
            4.0 * without.storage_revenue)


class TestReport:
    def test_aggregates(self):
        databases = [make_db(db_id=f"db-{i}") for i in range(3)]
        databases[0].record_downtime(120.0)
        report = adjusted_revenue_report(databases, now=6 * DAY)
        assert report.penalized_databases == 1
        assert report.total_adjusted == pytest.approx(
            report.total_gross - report.total_penalty)

    def test_edition_split(self):
        databases = [make_db("GP_Gen5_2", db_id="gp"),
                     make_db("BC_Gen5_2", db_id="bc")]
        report = adjusted_revenue_report(databases, now=DAY)
        assert report.gp_adjusted > 0
        assert report.bc_adjusted > 0
        assert report.gp_adjusted + report.bc_adjusted == pytest.approx(
            report.total_adjusted)

    def test_penalty_share(self):
        db = make_db()
        db.record_downtime(3600.0)
        report = adjusted_revenue_report([db], now=DAY)
        assert 0 < report.penalty_share <= 1.0

    def test_empty_population(self):
        report = adjusted_revenue_report([], now=DAY)
        assert report.total_adjusted == 0.0
        assert report.penalty_share == 0.0
