"""Tests for editions and the SLO catalog."""

import pytest

from repro.errors import UnknownSloError
from repro.sqldb.editions import (
    COLD_BUFFER_POOL_GB,
    Edition,
    GP_TEMPDB_BASELINE_GB,
    StorageKind,
)
from repro.sqldb.slo import (
    CORE_SIZES,
    SLO_CATALOG,
    get_slo,
    slo_name,
    slos_for_edition,
)


class TestEditions:
    def test_gp_is_remote_store(self):
        assert Edition.STANDARD_GP.storage is StorageKind.REMOTE
        assert not Edition.STANDARD_GP.is_local_store

    def test_bc_is_local_store(self):
        assert Edition.PREMIUM_BC.storage is StorageKind.LOCAL_SSD
        assert Edition.PREMIUM_BC.is_local_store

    def test_replica_counts(self):
        # §2: local-store databases are "replicated four times".
        assert Edition.STANDARD_GP.replica_count == 1
        assert Edition.PREMIUM_BC.replica_count == 4

    def test_short_names(self):
        assert Edition.STANDARD_GP.short_name == "GP"
        assert Edition.PREMIUM_BC.short_name == "BC"

    def test_baselines_positive(self):
        assert GP_TEMPDB_BASELINE_GB > 0
        assert COLD_BUFFER_POOL_GB > 0


class TestCatalog:
    def test_both_families_all_sizes(self):
        assert len(SLO_CATALOG) == 2 * len(CORE_SIZES)

    def test_lookup(self):
        slo = get_slo("GP_Gen5_4")
        assert slo.cores == 4
        assert slo.edition is Edition.STANDARD_GP

    def test_unknown_raises(self):
        with pytest.raises(UnknownSloError):
            get_slo("GP_Gen5_3")

    def test_memory_scales_with_cores(self):
        small = get_slo("BC_Gen5_2")
        large = get_slo("BC_Gen5_32")
        assert large.memory_gb == pytest.approx(16 * small.memory_gb)

    def test_total_reserved_cores(self):
        # The paper's example: a 24-core BC reserves 96 cluster cores.
        assert get_slo("BC_Gen5_24").total_reserved_cores == 96
        assert get_slo("GP_Gen5_24").total_reserved_cores == 24

    def test_slos_for_edition_sorted(self):
        slos = slos_for_edition(Edition.PREMIUM_BC)
        assert [slo.cores for slo in slos] == sorted(CORE_SIZES)
        assert all(slo.edition is Edition.PREMIUM_BC for slo in slos)

    def test_slo_name_roundtrip(self):
        name = slo_name(Edition.STANDARD_GP, 8)
        assert get_slo(name).cores == 8

    def test_slo_name_unknown_size(self):
        with pytest.raises(UnknownSloError):
            slo_name(Edition.STANDARD_GP, 7)

    def test_max_data_positive(self):
        for slo in SLO_CATALOG.values():
            assert slo.max_data_gb > 0
