"""Tests for dynamic time warping."""

import pytest

from repro.errors import TrainingError
from repro.stats.dtw import dtw_distance


class TestDtwBasics:
    def test_identical_series_zero(self):
        assert dtw_distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_constant_offset(self):
        # Every alignment step costs the offset; minimum path length 3.
        assert dtw_distance([0, 0, 0], [1, 1, 1]) == pytest.approx(3.0)

    def test_time_shift_cheap(self):
        # DTW should align a shifted copy nearly for free, unlike RMSE.
        a = [0, 0, 1, 5, 1, 0, 0, 0]
        b = [0, 0, 0, 1, 5, 1, 0, 0]
        assert dtw_distance(a, b) == 0.0

    def test_different_lengths(self):
        assert dtw_distance([1, 2, 3], [1, 2, 2, 3]) == 0.0

    def test_symmetry(self):
        a = [1.0, 3.0, 2.0, 8.0]
        b = [2.0, 1.0, 4.0]
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_single_elements(self):
        assert dtw_distance([2.0], [5.0]) == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(TrainingError):
            dtw_distance([], [1.0])


class TestDtwWindow:
    def test_window_equals_unconstrained_when_large(self):
        a = [0, 1, 2, 3, 4, 3, 2, 1]
        b = [0, 0, 1, 2, 3, 4, 3, 2]
        assert dtw_distance(a, b, window=8) == pytest.approx(
            dtw_distance(a, b))

    def test_tight_window_still_valid(self):
        a = list(range(10))
        b = list(range(10))
        assert dtw_distance(a, b, window=1) == 0.0

    def test_window_widened_for_length_gap(self):
        # |len(a) - len(b)| > window would admit no path; the function
        # widens the band instead of failing.
        assert dtw_distance([1] * 10, [1] * 3, window=1) == 0.0

    def test_window_upper_bounds_distance(self):
        a = [0, 5, 0, 5, 0, 5, 0, 5]
        b = [5, 0, 5, 0, 5, 0, 5, 0]
        tight = dtw_distance(a, b, window=1)
        loose = dtw_distance(a, b)
        assert loose <= tight
