"""Tests for the telemetry collector and initial-population synthesis."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.sqldb.editions import Edition
from repro.sqldb.population import (
    InitialPopulationSpec,
    PopulationMix,
    generate_initial_population,
    population_summary,
)
from repro.telemetry.collector import TelemetryCollector
from repro.units import HOUR
from tests.conftest import make_ring


class TestCollector:
    def test_hourly_frames(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        kernel.run_until(3 * HOUR + 1)
        assert [f.hour_index for f in collector.frames] == [0, 1, 2, 3]

    def test_snapshot_contents(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=4)
        ring.control_plane.create_database("BC_Gen5_2", now=0,
                                           initial_data_gb=40.0)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        frame = collector.last
        assert frame.reserved_cores == 8.0
        assert frame.active_bc == 1
        assert frame.disk_gb == pytest.approx(160.0)
        assert len(frame.node_cores) == 4

    def test_maintenance_excluded_from_snapshot(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=4)
        db = ring.control_plane.create_database("BC_Gen5_2", now=0,
                                                initial_data_gb=40.0)
        node_id = ring.cluster.service(db.db_id).replicas[0].node_id
        ring.cluster.node(node_id).in_maintenance = True
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        frame = collector.last
        assert frame.nodes_in_maintenance == 1
        assert frame.reserved_cores < 8.0

    def test_first_redirect_hour(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=4)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        kernel.run_until(HOUR + 1)
        assert collector.first_hour_with_redirect() is None

    def test_capture_final_not_duplicated(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        collector.capture_final()  # same timestamp: no new frame
        assert len(collector.frames) == 1
        kernel.run_until(90 * 60)
        collector.capture_final()
        assert collector.frames[-1].time == kernel.now

    def test_series_extraction(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        kernel.run_until(2 * HOUR + 1)
        series = collector.series("reserved_cores")
        assert len(series) == 3

    def test_last_requires_frames(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        with pytest.raises(IndexError):
            collector.last


class TestPopulationMix:
    def test_slo_weights_by_edition(self):
        mix = PopulationMix()
        gp = dict(mix.slo_weights(Edition.STANDARD_GP))
        bc = dict(mix.slo_weights(Edition.PREMIUM_BC))
        assert all(name.startswith("GP") for name in gp)
        assert all(name.startswith("BC") for name in bc)

    def test_sample_slo_valid(self):
        mix = PopulationMix()
        rng = np.random.default_rng(0)
        for _ in range(50):
            name = mix.sample_slo(Edition.PREMIUM_BC, rng)
            assert name.startswith("BC_Gen5_")

    def test_sample_data_positive_and_capped(self):
        mix = PopulationMix()
        rng = np.random.default_rng(0)
        for _ in range(100):
            size = mix.sample_data_gb(Edition.PREMIUM_BC, rng)
            assert 0.1 <= size <= mix.data_cap_gb


class TestInitialPopulation:
    def make_orders(self, spec=None, cores=1008.0, disk=57344.0, seed=0):
        spec = spec or InitialPopulationSpec()
        return generate_initial_population(
            spec, cluster_cores_at_100pct=cores, cluster_disk_gb=disk,
            rng=np.random.default_rng(seed))

    def test_table2_counts(self):
        orders = self.make_orders()
        summary = population_summary(orders)
        assert summary["gp_count"] == 187
        assert summary["bc_count"] == 33
        assert summary["total_count"] == 220

    def test_core_target_hit(self):
        orders = self.make_orders()
        summary = population_summary(orders)
        assert summary["reserved_cores"] == pytest.approx(
            0.94 * 1008.0, rel=0.02)

    def test_disk_target_hit(self):
        orders = self.make_orders()
        summary = population_summary(orders)
        assert summary["local_disk_gb"] == pytest.approx(
            0.77 * 57344.0, rel=0.03)

    def test_largest_first_ordering(self):
        orders = self.make_orders()
        cores = [order.reserved_cores for order in orders]
        assert cores == sorted(cores, reverse=True)

    def test_deterministic(self):
        a = self.make_orders(seed=4)
        b = self.make_orders(seed=4)
        assert a == b

    def test_different_seeds_differ(self):
        assert self.make_orders(seed=1) != self.make_orders(seed=2)

    def test_empty_spec_rejected(self):
        with pytest.raises(ScenarioError):
            generate_initial_population(
                InitialPopulationSpec(gp_count=0, bc_count=0),
                1000.0, 10000.0, np.random.default_rng(0))

    def test_rapid_flags_present(self):
        spec = InitialPopulationSpec(
            mix=PopulationMix(rapid_growth_fraction=0.5))
        orders = self.make_orders(spec=spec)
        rapid = sum(1 for order in orders if order.rapid_growth)
        assert 0.3 * len(orders) < rapid < 0.7 * len(orders)

    def test_custom_counts(self):
        spec = InitialPopulationSpec(gp_count=10, bc_count=5,
                                     target_core_fraction=0.5,
                                     target_disk_fraction=0.4)
        orders = self.make_orders(spec=spec, cores=320.0, disk=4096.0)
        summary = population_summary(orders)
        assert summary["total_count"] == 15
        assert summary["bc_count"] == 5
