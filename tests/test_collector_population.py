"""Tests for the telemetry collector and initial-population synthesis."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.fabric.failover import FailoverRecord
from repro.fabric.replica import ReplicaRole
from repro.sqldb.editions import Edition
from repro.sqldb.population import (
    InitialPopulationSpec,
    PopulationMix,
    generate_initial_population,
    population_summary,
)
from repro.telemetry.collector import TelemetryCollector
from repro.units import HOUR
from tests.conftest import make_ring


class TestCollector:
    def test_hourly_frames(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        kernel.run_until(3 * HOUR + 1)
        assert [f.hour_index for f in collector.frames] == [0, 1, 2, 3]

    def test_snapshot_contents(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=4)
        ring.control_plane.create_database("BC_Gen5_2", now=0,
                                           initial_data_gb=40.0)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        frame = collector.last
        assert frame.reserved_cores == 8.0
        assert frame.active_bc == 1
        assert frame.disk_gb == pytest.approx(160.0)
        assert len(frame.node_cores) == 4

    def test_maintenance_excluded_from_snapshot(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=4)
        db = ring.control_plane.create_database("BC_Gen5_2", now=0,
                                                initial_data_gb=40.0)
        node_id = ring.cluster.service(db.db_id).replicas[0].node_id
        ring.cluster.node(node_id).in_maintenance = True
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        frame = collector.last
        assert frame.nodes_in_maintenance == 1
        assert frame.reserved_cores < 8.0

    def test_first_redirect_hour(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=4)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        kernel.run_until(HOUR + 1)
        assert collector.first_hour_with_redirect() is None

    def test_capture_final_not_duplicated(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        collector.capture_final()  # same timestamp: no new frame
        assert len(collector.frames) == 1
        kernel.run_until(90 * 60)
        collector.capture_final()
        assert collector.frames[-1].time == kernel.now

    def test_series_extraction(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        kernel.run_until(2 * HOUR + 1)
        series = collector.series("reserved_cores")
        assert len(series) == 3

    def test_last_requires_frames(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        with pytest.raises(IndexError):
            collector.last


def _capacity_failover(service_id: str, time: int = 0,
                       cores: float = 4.0) -> FailoverRecord:
    return FailoverRecord(
        time=time, service_id=service_id, replica_id=1,
        role=ReplicaRole.PRIMARY, from_node=0, to_node=1,
        metric="cpu_cores", cores_moved=cores, disk_moved_gb=10.0,
        downtime_seconds=5.0, rebuild_seconds=60.0)


class TestCollectorBugfixes:
    """Regression tests for the telemetry-collector fixes."""

    def test_unknown_database_fallback(self, kernel, rng_registry):
        # A failover record for a service the control plane never
        # registered (bootstrap artifact) must not abort the snapshot;
        # it defaults to the majority edition, mirroring
        # FailoverKpis.from_records. Pre-fix this raised
        # UnknownDatabaseError out of the hourly snapshot event.
        ring = make_ring(kernel, rng_registry)
        ring.cluster.failovers.append(_capacity_failover("ghost-service"))
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        frame = collector.last
        assert frame.failover_count_cumulative == 1
        assert frame.failover_cores_cumulative == pytest.approx(4.0)
        # Majority-edition fallback: counted as GP, not BC.
        assert frame.failover_bc_cores_cumulative == 0.0

    def test_incremental_rollup_matches_full_rescan(self, kernel,
                                                    rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=4)
        db = ring.control_plane.create_database("BC_Gen5_2", now=0,
                                                initial_data_gb=40.0)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        # Records appended *between* snapshots land in the next frame's
        # cumulative totals exactly as a from-scratch rescan would put
        # them; non-capacity moves are excluded either way.
        ring.cluster.failovers.append(
            _capacity_failover(db.db_id, time=10, cores=2.0))
        ring.cluster.failovers.append(
            FailoverRecord(
                time=20, service_id=db.db_id, replica_id=2,
                role=ReplicaRole.SECONDARY, from_node=1, to_node=2,
                metric="cpu_cores", cores_moved=2.0, disk_moved_gb=1.0,
                downtime_seconds=0.0, rebuild_seconds=1.0,
                reason="make-room"))
        kernel.run_until(HOUR + 1)
        ring.cluster.failovers.append(
            _capacity_failover("ghost", time=HOUR + 2, cores=3.0))
        kernel.run_until(2 * HOUR + 1)

        counts = [f.failover_count_cumulative for f in collector.frames]
        cores = [f.failover_cores_cumulative for f in collector.frames]
        bc = [f.failover_bc_cores_cumulative for f in collector.frames]
        assert counts == [0, 1, 2]
        assert cores == pytest.approx([0.0, 2.0, 5.0])
        assert bc == pytest.approx([0.0, 2.0, 2.0])  # ghost falls back to GP

    def test_start_is_idempotent(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        collector.start()  # second start: no duplicate frame, no raise
        assert len(collector.frames) == 1
        kernel.run_until(2 * HOUR + 1)
        # One periodic process, not two: exactly one frame per hour.
        assert [f.time for f in collector.frames] == [0, HOUR, 2 * HOUR]

    def test_restart_after_stop_keeps_hour_anchor(self, kernel,
                                                  rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        kernel.run_until(HOUR + 1)
        collector.stop()
        kernel.run_until(3 * HOUR)
        collector.start()  # resumes; hour_index still anchored at t=0
        assert collector.last.hour_index == 3

    def test_mid_run_start_offsets_hour_index(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        kernel.run_until(2 * HOUR)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        kernel.run_until(3 * HOUR + 1)
        # hour_index counts from the collector's own start, not t=0.
        assert [f.hour_index for f in collector.frames] == [0, 1]

    def test_capture_final_safe_before_start(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.capture_final()
        assert len(collector.frames) == 1
        # A subsequent start() at the same instant must not duplicate
        # the frame (pre-fix it appended a second time-0 frame).
        collector.start()
        assert [f.time for f in collector.frames] == [0]

    def test_capture_final_dedup_at_exact_boundary(self, kernel,
                                                   rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        # Events exactly at end_time are not executed (half-open
        # interval), so the boundary frame comes from capture_final —
        # and capturing twice adds nothing.
        kernel.run_until(2 * HOUR)
        collector.capture_final()
        collector.capture_final()
        assert [f.time for f in collector.frames] == [0, HOUR, 2 * HOUR]

    def test_series_chaos_counters_chaos_free(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        collector.start()
        kernel.run_until(2 * HOUR + 1)
        assert collector.series("faults_injected_cumulative") == [0, 0, 0]
        assert collector.series("chaos_retries_cumulative") == [0, 0, 0]
        assert collector.series("degraded_intervals_cumulative") == [0, 0, 0]

    def test_frame_listener_called_per_frame(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        collector = TelemetryCollector(kernel, ring)
        seen = []
        collector.add_frame_listener(seen.append)
        collector.start()
        kernel.run_until(2 * HOUR + 1)
        assert seen == collector.frames


class TestPopulationMix:
    def test_slo_weights_by_edition(self):
        mix = PopulationMix()
        gp = dict(mix.slo_weights(Edition.STANDARD_GP))
        bc = dict(mix.slo_weights(Edition.PREMIUM_BC))
        assert all(name.startswith("GP") for name in gp)
        assert all(name.startswith("BC") for name in bc)

    def test_sample_slo_valid(self):
        mix = PopulationMix()
        rng = np.random.default_rng(0)
        for _ in range(50):
            name = mix.sample_slo(Edition.PREMIUM_BC, rng)
            assert name.startswith("BC_Gen5_")

    def test_sample_data_positive_and_capped(self):
        mix = PopulationMix()
        rng = np.random.default_rng(0)
        for _ in range(100):
            size = mix.sample_data_gb(Edition.PREMIUM_BC, rng)
            assert 0.1 <= size <= mix.data_cap_gb


class TestInitialPopulation:
    def make_orders(self, spec=None, cores=1008.0, disk=57344.0, seed=0):
        spec = spec or InitialPopulationSpec()
        return generate_initial_population(
            spec, cluster_cores_at_100pct=cores, cluster_disk_gb=disk,
            rng=np.random.default_rng(seed))

    def test_table2_counts(self):
        orders = self.make_orders()
        summary = population_summary(orders)
        assert summary["gp_count"] == 187
        assert summary["bc_count"] == 33
        assert summary["total_count"] == 220

    def test_core_target_hit(self):
        orders = self.make_orders()
        summary = population_summary(orders)
        assert summary["reserved_cores"] == pytest.approx(
            0.94 * 1008.0, rel=0.02)

    def test_disk_target_hit(self):
        orders = self.make_orders()
        summary = population_summary(orders)
        assert summary["local_disk_gb"] == pytest.approx(
            0.77 * 57344.0, rel=0.03)

    def test_largest_first_ordering(self):
        orders = self.make_orders()
        cores = [order.reserved_cores for order in orders]
        assert cores == sorted(cores, reverse=True)

    def test_deterministic(self):
        a = self.make_orders(seed=4)
        b = self.make_orders(seed=4)
        assert a == b

    def test_different_seeds_differ(self):
        assert self.make_orders(seed=1) != self.make_orders(seed=2)

    def test_empty_spec_rejected(self):
        with pytest.raises(ScenarioError):
            generate_initial_population(
                InitialPopulationSpec(gp_count=0, bc_count=0),
                1000.0, 10000.0, np.random.default_rng(0))

    def test_rapid_flags_present(self):
        spec = InitialPopulationSpec(
            mix=PopulationMix(rapid_growth_fraction=0.5))
        orders = self.make_orders(spec=spec)
        rapid = sum(1 for order in orders if order.rapid_growth)
        assert 0.3 * len(orders) < rapid < 0.7 * len(orders)

    def test_custom_counts(self):
        spec = InitialPopulationSpec(gp_count=10, bc_count=5,
                                     target_core_fraction=0.5,
                                     target_disk_fraction=0.4)
        orders = self.make_orders(spec=spec, cores=320.0, disk=4096.0)
        summary = population_summary(orders)
        assert summary["total_count"] == 15
        assert summary["bc_count"] == 5
