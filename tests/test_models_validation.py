"""Tests for the §4 validation harness and baselines."""

import numpy as np
import pytest

from repro.core.hourly_schedule import HourlyNormalSchedule
from repro.errors import TrainingError
from repro.models.baselines import (
    BinnedDeltaModel,
    HourlyNormalDeltaModel,
    KdeDeltaModel,
    compare_delta_models,
)
from repro.models.training import train_create_drop_model
from repro.models.validation import (
    simulate_event_counts,
    simulate_steady_disk,
    validate_create_drop,
    validate_disk_model,
)
from repro.sqldb.editions import Edition
from repro.telemetry.production import ProductionTraceGenerator
from repro.telemetry.region import US_EAST_LIKE


@pytest.fixture(scope="module")
def generator():
    return ProductionTraceGenerator(US_EAST_LIKE, np.random.default_rng(9))


@pytest.fixture(scope="module")
def gp_model(generator):
    create = generator.event_trace(Edition.STANDARD_GP, "create", days=14)
    drop = generator.event_trace(Edition.STANDARD_GP, "drop", days=14)
    return train_create_drop_model(create, drop), create, drop


class TestEventSimulation:
    def test_shape(self, gp_model):
        model, __, __ = gp_model
        counts = simulate_event_counts(model, "create", days=3, runs=10,
                                       rng=np.random.default_rng(0))
        assert counts.shape == (10, 72)

    def test_nonnegative(self, gp_model):
        model, __, __ = gp_model
        counts = simulate_event_counts(model, "drop", days=2, runs=5,
                                       rng=np.random.default_rng(0))
        assert (counts >= 0).all()

    def test_bad_kind(self, gp_model):
        model, __, __ = gp_model
        with pytest.raises(TrainingError):
            simulate_event_counts(model, "explode", 1, 1,
                                  np.random.default_rng(0))


class TestCreateDropValidation:
    def test_mean_curve_tracks_production(self, gp_model):
        """Figure 8's headline: the mean of 100 modeled curves nearly
        overlaps the production curve."""
        model, create, drop = gp_model
        validation = validate_create_drop(model, create, drop, runs=100,
                                          rng=np.random.default_rng(1))
        assert validation.relative_daily_error() < 0.05

    def test_rmse_below_production_variability(self, gp_model):
        model, create, drop = gp_model
        validation = validate_create_drop(model, create, drop, runs=100,
                                          rng=np.random.default_rng(1))
        production_std = float(np.std(validation.production_creates))
        assert validation.creates_rmse() < production_std

    def test_net_series_consistency(self, gp_model):
        model, create, drop = gp_model
        validation = validate_create_drop(model, create, drop, runs=20,
                                          rng=np.random.default_rng(1))
        assert np.allclose(validation.mean_net,
                           validation.mean_creates - validation.mean_drops)


class TestDiskValidation:
    def test_simulated_curves_shape(self):
        schedule = HourlyNormalSchedule.constant(0.05, 0.01)
        curves = simulate_steady_disk(schedule, days=1, start_gb=10.0,
                                      runs=4, rng=np.random.default_rng(0))
        assert curves.shape == (4, 73)
        assert (curves[:, 0] == 10.0).all()

    def test_growth_matches_schedule(self):
        schedule = HourlyNormalSchedule.constant(0.1, 0.0)
        curves = simulate_steady_disk(schedule, days=1, start_gb=0.1,
                                      runs=1, rng=np.random.default_rng(0))
        assert curves[0, -1] == pytest.approx(0.1 + 72 * 0.1)

    def test_validation_against_steady_traces(self, generator):
        traces = [generator.disk_trace(i, Edition.STANDARD_GP, days=7,
                                       pattern="steady")
                  for i in range(30)]
        from repro.models.delta_disk import build_delta_disk_dataset
        from repro.models.training import train_disk_usage_model
        from repro.core.selectors import ALL_STANDARD_GP
        dataset = build_delta_disk_dataset(traces)
        model = train_disk_usage_model(dataset, ALL_STANDARD_GP,
                                       persisted=False)
        validation = validate_disk_model(
            model.steady, [t.usage_gb for t in traces], days=7, runs=20,
            rng=np.random.default_rng(2))
        assert validation.cumulative_growth_error() < 0.25
        assert validation.rmse() < 1.0

    def test_empty_traces_rejected(self):
        schedule = HourlyNormalSchedule.constant(0.0, 0.0)
        with pytest.raises(TrainingError):
            validate_disk_model(schedule, [], days=1)


class TestBaselines:
    @pytest.fixture(scope="class")
    def deltas(self, generator):
        traces = [generator.disk_trace(i, Edition.STANDARD_GP, days=7,
                                       pattern="steady")
                  for i in range(20)]
        return np.concatenate([t.deltas() for t in traces])

    def test_kde_samples_plausible(self, deltas):
        model = KdeDeltaModel(deltas)
        rng = np.random.default_rng(0)
        draws = [model.sample_delta(rng, 0) for _ in range(300)]
        assert np.mean(draws) == pytest.approx(np.mean(deltas), abs=0.02)

    def test_kde_needs_variance(self):
        with pytest.raises(TrainingError):
            KdeDeltaModel([1.0] * 10)

    def test_binned_samples_within_range(self, deltas):
        model = BinnedDeltaModel(deltas)
        rng = np.random.default_rng(0)
        for _ in range(100):
            draw = model.sample_delta(rng, 0)
            assert deltas.min() <= draw <= deltas.max()

    def test_binned_needs_enough_samples(self):
        with pytest.raises(TrainingError):
            BinnedDeltaModel([1.0, 2.0], n_bins=20)

    def test_hourly_normal_adapter(self):
        schedule = HourlyNormalSchedule.constant(0.5, 0.0)
        model = HourlyNormalDeltaModel(schedule)
        assert model.sample_delta(np.random.default_rng(0), 0) == 0.5

    def test_comparison_scores_all_models(self, deltas):
        production = np.cumsum(np.concatenate([[0.0], deltas[:72]]))
        models = [BinnedDeltaModel(deltas),
                  HourlyNormalDeltaModel(
                      HourlyNormalSchedule.constant(
                          float(np.mean(deltas)), float(np.std(deltas))))]
        rows = compare_delta_models(production, models, days=1, runs=5,
                                    rng=np.random.default_rng(3))
        assert {row.model_name for row in rows} == \
            {"binned", "hourly-normal"}
        for row in rows:
            assert row.dtw >= 0 and row.rmse >= 0
