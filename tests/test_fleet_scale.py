"""The columnar-state identity contract (docs/FLEET.md).

The fleet layer's tentpole refactor moved hot per-replica and
per-database state into struct-of-arrays stores
(:mod:`repro.fabric.colstore`, :mod:`repro.sqldb.dbcolumns`) behind the
unchanged object APIs. These tests pin the contract that made that
safe: with the same seeds, the columnar path and the object-graph path
are *draw-for-draw and byte-identical* — same KPIs, same telemetry
frames, same revenue, same pickled databases — under arbitrary
create/drop/failover/chaos workloads. A golden 100-cluster fleet smoke
pins the merged digest so any silent drift in either path fails loudly.
"""

import dataclasses
import hashlib
import pickle

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ScenarioError
from repro.experiments.scenarios import chaos_profile, paper_scenario
from repro.fabric import colstore
from repro.fabric.colstore import (
    CPU_CORES,
    DISK_GB,
    MEMORY_GB,
    STORE_METRICS,
    ReplicaLoadStore,
)
from repro.core.runner import run_scenario
from repro.fleet import ClusterTemplate, FleetTopology, run_fleet
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.dbcolumns import DatabaseStateColumns
from repro.sqldb.slo import get_slo


def result_bytes(result):
    """Everything a study consumes, serialized one canonical way."""
    payload = pickle.dumps(
        (result.scenario.name, result.kpis, result.revenue, result.frames,
         result.databases, result.failovers, result.redirects,
         result.events_executed),
        protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(payload).hexdigest()


def run_both_paths(scenario):
    """Run ``scenario`` once per state backend; restore the default."""
    original = colstore.COLUMNAR_STATE
    try:
        colstore.COLUMNAR_STATE = True
        columnar = run_scenario(scenario)
        colstore.COLUMNAR_STATE = False
        objects = run_scenario(scenario)
    finally:
        colstore.COLUMNAR_STATE = original
    return columnar, objects


class TestColumnarObjectIdentity:
    """Full-run A/B: columnar state vs object graph, byte for byte."""

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           density=st.sampled_from([1.0, 1.1, 1.4]))
    @settings(max_examples=4, deadline=None)
    def test_random_workloads_byte_identical(self, seed, density):
        scenario = paper_scenario(density=density, days=0.05, seed=seed,
                                  maintenance=False)
        try:
            columnar, objects = run_both_paths(scenario)
        except ScenarioError:
            # Rare seeds sample a bootstrap population the ring cannot
            # host; identity is vacuous for them.
            assume(False)
        assert result_bytes(columnar) == result_bytes(objects)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=2, deadline=None)
    def test_chaos_workloads_byte_identical(self, seed):
        """Fault injection (failovers, probes, retries) included."""
        scenario = dataclasses.replace(
            paper_scenario(density=1.1, days=0.05, seed=seed,
                           maintenance=False),
            chaos=chaos_profile("moderate"))
        try:
            columnar, objects = run_both_paths(scenario)
        except ScenarioError:
            assume(False)
        assert columnar.kpis.chaos is not None
        assert result_bytes(columnar) == result_bytes(objects)


# ---------------------------------------------------------------------------
# Store-level property: the view is indistinguishable from the dict it
# replaced, for every operation sequence the cluster actually performs.
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.tuples(st.sampled_from(["allocate", "set_cpu", "update", "delete",
                               "extra", "release", "bulk"]),
              st.integers(min_value=0, max_value=10**6),
              st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=60)


class TestReplicaLoadStoreProperty:
    @given(ops=_OPS)
    @settings(max_examples=50, deadline=None)
    def test_view_tracks_dict_model(self, ops):
        """Replay a random realistic op sequence against both backends.

        "Realistic" mirrors the cluster's actual life cycle: allocate
        with {disk, memory}, append the CPU reservation, update values
        in place, spill the odd non-core metric, delete (terminally),
        release on drop. After every op each live view must equal its
        dict model — same keys, same values, same iteration order.
        """
        store = ReplicaLoadStore()
        live = []      # (view, model) pairs
        deleted = []   # per-pair set of terminally deleted metrics
        spilled = []   # per-pair: has a non-core metric been added yet
        extra_serial = 0
        for kind, pick, value in ops:
            if kind == "allocate":
                model = {DISK_GB: value, MEMORY_GB: value + 1.0}
                view = store.allocate(dict(model))
                live.append((view, model))
                deleted.append(set())
                spilled.append(False)
            elif not live:
                continue
            else:
                index = pick % len(live)
                view, model = live[index]
                gone = deleted[index]
                # The cluster appends the CPU reservation right after
                # allocation, always before any spill metric exists.
                if (kind == "set_cpu" and CPU_CORES not in gone
                        and not spilled[index]):
                    view[CPU_CORES] = value
                    model[CPU_CORES] = value
                elif kind == "update":
                    keys = [key for key in model]
                    if keys:
                        key = keys[pick % len(keys)]
                        view[key] = value
                        model[key] = value
                elif kind == "delete":
                    keys = [key for key in model]
                    if keys:
                        key = keys[pick % len(keys)]
                        del view[key]
                        del model[key]
                        gone.add(key)
                elif kind == "bulk":
                    # The report sweep's path: update every present
                    # core metric in one store round trip. Old values
                    # must come back exactly as scalar gets would.
                    updates = {key: value + offset
                               for offset, key in enumerate(model)
                               if key in STORE_METRICS}
                    expected_old = [model.get(key, 0.0) for key in updates]
                    old = view.bulk_update(updates)
                    model.update(updates)
                    if view._detached is None and all(
                            key in STORE_METRICS for key in updates):
                        assert old == expected_old
                elif kind == "extra":
                    key = f"custom_metric_{extra_serial}"
                    extra_serial += 1
                    view[key] = value
                    model[key] = value
                    spilled[index] = True
                elif kind == "release":
                    store.release(view)
                    live.pop(index)
                    deleted.pop(index)
                    spilled.pop(index)
            for view, model in live:
                assert view == model
                assert dict(view) == model
                assert list(view.items()) == list(model.items())
                assert list(view) == list(model)
                assert len(view) == len(model)
                for key, expected in model.items():
                    assert view[key] == expected
                    assert view.get(key) == expected
                    assert key in view

    def test_iteration_follows_store_metric_order(self):
        """The canonical insertion order is the column order."""
        store = ReplicaLoadStore()
        view = store.allocate({DISK_GB: 10.0, MEMORY_GB: 20.0})
        view[CPU_CORES] = 4.0
        assert tuple(view) == STORE_METRICS

    def test_rows_are_recycled_after_release(self):
        store = ReplicaLoadStore()
        first = store.allocate({DISK_GB: 1.0, MEMORY_GB: 2.0})
        row = first._row
        store.release(first)
        second = store.allocate({DISK_GB: 3.0, MEMORY_GB: 4.0})
        assert second._row == row
        assert second[DISK_GB] == 3.0


class TestDatabasePickleIdentity:
    """Columnar-backed and standalone instances pickle identically."""

    def pair(self):
        columns = DatabaseStateColumns()
        slo = get_slo("GP_Gen5_2")
        columnar = DatabaseInstance(db_id="db-7", slo=slo, created_at=3600,
                                    initial_data_gb=12.5, state=columns)
        standalone = DatabaseInstance(db_id="db-7", slo=slo, created_at=3600,
                                      initial_data_gb=12.5)
        return columnar, standalone

    def test_pickle_bytes_equal(self):
        columnar, standalone = self.pair()
        columnar.failover_count = 2
        standalone.failover_count = 2
        columnar.record_downtime(1.5)
        standalone.record_downtime(1.5)
        assert (pickle.dumps(columnar, protocol=pickle.HIGHEST_PROTOCOL)
                == pickle.dumps(standalone, protocol=pickle.HIGHEST_PROTOCOL))
        assert columnar == standalone

    def test_unpickled_instance_is_standalone_and_equal(self):
        columnar, _ = self.pair()
        clone = pickle.loads(pickle.dumps(columnar))
        assert clone == columnar
        clone.failover_count = 9   # must not write into the shared columns
        assert columnar.failover_count == 0


@pytest.mark.fleet
class TestFleetGolden:
    """Golden pinned 100-cluster fleet smoke (columnar default path).

    The digest is a sha256 over the canonical JSON of all 100 cluster
    summaries — any drift in the simulator, the columnar stores, the
    reducer, or the merge shows up here first.
    """

    GOLDEN_DIGEST = ("cb442bafd96614c58ce330cc05169da648e488b4"
                     "ed674fa7c2830b3c5eb97ae7")

    def topology(self):
        return FleetTopology(cluster_count=100, prefix="golden",
                             template=ClusterTemplate(node_count=4,
                                                      days=0.05))

    def test_hundred_cluster_smoke_pin(self):
        result = run_fleet(self.topology(), max_workers=1)
        kpis = result.kpis
        assert kpis.clusters == 100
        assert kpis.nodes == 400
        assert kpis.databases_created == 6216
        assert kpis.active_databases == 6192
        assert kpis.reserved_cores == 27424.0
        assert kpis.creation_redirects == 0
        assert kpis.failover_count == 0
        assert kpis.penalized_databases == 1
        assert result.digest == self.GOLDEN_DIGEST
