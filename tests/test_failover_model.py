"""Tests for the failover downtime/rebuild cost model."""

import numpy as np
import pytest

from repro.fabric.failover import (
    BC_PRIMARY_PROMOTION_RANGE,
    GP_FAILOVER_DOWNTIME_RANGE,
    PLANNED_MOVE_DOWNTIME_RANGE,
    REASON_CAPACITY_VIOLATION,
    REASON_MAKE_ROOM,
    FailoverRecord,
    failover_downtime,
    rebuild_seconds,
)
from repro.fabric.metrics import CPU_CORES, DISK_GB
from repro.fabric.replica import Replica, ReplicaRole


def make_replica(role=ReplicaRole.PRIMARY):
    return Replica(replica_id=1, service_id="db-1", role=role,
                   reported={CPU_CORES: 4.0, DISK_GB: 100.0})


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDowntime:
    def test_single_replica_reattach_window(self, rng):
        low, high = GP_FAILOVER_DOWNTIME_RANGE
        for _ in range(50):
            downtime = failover_downtime(make_replica(), 1, rng)
            assert low <= downtime <= high

    def test_bc_primary_promotion_window(self, rng):
        low, high = BC_PRIMARY_PROMOTION_RANGE
        for _ in range(50):
            downtime = failover_downtime(make_replica(), 4, rng)
            assert low <= downtime <= high

    def test_secondary_move_invisible(self, rng):
        secondary = make_replica(ReplicaRole.SECONDARY)
        assert failover_downtime(secondary, 4, rng) == 0.0

    def test_planned_move_graceful(self, rng):
        low, high = PLANNED_MOVE_DOWNTIME_RANGE
        for _ in range(50):
            downtime = failover_downtime(make_replica(), 1, rng,
                                         planned=True)
            assert low <= downtime <= high

    def test_planned_secondary_still_free(self, rng):
        secondary = make_replica(ReplicaRole.SECONDARY)
        assert failover_downtime(secondary, 4, rng, planned=True) == 0.0

    def test_planned_cheaper_than_unplanned(self, rng):
        assert max(PLANNED_MOVE_DOWNTIME_RANGE) < \
            min(GP_FAILOVER_DOWNTIME_RANGE)


class TestDowntimeStreamIsolation:
    """Downtime draws come from the named ``("failover", "downtime")``
    substream (see ServiceFabricCluster), so adding or removing PLB
    annealing draws can never shift which downtime a failover gets."""

    def test_named_substream_draw_sequence_pinned(self):
        """Regression pin: the exact draws the stream yields. A change
        here means the downtime model consumed the stream differently
        — which silently re-times every failover in every golden run."""
        from repro.rng import RngRegistry
        rng = RngRegistry(42).stream("failover", "downtime")
        draws = [failover_downtime(make_replica(), 1, rng),
                 failover_downtime(make_replica(), 4, rng),
                 failover_downtime(make_replica(ReplicaRole.SECONDARY),
                                   4, rng),
                 failover_downtime(make_replica(), 1, rng, planned=True),
                 failover_downtime(make_replica(), 1, rng)]
        assert draws == [71.26572532577319, 16.761609517853973, 0.0,
                         3.324480812502003, 48.77008953908852]

    def test_ring_wires_downtime_stream_separately_from_plb(self, kernel,
                                                            rng_registry):
        from tests.conftest import make_ring
        ring = make_ring(kernel, rng_registry)
        cluster = ring.cluster
        assert cluster._downtime_rng is not cluster.plb._rng


class TestRebuild:
    def test_remote_store_no_rebuild(self):
        assert rebuild_seconds(500.0, 1) == 0.0

    def test_local_store_scales_with_disk(self):
        small = rebuild_seconds(100.0, 4)
        large = rebuild_seconds(1000.0, 4)
        assert large == pytest.approx(10 * small)
        assert small > 0


class TestRecord:
    def make_record(self, reason):
        return FailoverRecord(
            time=0, service_id="db-1", replica_id=1,
            role=ReplicaRole.PRIMARY, from_node=0, to_node=1,
            metric=DISK_GB, cores_moved=4.0, disk_moved_gb=100.0,
            downtime_seconds=30.0, rebuild_seconds=300.0, reason=reason)

    def test_capacity_failover_flag(self):
        assert self.make_record(REASON_CAPACITY_VIOLATION) \
            .is_capacity_failover
        assert not self.make_record(REASON_MAKE_ROOM).is_capacity_failover

    def test_primary_flag(self):
        assert self.make_record(REASON_MAKE_ROOM).is_primary
