"""The whole-program analyzer and the DetSan runtime sanitizer.

Covers the PR's tentpole surface: the call-graph/hot-path inference
(:mod:`repro.analysis.graph`), the RNG substream registry and its
TL010..TL012 rules, the TL013 suppression audit, the baseline ratchet,
SARIF output, the exit-2 regression for unreadable input, and the
DetSan recorder including a forced first-mismatch divergence report.
Fixture trees are written under ``tmp_path`` with a ``repro/``
directory component so :func:`module_name_for` anchors them like real
package modules.
"""

import json
import pathlib
import subprocess
import sys
from io import StringIO
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    Baseline,
    ProgramGraph,
    SubstreamRegistry,
    format_sarif,
    get_rules,
    lint_paths,
    lint_source,
)
from repro.analysis.cli import (
    EXIT_CLEAN,
    EXIT_INTERNAL_ERROR,
    EXIT_VIOLATIONS,
    run_lint,
)
from repro.analysis.detsan import (
    DetSanRecorder,
    compare_ledgers,
    verify_run,
)
from repro.rng import RngRegistry

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def codes(report):
    return [violation.rule for violation in report.violations]


def write_tree(tmp_path, files):
    """Write ``{relative: source}`` under ``tmp_path/repro`` and
    return that root."""
    root = tmp_path / "repro"
    for relative, source in files.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


class TestProgramGraph:
    def test_draw_sites_literal_dynamic_and_annotated(self):
        graph = ProgramGraph.from_source(
            "def a(rng, name):\n"
            "    x = rng.stream('chaos', 'jitter')\n"
            "    y = rng.stream('node', 3)\n"
            "    z = rng.stream('fig', name)  # totolint: substream=fig/*\n"
            "    w = rng.derive_seed(name)\n")
        sites = graph.draw_sites()
        assert [site.method for site in sites] \
            == ["stream", "stream", "stream", "derive_seed"]
        assert sites[0].literal_key == ("chaos", "jitter")
        assert sites[1].literal_key == ("node", "3")
        assert sites[2].literal_key is None
        assert sites[2].annotation == "fig/*"
        assert sites[2].pattern == "fig/*"
        assert sites[3].literal_key is None
        assert sites[3].annotation is None

    def test_hot_inference_follows_callbacks_transitively(self):
        graph = ProgramGraph.from_source(
            "def handler():\n"
            "    helper()\n"
            "\n"
            "def helper():\n"
            "    pass\n"
            "\n"
            "def cold():\n"
            "    pass\n"
            "\n"
            "def wire(kernel):\n"
            "    kernel.schedule(10, handler, label='x')\n")
        hot = graph.hot_functions()
        assert any(name.endswith(":handler") for name in hot)
        assert any(name.endswith(":helper") for name in hot)
        assert not any(name.endswith(":cold") for name in hot)
        assert not any(name.endswith(":wire") for name in hot)

    def test_chaos_gates_are_roots(self):
        graph = ProgramGraph.from_source(
            "class Gate:\n"
            "    def on_read(self):\n"
            "        self._consult()\n"
            "    def _consult(self):\n"
            "        pass\n",
            path="src/repro/chaos/fixture.py")
        hot = graph.hot_functions()
        assert any(name.endswith("Gate.on_read") for name in hot)
        assert any(name.endswith("Gate._consult") for name in hot)

    def test_extract_cache_hits_on_second_run(self, tmp_path):
        root = write_tree(tmp_path, {
            "one.py": "def a():\n    pass\n",
            "two.py": "def b():\n    pass\n",
        })
        cache = tmp_path / "cache.json"
        first = ProgramGraph.build([root], cache_path=cache)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        second = ProgramGraph.build([root], cache_path=cache)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        (root / "one.py").write_text("def a():\n    return 1\n")
        third = ProgramGraph.build([root], cache_path=cache)
        assert (third.cache_hits, third.cache_misses) == (1, 1)

    def test_corrupt_cache_is_ignored(self, tmp_path):
        root = write_tree(tmp_path, {"one.py": "x = 1\n"})
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        graph = ProgramGraph.build([root], cache_path=cache)
        assert graph.cache_misses == 1
        # And the bad cache was replaced with a valid one.
        assert json.loads(cache.read_text())["version"] >= 1


class TestTL010SubstreamCollision:
    def test_two_call_paths_same_key_fires_with_both_paths(self, tmp_path):
        """The seeded-collision end-to-end case from the issue: a
        duplicated literal draw across two modules must fire TL010 and
        name both call paths in the message."""
        root = write_tree(tmp_path, {
            "alpha.py": "def alpha_draw(rng):\n"
                        "    return rng.stream('chaos', 'jitter')\n",
            "beta.py": "def beta_draw(rng):\n"
                       "    return rng.stream('chaos', 'jitter')\n",
        })
        report = lint_paths([root], rules=get_rules(["TL010"]))
        assert codes(report) == ["TL010"]
        message = report.violations[0].message
        assert "chaos/jitter" in message
        assert "alpha_draw" in message
        assert "beta_draw" in message

    def test_same_function_repeat_draw_is_one_owner(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": "def redraw(rng):\n"
                        "    a = rng.stream('chaos', 'jitter')\n"
                        "    b = rng.stream('chaos', 'jitter')\n"
                        "    return a, b\n",
        })
        report = lint_paths([root], rules=get_rules(["TL010"]))
        assert report.clean

    def test_distinct_keys_do_not_fire(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": "def one(rng):\n"
                        "    return rng.stream('chaos', 'jitter')\n"
                        "def two(rng):\n"
                        "    return rng.stream('chaos', 'targets')\n",
        })
        assert lint_paths([root], rules=get_rules(["TL010"])).clean


class TestTL011RootStream:
    def test_zero_token_draw_fires(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": "def naked(rng):\n"
                        "    return rng.stream()\n",
        })
        report = lint_paths([root], rules=get_rules(["TL011"]))
        assert codes(report) == ["TL011"]
        assert "root stream" in report.violations[0].message

    def test_root_seed_read_fires(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": "def leak(rng):\n"
                        "    return rng.root_seed\n",
        })
        report = lint_paths([root], rules=get_rules(["TL011"]))
        assert codes(report) == ["TL011"]
        assert "root_seed" in report.violations[0].message

    def test_repro_rng_itself_is_sanctioned(self, tmp_path):
        root = write_tree(tmp_path, {
            "rng.py": "def fork_impl(self):\n"
                      "    return self.root_seed\n",
        })
        assert lint_paths([root], rules=get_rules(["TL011"])).clean

    def test_named_draws_do_not_fire(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": "def named(rng):\n"
                        "    return rng.stream('population-manager')\n",
        })
        assert lint_paths([root], rules=get_rules(["TL011"])).clean


class TestTL012UnauditableDraw:
    def test_dynamic_tokens_without_annotation_fire(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": "def dynamic(rng, node):\n"
                        "    return rng.stream('node', node)\n",
        })
        report = lint_paths([root], rules=get_rules(["TL012"]))
        assert codes(report) == ["TL012"]
        assert "substream=" in report.violations[0].message

    def test_annotation_silences(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": "def dynamic(rng, node):\n"
                        "    return rng.stream('node', node)"
                        "  # totolint: substream=node/*\n",
        })
        assert lint_paths([root], rules=get_rules(["TL012"])).clean

    def test_fully_literal_draws_are_silent(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": "def literal(rng):\n"
                        "    return rng.stream('bootstrap')\n",
        })
        assert lint_paths([root], rules=get_rules(["TL012"])).clean


class TestTL013UnusedSuppression:
    def test_unused_line_suppression_fires(self):
        report = lint_source("def fine(x: int) -> int:\n"
                             "    return x  # totolint: disable=TL001\n")
        assert codes(report) == ["TL013"]
        assert "disable=TL001" in report.violations[0].message

    def test_unused_file_suppression_fires(self):
        report = lint_source("# totolint: disable-file=TL005\n"
                             "def fine(x: int) -> int:\n"
                             "    return x\n")
        assert codes(report) == ["TL013"]
        assert "disable-file=TL005" in report.violations[0].message

    def test_used_suppression_is_silent(self):
        report = lint_source("import time\n"
                             "def stamp():\n"
                             "    return time.time()"
                             "  # totolint: disable=TL001\n")
        assert report.clean

    def test_selecting_tl013_runs_full_catalogue_under_the_hood(self):
        source = ("import time\n"
                  "def stamp():\n"
                  "    return time.time()  # totolint: disable=TL001\n"
                  "def fine(x: int) -> int:\n"
                  "    return x  # totolint: disable=TL002\n")
        report = lint_source(source, rules=get_rules(["TL013"]))
        # Only the stale TL002 comment fires: TL001's suppression is
        # used (even though TL001 is not in the selection), and the
        # suppressed TL001 itself must not leak into the report.
        assert codes(report) == ["TL013"]
        assert "TL002" in report.violations[0].message


class TestBaseline:
    BAD = "def bad(x=[]):\n    return x\n"

    def run(self, **kwargs):
        out, err = StringIO(), StringIO()
        code = run_lint(stdout=out, stderr=err, **kwargs)
        return code, out.getvalue(), err.getvalue()

    def test_write_then_apply_absorbs_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        code, out, _ = self.run(paths=[bad], write_baseline=baseline)
        assert code == EXIT_CLEAN
        assert "wrote 1 finding(s)" in out
        code, out, _ = self.run(paths=[bad], baseline=baseline)
        assert code == EXIT_CLEAN
        assert "1 finding(s) absorbed" in out

    def test_new_finding_still_fails(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        self.run(paths=[bad], write_baseline=baseline)
        bad.write_text(self.BAD + "import time\n"
                       "def stamp():\n    return time.time()\n")
        code, out, _ = self.run(paths=[bad], baseline=baseline)
        assert code == EXIT_VIOLATIONS
        assert "TL001" in out
        assert "TL005" not in out  # still baselined

    def test_stale_entry_fails_the_ratchet(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        self.run(paths=[bad], write_baseline=baseline)
        bad.write_text("def fixed(x: int) -> int:\n    return x\n")
        code, _, err = self.run(paths=[bad], baseline=baseline)
        assert code == EXIT_VIOLATIONS
        assert "stale baseline entry" in err

    def test_malformed_baseline_is_internal_error(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        code, _, err = self.run(paths=[good], baseline=baseline)
        assert code == EXIT_INTERNAL_ERROR
        assert "Traceback" not in err

    def test_library_roundtrip_counts(self, tmp_path):
        from repro.analysis.engine import Violation
        violations = [
            Violation(path="a.py", line=1, col=0, rule="TL001", message="m"),
            Violation(path="a.py", line=9, col=0, rule="TL001", message="m"),
        ]
        path = tmp_path / "base.json"
        Baseline.from_violations(violations).write(str(path))
        loaded = Baseline.load(str(path))
        assert len(loaded) == 2
        result = loaded.apply(violations[:1])
        assert result.baselined == 1 and result.new == []
        assert len(result.stale) == 1 and "x1" in result.stale[0]


class TestSarif:
    def test_document_shape_and_columns(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def bad(x=[]):\n    return x\n")
        report = lint_paths([bad])
        document = json.loads(format_sarif(report))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "totolint"
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert "TL001" in rule_ids and "TL013" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "TL005"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1
        assert region["startColumn"] >= 1  # SARIF is 1-based
        assert run["properties"]["filesChecked"] == 1

    def test_cli_sarif_flag(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        out = StringIO()
        code = run_lint(paths=[good], sarif=True, stdout=out,
                        stderr=StringIO())
        assert code == EXIT_CLEAN
        assert json.loads(out.getvalue())["version"] == "2.1.0"

    def test_minimal_schema_holds_across_all_three_tiers(self, tmp_path):
        # One firing fixture per tier, so the results array exercises
        # ruleIndex lookups into every region of the catalogue.
        root = write_tree(tmp_path, {
            "simkernel/clock.py":
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n",
            "simkernel/loop.py":
                "def pump(events):\n"
                "    for event in events:\n"
                "        payload = [event.time]\n",
            "fleet/agg.py":
                "# totolint: merge-fn\n"
                "def merge_totals(parts):\n"
                "    return sum(set(parts))\n",
        })
        document = json.loads(format_sarif(lint_paths([root])))
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(document["runs"]) == 1
        run = document["runs"][0]

        rules = run["tool"]["driver"]["rules"]
        rule_ids = [rule["id"] for rule in rules]
        assert len(rule_ids) == len(set(rule_ids))
        # Every catalogue entry — all three tiers — carries the minimal
        # descriptor code-scanning UIs require.
        for tier_code in ("TL001", "TL014", "TL020", "TL024",
                          "TL030", "TL034"):
            assert tier_code in rule_ids
        for rule in rules:
            assert rule["name"]
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] \
                in ("error", "warning")

        results = run["results"]
        fired = {result["ruleId"] for result in results}
        assert "TL001" in fired  # determinism tier
        assert "TL020" in fired  # perf tier
        assert "TL030" in fired  # numeric tier
        for result in results:
            index = result["ruleIndex"]
            assert rules[index]["id"] == result["ruleId"]
            assert result["level"] \
                == rules[index]["defaultConfiguration"]["level"]
            assert result["message"]["text"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"]
            assert location["region"]["startLine"] >= 1
            assert location["region"]["startColumn"] >= 1


class TestUnreadableInputExit2:
    """Satellite: invalid input must exit 2 with a clean one-liner."""

    def test_undecodable_file_is_clean_exit_two(self, tmp_path):
        bad = tmp_path / "latin.py"
        bad.write_bytes(b"x = '\xff\xfe'\n")
        out, err = StringIO(), StringIO()
        code = run_lint(paths=[bad], stdout=out, stderr=err)
        assert code == EXIT_INTERNAL_ERROR
        assert "cannot decode" in err.getvalue()
        assert "Traceback" not in err.getvalue()

    def test_tools_wrapper_exits_two_without_traceback(self, tmp_path):
        bad = tmp_path / "latin.py"
        bad.write_bytes(b"x = '\xff\xfe'\n")
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "totolint.py"),
             str(bad)],
            capture_output=True, text=True, cwd=str(tmp_path))
        assert proc.returncode == EXIT_INTERNAL_ERROR
        assert "Traceback" not in proc.stderr
        assert "internal error" in proc.stderr

    def test_syntax_error_still_exits_two(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        out, err = StringIO(), StringIO()
        code = run_lint(paths=[bad], stdout=out, stderr=err)
        assert code == EXIT_INTERNAL_ERROR
        assert "Traceback" not in err.getvalue()


class TestDetSanRecorder:
    def test_recording_is_result_neutral_and_identity_stable(self):
        plain = RngRegistry(root_seed=42)
        recorded = RngRegistry(root_seed=42, recorder=DetSanRecorder())
        a = recorded.stream("chaos", "jitter")
        assert a is recorded.stream("chaos", "jitter")
        expected = plain.stream("chaos", "jitter").integers(0, 1000, size=8)
        observed = a.integers(0, 1000, size=8)
        assert list(observed) == list(expected)
        assert plain.derive_seed("x", 1) == recorded.derive_seed("x", 1)

    def test_ledger_records_streams_draws_and_events(self):
        recorder = DetSanRecorder()
        rng = RngRegistry(root_seed=7, recorder=recorder)
        rng.stream("chaos", "jitter").integers(0, 10)
        rng.derive_seed("node", 3)
        recorder.record_event(120, "tick")
        recorder.record_event(180, lambda: "lazy-label")
        kinds = [entry[0] for entry in recorder.entries]
        assert kinds == ["stream", "draw", "stream", "event", "event"]
        assert recorder.entries[0][2] == "chaos/jitter"
        assert recorder.entries[1][2] == "integers"
        assert recorder.entries[3] == ("event", 120, "tick")
        assert recorder.entries[4] == ("event", 180, "lazy-label")
        # This very file is the recorded acquisition site.
        assert recorder.acquisitions()[0][2].endswith(
            "test_analysis_program.py")

    def test_fork_inherits_the_recorder(self):
        recorder = DetSanRecorder()
        rng = RngRegistry(root_seed=7, recorder=recorder)
        child = rng.fork("chaos")
        assert child.recorder is recorder
        child.stream("backoff").normal()
        assert [entry[0] for entry in recorder.entries] \
            == ["stream", "stream", "draw"]

    def test_divergence_reports_first_mismatch(self):
        recorder = DetSanRecorder()
        rng = RngRegistry(root_seed=7, recorder=recorder)
        stream = rng.stream("chaos", "jitter")
        for _ in range(5):
            stream.integers(0, 10)
        mutated = list(recorder.entries)
        mutated[3] = ("draw", "chaos/jitter", "normal", "elsewhere.py", 1)
        divergence = compare_ledgers(recorder.entries, mutated)
        assert divergence is not None
        assert divergence.index == 3
        assert divergence.first[2] == "integers"
        assert divergence.second[2] == "normal"
        assert len(divergence.context) == 3
        text = divergence.format()
        assert "first divergence at ledger entry 3" in text
        assert "normal" in text and "integers" in text

    def test_identical_ledgers_and_length_mismatch(self):
        entries = [("event", 1, "a"), ("event", 2, "b")]
        assert compare_ledgers(entries, list(entries)) is None
        divergence = compare_ledgers(entries, entries[:1])
        assert divergence is not None
        assert divergence.index == 1
        assert divergence.second is None

    def test_fingerprint_is_order_sensitive(self):
        one, two = DetSanRecorder(), DetSanRecorder()
        one.record_event(1, "a")
        one.record_event(2, "b")
        two.record_event(2, "b")
        two.record_event(1, "a")
        assert one.fingerprint() != two.fingerprint()


class TestDetSanEndToEnd:
    def test_short_run_verifies_against_the_registry(self):
        from repro.experiments.scenarios import paper_scenario
        scenario = paper_scenario(density=1.1, days=1 / 24.0, seed=11,
                                  maintenance=False)
        result, report = verify_run(scenario)
        assert report.ok, report.format()
        assert report.divergence is None
        assert report.unknown_sites == []
        assert report.unknown_names == []
        assert report.entries > 0
        assert report.acquisitions > 0
        assert report.registry_size > 0
        assert report.fingerprint == report.replay_fingerprint
        assert result.events_executed > 0
        assert "OK" in report.format()


class TestRepoRegistry:
    """The acceptance criteria on the real tree."""

    def test_registry_is_nonempty_and_conflict_free(self):
        graph = ProgramGraph.build([SRC])
        registry = SubstreamRegistry(graph)
        assert len(registry) >= 10
        assert registry.collisions() == []
        assert registry.root_draws() == []
        assert registry.unauditable() == []
        # Known substreams from the runner are present.
        names = registry.names()
        assert "bootstrap" in names
        assert "population-manager" in names
        assert "chaos/*" in names

    def test_repo_lints_clean_modulo_committed_baseline(self):
        report = lint_paths([SRC])
        baseline = Baseline.load(str(REPO / "totolint-baseline.json"))
        result = baseline.apply(list(report.violations))
        assert result.new == [], [
            f"{v.path}:{v.line} {v.rule}" for v in result.new]
        assert result.stale == []
        assert report.registry_size >= 10
        assert report.hot_functions > 50
