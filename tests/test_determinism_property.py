"""Property tests for the determinism contract the linter guards.

The TL-rules exist to protect one observable property: running the same
seeded sweep twice — serially, in a pool, or in a fresh interpreter
that imported the rule-governed packages in a different order — yields
*byte-identical* serialized results. These tests state that property
directly; `tests/test_analysis.py` checks the static side.
"""

import hashlib
import pickle
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultInjector, FaultKind, FaultSchedule, FaultSpec
from repro.errors import ScenarioError
from repro.chaos.faults import NODE_TARGETED_KINDS
from repro.core.population_manager import PopulationManager
from repro.experiments.scenarios import paper_scenario
from repro.parallel import SweepExecutor
from repro.rng import RngRegistry
from repro.simkernel import SimulationKernel
from repro.units import HOUR

REPO = Path(__file__).resolve().parent.parent

#: The packages the determinism rules (TL001-TL004, TL007) govern.
RULE_GOVERNED_MODULES = (
    "repro.simkernel",
    "repro.fabric",
    "repro.sqldb",
    "repro.core",
    "repro.parallel",
)


def tiny_sweep(seeds, densities):
    return [paper_scenario(density=density, days=0.05, seed=seed,
                           maintenance=False)
            for seed in seeds for density in densities]


def digest(results):
    """One stable fingerprint over everything a study would consume."""
    payload = pickle.dumps(
        [(result.scenario.name, result.kpis, result.revenue)
         for result in results],
        protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(payload).hexdigest()


class TestSweepExecutorProperty:
    @given(seeds=st.lists(st.integers(min_value=0, max_value=2**31 - 1),
                          min_size=1, max_size=2, unique=True),
           density=st.sampled_from([1.0, 1.1, 1.4]))
    @settings(max_examples=5, deadline=None)
    def test_same_seeds_byte_identical(self, seeds, density):
        """Two runs of the same seeded sweep serialize identically."""
        scenarios = tiny_sweep(seeds, [density])
        try:
            first = SweepExecutor(max_workers=1).run(scenarios)
        except ScenarioError:
            # Rare seeds sample a bootstrap population the tiny 4-node
            # ring cannot host; determinism is vacuous for them.
            assume(False)
        second = SweepExecutor(max_workers=1).run(scenarios)
        assert digest(first) == digest(second)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=3, deadline=None)
    def test_executor_reuse_does_not_leak_state(self, seed):
        """One executor reused across sweeps == two fresh executors."""
        scenarios = tiny_sweep([seed], [1.1])
        reused = SweepExecutor(max_workers=1)
        try:
            warm = reused.run(scenarios)  # anything cached happens here
        except ScenarioError:
            assume(False)  # bootstrap does not fit this seed's draw
        assert digest(reused.run(scenarios)) == digest(warm)
        assert digest(SweepExecutor(max_workers=1).run(scenarios)) \
            == digest(warm)


_SUBPROCESS_TEMPLATE = """\
import hashlib, pickle, sys
for module in {imports!r}:
    __import__(module)
from repro.experiments.scenarios import paper_scenario
from repro.parallel import SweepExecutor
scenarios = [paper_scenario(density=d, days=0.05, seed={seed},
                            maintenance=False) for d in (1.0, 1.2)]
results = SweepExecutor(max_workers=1).run(scenarios)
payload = pickle.dumps(
    [(r.scenario.name, r.kpis, r.revenue) for r in results],
    protocol=pickle.HIGHEST_PROTOCOL)
sys.stdout.write(hashlib.sha256(payload).hexdigest())
"""


def run_in_fresh_interpreter(import_order, seed):
    proc = subprocess.run(
        [sys.executable, "-c",
         _SUBPROCESS_TEMPLATE.format(imports=list(import_order), seed=seed)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PYTHONHASHSEED": "random"},
        check=False)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


_HORIZON = 4 * HOUR
_NODE_COUNT = 4


@st.composite
def fault_specs(draw):
    kind = draw(st.sampled_from(sorted(FaultKind, key=lambda k: k.value)))
    target = None
    if kind in NODE_TARGETED_KINDS:
        target = draw(st.one_of(
            st.none(), st.integers(min_value=0,
                                   max_value=_NODE_COUNT - 1)))
    return FaultSpec(
        kind=kind,
        at=draw(st.integers(min_value=0, max_value=_HORIZON)),
        duration=draw(st.integers(min_value=30, max_value=2 * HOUR)),
        target=target)


@pytest.mark.chaos
class TestChaosScheduleProperty:
    """Safety properties that hold for *arbitrary* valid fault schedules,
    not just the curated profiles: the kernel always reaches the end of
    the run, no database is ever lost (only deferred), and the virtual
    retry walk respects the backoff budget."""

    @given(specs=st.lists(fault_specs(), max_size=8),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_never_deadlocks_never_loses_databases(self, specs, seed):
        from tests.conftest import make_flat_population, make_ring

        kernel = SimulationKernel()
        registry = RngRegistry(seed)
        ring = make_ring(kernel, registry, node_count=_NODE_COUNT)
        manager = PopulationManager(
            kernel=kernel, control_plane=ring.control_plane,
            models=make_flat_population(creates_per_hour=2.0,
                                        drops_per_hour=1.0),
            rng=registry.stream("population-manager"))
        injector = FaultInjector(kernel, ring,
                                 FaultSchedule(specs=tuple(specs)),
                                 registry,
                                 population_manager=manager)
        injector.install()
        ring.start()
        manager.start()
        injector.start()
        # Run past the horizon far enough that every fault window —
        # including one opening at the horizon itself — has closed.
        end = _HORIZON + 2 * HOUR + 60
        kernel.run_until(end)
        injector.finish()

        # No deadlock: virtual time reached the end of the run.
        assert kernel.now == end
        # No lost databases: every create is active until a drop
        # *executes*; a deferred drop leaves the database active.
        control_plane = ring.control_plane
        assert control_plane.creates_succeeded \
            - control_plane.drops_executed == control_plane.active_count()
        # Every injected fault eventually cleared its node.
        telemetry = injector.telemetry
        assert telemetry.node_restores == telemetry.node_crashes_applied
        # Retries are bounded by the backoff budget per probe.
        assert telemetry.retries \
            <= telemetry.probes * injector.backoff.max_retries
        ring.cluster.validate_invariants()


class TestImportOrderInvariance:
    def test_digest_stable_across_import_orders_and_hash_seeds(self):
        """Fresh interpreters importing the rule-governed packages in
        opposite orders (each under a different random PYTHONHASHSEED)
        produce the same bytes — no module-import side effects, global
        RNG state, or hash-salted iteration feed the results."""
        forward = run_in_fresh_interpreter(RULE_GOVERNED_MODULES, seed=42)
        reversed_order = run_in_fresh_interpreter(
            tuple(reversed(RULE_GOVERNED_MODULES)), seed=42)
        assert forward == reversed_order
