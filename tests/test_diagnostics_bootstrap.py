"""Tests for training diagnostics and bootstrap intervals."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.models.diagnostics import (
    diagnose_schedule,
    diagnose_trace,
    diurnal_strength,
)
from repro.models.hourly import HourlyTrainingSets
from repro.sqldb.editions import Edition
from repro.stats.bootstrap import (
    bootstrap_mean,
    bootstrap_mean_difference,
    bootstrap_paired_difference,
)
from repro.telemetry.production import ProductionTraceGenerator
from repro.telemetry.region import US_EAST_LIKE


class TestDiurnalStrength:
    def test_flat_profile_scores_zero(self):
        assert diurnal_strength(np.full(24, 5.0)) == 0.0

    def test_smooth_bump_scores_high(self):
        hours = np.arange(24)
        profile = 10 + 40 * np.exp(-((hours - 13) / 4.0) ** 2)
        assert diurnal_strength(profile) > 0.8

    def test_pure_noise_scores_low(self):
        rng = np.random.default_rng(0)
        profile = rng.normal(10, 5, size=24)
        assert diurnal_strength(profile) < 0.6

    def test_wrong_length_rejected(self):
        with pytest.raises(TrainingError):
            diurnal_strength(np.ones(12))


class TestScheduleDiagnostics:
    @pytest.fixture(scope="class")
    def trace(self):
        generator = ProductionTraceGenerator(US_EAST_LIKE,
                                             np.random.default_rng(6))
        return generator.event_trace(Edition.STANDARD_GP, "create",
                                     days=14)

    def test_trained_gp_schedule_healthy(self, trace):
        diagnostics = diagnose_trace(trace)
        assert diagnostics.healthy()
        assert diagnostics.diurnal_strength > 0.5
        assert diagnostics.weekday_weekend_contrast > 1.3
        assert diagnostics.min_sample_count >= 4

    def test_cell_counts_match_training_window(self, trace):
        diagnostics = diagnose_trace(trace)
        weekday_cells = [c for c in diagnostics.cells
                         if c.daytype is DayType.WEEKDAY]
        assert all(c.sample_count == 10 for c in weekday_cells)

    def test_flat_schedule_flagged_unhealthy(self):
        schedule = HourlyNormalSchedule.constant(5.0, 1.0)
        sets = HourlyTrainingSets(groups={
            (daytype, hour): [5.0, 5.0, 5.0]
            for daytype in DayType for hour in range(24)})
        diagnostics = diagnose_schedule(schedule, sets)
        assert diagnostics.diurnal_strength == 0.0
        assert not diagnostics.healthy()

    def test_noisy_cells_counted(self):
        schedule = HourlyNormalSchedule.constant(1.0, 5.0)  # sigma >> mu
        sets = HourlyTrainingSets(groups={})
        diagnostics = diagnose_schedule(schedule, sets)
        assert diagnostics.noisy_cell_count == 48
        assert "noisy-cells=48" in diagnostics.summary()


class TestBootstrap:
    def test_interval_contains_true_mean(self):
        rng = np.random.default_rng(1)
        sample = rng.normal(10.0, 2.0, size=200)
        interval = bootstrap_mean(sample)
        assert interval.low < 10.0 < interval.high
        assert interval.estimate == pytest.approx(sample.mean())

    def test_confidence_widens_interval(self):
        rng = np.random.default_rng(1)
        sample = rng.normal(0.0, 1.0, size=100)
        narrow = bootstrap_mean(sample, confidence=0.80)
        wide = bootstrap_mean(sample, confidence=0.99)
        assert wide.high - wide.low > narrow.high - narrow.low

    def test_deterministic_given_seed(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0]
        a = bootstrap_mean(sample, seed=7)
        b = bootstrap_mean(sample, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_difference_detects_shift(self):
        rng = np.random.default_rng(2)
        a = rng.normal(12.0, 1.0, size=100)
        b = rng.normal(10.0, 1.0, size=100)
        interval = bootstrap_mean_difference(a, b)
        assert interval.excludes_zero
        assert interval.estimate == pytest.approx(2.0, abs=0.5)

    def test_difference_of_identical_includes_zero(self):
        rng = np.random.default_rng(3)
        a = rng.normal(10.0, 1.0, size=100)
        b = rng.normal(10.0, 1.0, size=100)
        assert not bootstrap_mean_difference(a, b).excludes_zero

    def test_paired_uses_correlation(self):
        rng = np.random.default_rng(4)
        base = rng.normal(100.0, 20.0, size=50)   # large between-unit var
        a = base + rng.normal(1.0, 0.5, size=50)  # small paired shift
        b = base
        paired = bootstrap_paired_difference(a, b)
        unpaired = bootstrap_mean_difference(a, b)
        assert paired.excludes_zero          # pairing exposes the shift
        assert paired.high - paired.low < unpaired.high - unpaired.low

    def test_validation(self):
        with pytest.raises(TrainingError):
            bootstrap_mean([1.0])
        with pytest.raises(TrainingError):
            bootstrap_mean([1.0, 2.0], confidence=1.5)
        with pytest.raises(TrainingError):
            bootstrap_paired_difference([1.0, 2.0], [1.0])

    def test_str_rendering(self):
        interval = bootstrap_mean([1.0, 2.0, 3.0, 4.0])
        assert "@95%" in str(interval)
