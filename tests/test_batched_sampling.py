"""Batched (vectorized) sampling must be byte-identical to scalar.

``repro.rng.BatchedStream`` turns runs of consecutive same-kind draws
on one substream into a single numpy array call. That is only legal
because a numpy ``Generator`` advances its PCG64 state identically for
an array draw and the equivalent element-wise loop — and because
``sigma == 0`` cells, which the scalar code never drew for, are masked
out of the array call. These tests pin the claim at three levels:

* the primitive: array draws equal the scalar loop draw-for-draw;
* the façade: ``TOTO_SCALAR_SAMPLING`` (module flag
  ``repro.rng.SCALAR_SAMPLING``) degrades to the scalar loop and the
  values do not move;
* the system: a full benchmark run produces identical KPIs and frames
  with batching on and off.
"""

import numpy as np

from repro import rng as rng_module
from repro.core.create_drop import CreateDropModel
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.sqldb.editions import Edition
from repro.core.runner import run_scenario
from repro.experiments.scenarios import paper_scenario
from repro.rng import BatchedStream, RngRegistry


def fresh_generator(seed=1234):
    return np.random.default_rng(seed)


class TestBatchedStreamPrimitive:
    def test_normals_match_scalar_loop_exactly(self):
        mus = [0.5, 1.0, -2.0, 3.25, 0.0]
        sigmas = [0.1, 2.0, 0.7, 1e-9, 5.0]
        batched = BatchedStream(fresh_generator()).normals(mus, sigmas)
        scalar_generator = fresh_generator()
        scalar = [float(scalar_generator.normal(mu, sigma))
                  for mu, sigma in zip(mus, sigmas)]
        assert batched.tolist() == scalar

    def test_zero_sigma_cells_consume_no_draw(self):
        # The scalar code short-circuits sigma == 0 to mu without
        # touching the generator; the masked array call must do the
        # same or every later draw on the stream shifts.
        mus = [1.0, 7.0, 2.0]
        sigmas = [0.5, 0.0, 0.25]
        generator = fresh_generator()
        batched = BatchedStream(generator).normals(mus, sigmas)
        assert batched[1] == 7.0
        after_batched = float(generator.normal(0.0, 1.0))

        generator = fresh_generator()
        for mu, sigma in zip(mus, sigmas):
            if sigma > 0:
                generator.normal(mu, sigma)
        assert float(generator.normal(0.0, 1.0)) == after_batched

    def test_integers_match_scalar_loop_exactly(self):
        batched = BatchedStream(fresh_generator()).integers(0, 3600, 50)
        scalar_generator = fresh_generator()
        scalar = [int(scalar_generator.integers(0, 3600))
                  for _ in range(50)]
        assert batched.tolist() == scalar

    def test_scalar_sampling_flag_is_value_identical(self, monkeypatch):
        mus = np.linspace(-1.0, 4.0, 17)
        sigmas = np.abs(np.sin(mus))  # includes an exact zero
        vectorized = BatchedStream(fresh_generator()).normals(mus, sigmas)
        monkeypatch.setattr(rng_module, "SCALAR_SAMPLING", True)
        scalar = BatchedStream(fresh_generator()).normals(mus, sigmas)
        assert vectorized.tolist() == scalar.tolist()

        vec_ints = BatchedStream(fresh_generator()).integers(5, 99, 31)
        scalar_ints = BatchedStream(fresh_generator()).integers(5, 99, 31)
        assert vec_ints.tolist() == scalar_ints.tolist()

    def test_registry_batched_wraps_the_same_substream(self):
        registry = RngRegistry(7)
        draw = registry.batched("population").normals([0.0], [1.0])
        other = RngRegistry(7)
        expected = float(other.stream("population").normal(0.0, 1.0))
        assert float(draw[0]) == expected


class TestSampleCounts:
    def test_sample_counts_equals_scalar_draws(self):
        creates = HourlyNormalSchedule()
        drops = HourlyNormalSchedule()
        for hour in range(24):
            creates.set(DayType.WEEKDAY, hour, mu=10.0 + hour, sigma=3.0)
            drops.set(DayType.WEEKDAY, hour, mu=4.0, sigma=0.0)
        for daytype in DayType:
            if daytype is DayType.WEEKDAY:
                continue
            for hour in range(24):
                creates.set(daytype, hour, mu=1.0, sigma=1.0)
                drops.set(daytype, hour, mu=1.0, sigma=1.0)
        model = CreateDropModel(edition=Edition.STANDARD_GP,
                                creates=creates, drops=drops)

        batch = BatchedStream(fresh_generator())
        counts = [model.sample_counts(DayType.WEEKDAY, hour, batch)
                  for hour in range(24)]

        generator = fresh_generator()
        expected = []
        for hour in range(24):
            mu_c, sigma_c = creates.params(DayType.WEEKDAY, hour)
            mu_d, sigma_d = drops.params(DayType.WEEKDAY, hour)
            n_c = float(generator.normal(mu_c, sigma_c)) \
                if sigma_c > 0 else mu_c
            n_d = float(generator.normal(mu_d, sigma_d)) \
                if sigma_d > 0 else mu_d
            expected.append((max(0, int(round(n_c))),
                             max(0, int(round(n_d)))))
        assert counts == expected


class TestEndToEndByteIdentity:
    def test_run_identical_with_and_without_batching(self, monkeypatch):
        """Flip TOTO_SCALAR_SAMPLING: the benchmark must not move."""
        scenario = paper_scenario(density=1.1, days=0.1, seed=99,
                                  maintenance=True)
        vectorized = run_scenario(scenario)
        monkeypatch.setattr(rng_module, "SCALAR_SAMPLING", True)
        scalar = run_scenario(scenario)
        assert vectorized.kpis == scalar.kpis
        assert vectorized.frames == scalar.frames
        assert vectorized.revenue == scalar.revenue
