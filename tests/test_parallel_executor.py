"""Parallel sweep execution: determinism, ordering, and fallback.

The executor's contract is that parallelism is *invisible* in the
results: a sweep run with ``max_workers=4`` must produce byte-identical
rows and KPIs to the serial loop, results must come back in spec order
(never completion order), and anything that prevents fanning out —
``max_workers=1``, unpicklable payloads, a broken pool — must degrade
to the serial path instead of failing.
"""

import pickle

import pytest

from repro.core.model_xml import (
    TotoModelDocument,
    parse_model_xml,
    serialize_model_xml,
)
from repro.core.orchestrator import TotoOrchestrator
from repro.core.scenario import BenchmarkScenario
from repro.experiments.density import DensityStudy
from repro.experiments.scenarios import paper_scenario
from repro.fabric.metrics import DISK_GB
from repro.fabric.replica import Replica, ReplicaRole
from repro.parallel import SweepExecutor, SweepProgress, run_scenarios
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import Edition
from repro.sqldb.slo import get_slo
from repro.units import HOUR
from tests.conftest import make_flat_disk_model, make_ring

SWEEP_DENSITIES = (1.0, 1.1, 1.2)


def quick_scenario(density=1.0, seed=42):
    return paper_scenario(density=density, days=0.25, seed=seed,
                          maintenance=False)


class TestSerialParallelEquivalence:
    def test_density_sweep_byte_identical(self):
        """max_workers=4 reproduces the serial sweep bit for bit."""
        serial = DensityStudy(densities=SWEEP_DENSITIES, days=0.25,
                              seed=42, maintenance=False, max_workers=1)
        parallel = DensityStudy(densities=SWEEP_DENSITIES, days=0.25,
                                seed=42, maintenance=False, max_workers=4)
        serial_rows = serial.summary_rows()
        parallel_rows = parallel.summary_rows()
        assert (pickle.dumps(serial_rows)
                == pickle.dumps(parallel_rows))
        for density in SWEEP_DENSITIES:
            a, b = serial.result(density), parallel.result(density)
            assert a.kpis == b.kpis
            assert a.frames == b.frames
            assert pickle.dumps(a.kpis) == pickle.dumps(b.kpis)

    def test_multi_seed_grid_identical(self):
        """A density x seed grid matches serially and in parallel."""
        scenarios = [quick_scenario(density=d, seed=s)
                     for d in (1.0, 1.2) for s in (42, 43)]
        serial = run_scenarios(scenarios, max_workers=1)
        parallel = run_scenarios(scenarios, max_workers=4)
        for a, b in zip(serial, parallel):
            assert a.kpis == b.kpis
            assert a.revenue == b.revenue

    def test_results_keyed_by_spec_not_completion(self):
        """Longer first scenario cannot displace results of later ones."""
        scenarios = [
            quick_scenario(density=1.0).with_duration(12 * HOUR),
            quick_scenario(density=1.2).with_duration(2 * HOUR),
        ]
        results = run_scenarios(scenarios, max_workers=2)
        assert [r.scenario.name for r in results] \
            == [s.name for s in scenarios]
        assert results[0].scenario.duration == 12 * HOUR
        assert results[1].scenario.duration == 2 * HOUR


class TestExecutorMechanics:
    def test_empty_sweep(self):
        assert SweepExecutor(max_workers=4).run([]) == []

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(max_workers=0)

    def test_serial_mode_for_single_worker(self):
        executor = SweepExecutor(max_workers=1)
        executor.run([quick_scenario()])
        assert executor.last_mode == "serial"

    def test_progress_callback_sees_every_completion(self):
        seen = []
        executor = SweepExecutor(max_workers=2, progress=seen.append)
        executor.run([quick_scenario(1.0), quick_scenario(1.2)])
        assert len(seen) == 2
        assert all(isinstance(p, SweepProgress) for p in seen)
        assert {p.completed for p in seen} == {1, 2}
        assert all(p.total == 2 for p in seen)

    def test_unpicklable_scenario_falls_back_to_serial(self):
        class LocalDocument(TotoModelDocument):
            """Local classes cannot cross a process boundary."""

        scenario = BenchmarkScenario(
            name="unpicklable", model_document=LocalDocument(),
            duration=1 * HOUR, bootstrap_settle=0,
            run_population_manager=False)
        with pytest.raises(Exception):
            pickle.dumps(scenario)
        executor = SweepExecutor(max_workers=2)
        results = executor.run([scenario, scenario])
        assert executor.last_mode == "serial"
        assert len(results) == 2

    def test_scenario_error_propagates(self):
        import dataclasses

        from repro.errors import ScenarioError
        bad = dataclasses.replace(
            quick_scenario(), model_document=TotoModelDocument())
        with pytest.raises(ScenarioError):
            run_scenarios([bad], max_workers=1)


class TestParseCache:
    """The orchestrator parses each published blob once per version."""

    def make_document(self, mu):
        # Non-persisted so probe state lives in RgManager memory only
        # (keeps the cached/uncached twins from sharing Naming state).
        return TotoModelDocument(resource_models=[
            make_flat_disk_model(Edition.PREMIUM_BC, mu=mu,
                                 rate_heterogeneity=0.0, persisted=False)])

    def probe_loads(self, rgmanager, now):
        database = DatabaseInstance(db_id="db-1", slo=get_slo("BC_Gen5_4"),
                                    created_at=0, initial_data_gb=100.0)
        replica = Replica(replica_id=1, service_id="db-1",
                          role=ReplicaRole.PRIMARY, node_id=rgmanager.node_id,
                          reported={DISK_GB: 100.0})
        return rgmanager.get_metric_loads(replica, database, now=now,
                                          interval_seconds=300)

    def test_one_parse_per_version_across_nodes(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry, node_count=4)
        orchestrator = TotoOrchestrator(kernel, ring)
        orchestrator.publish_models(self.make_document(mu=1.0),
                                    propagate_now=True)
        assert orchestrator.parses == 1
        assert all(r.model_version == 1 for r in ring.rgmanagers)
        # Version bump: exactly one more parse, all nodes on version 2.
        orchestrator.publish_models(self.make_document(mu=2.0),
                                    propagate_now=True)
        assert orchestrator.parses == 2
        assert all(r.model_version == 2 for r in ring.rgmanagers)

    def test_cached_refresh_matches_uncached_behaviour(self, kernel,
                                                       rng_registry):
        """Shared cached model set == per-node fresh parse, across a
        publish_models version bump."""
        from repro.core.model_base import TotoModelSet
        from repro.fabric.naming import NamingService
        from repro.rng import RngRegistry
        from repro.sqldb.rgmanager import RgManager

        ring = make_ring(kernel, rng_registry, node_count=3)
        orchestrator = TotoOrchestrator(kernel, ring)
        for version, mu in ((1, 1.0), (2, 3.0)):
            document = self.make_document(mu=mu)
            orchestrator.publish_models(document, propagate_now=True)
            xml = serialize_model_xml(document)
            for node_id, rgmanager in enumerate(ring.rgmanagers):
                # Uncached twin: same node id and seeds, fresh parse of
                # the same XML into its own model objects.
                uncached = RgManager(
                    node_id=node_id, naming=NamingService(),
                    rng_registry=RngRegistry(rng_registry.root_seed))
                uncached.install_models(
                    TotoModelSet(parse_model_xml(xml).resource_models),
                    version)
                assert rgmanager.model_version == version
                expected = self.probe_loads(uncached, now=version * 600)
                # Fresh streams/memory for the cached side too: compare
                # model behaviour, not RNG positions.
                rgmanager._streams.clear()
                rgmanager._rng_registry = RngRegistry(
                    rng_registry.root_seed)
                rgmanager._memory.clear()
                actual = self.probe_loads(rgmanager, now=version * 600)
                assert actual == expected
