"""Tests for the PLB: placement, make-room, and capacity violations."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.fabric.cluster import ServiceFabricCluster
from repro.fabric.failover import REASON_CAPACITY_VIOLATION, REASON_MAKE_ROOM
from repro.fabric.metrics import CPU_CORES, DISK_GB, NodeCapacities
from repro.fabric.replica import ReplicaRole


def make_cluster(node_count=4, cpu=32.0, disk=1000.0, seed=3,
                 use_annealing=True):
    return ServiceFabricCluster(
        node_count=node_count,
        capacities=NodeCapacities(cpu_cores=cpu, disk_gb=disk,
                                  memory_gb=128.0),
        plb_rng=np.random.default_rng(seed),
        use_annealing=use_annealing)


class TestPlacement:
    def test_single_replica_placed(self):
        cluster = make_cluster()
        record = cluster.create_service("db-1", 1, 4.0, {DISK_GB: 10.0},
                                        now=0)
        assert len(record.replicas) == 1
        assert record.replicas[0].node_id is not None

    def test_replicas_on_distinct_nodes(self):
        cluster = make_cluster()
        record = cluster.create_service("db-1", 4, 2.0, {DISK_GB: 10.0},
                                        now=0)
        node_ids = [replica.node_id for replica in record.replicas]
        assert len(set(node_ids)) == 4

    def test_first_replica_is_primary(self):
        cluster = make_cluster()
        record = cluster.create_service("db-1", 4, 2.0, {}, now=0)
        assert record.replicas[0].role is ReplicaRole.PRIMARY
        assert all(replica.role is ReplicaRole.SECONDARY
                   for replica in record.replicas[1:])

    def test_insufficient_nodes_rejected(self):
        cluster = make_cluster(node_count=3)
        with pytest.raises(PlacementError):
            cluster.create_service("db-1", 4, 2.0, {}, now=0)

    def test_cpu_capacity_respected(self):
        cluster = make_cluster(node_count=2, cpu=8.0)
        cluster.create_service("a", 1, 8.0, {}, now=0)
        cluster.create_service("b", 1, 8.0, {}, now=0)
        with pytest.raises(PlacementError):
            cluster.create_service("c", 1, 8.0, {}, now=0)

    def test_disk_capacity_respected(self):
        cluster = make_cluster(node_count=1, disk=100.0)
        with pytest.raises(PlacementError):
            cluster.create_service("big", 1, 1.0, {DISK_GB: 200.0}, now=0)

    def test_greedy_mode_spreads_by_free_cpu(self):
        cluster = make_cluster(use_annealing=False)
        cluster.create_service("a", 1, 10.0, {}, now=0)
        record = cluster.create_service("b", 1, 10.0, {}, now=0)
        # Greedy picks the freest node, never the one hosting "a".
        a_node = cluster.service("a").replicas[0].node_id
        assert record.replicas[0].node_id != a_node

    def test_placement_balances_load(self):
        cluster = make_cluster(node_count=4)
        for index in range(8):
            cluster.create_service(f"svc-{index}", 1, 4.0, {}, now=0)
        loads = [node.load(CPU_CORES) for node in cluster.nodes]
        assert max(loads) - min(loads) <= 4.0


class TestMakeRoom:
    def test_placement_succeeds_after_make_room(self):
        # Fill both nodes to 28/32 cores with small services; a 6-core
        # request then needs a relocation to fit.
        cluster = make_cluster(node_count=2, cpu=32.0)
        for index in range(14):
            cluster.create_service(f"s{index}", 1, 4.0, {}, now=0)
        record = cluster.create_service("big", 1, 6.0, {}, now=0)
        assert record.replicas[0].node_id is not None
        moves = [r for r in cluster.failovers
                 if r.reason == REASON_MAKE_ROOM]
        assert moves, "expected at least one make-room move"

    def test_make_room_moves_counted_separately(self):
        cluster = make_cluster(node_count=2, cpu=32.0)
        for index in range(14):
            cluster.create_service(f"s{index}", 1, 4.0, {}, now=0)
        cluster.create_service("big", 1, 6.0, {}, now=0)
        assert cluster.plb.stats.make_room_moves >= 1
        for record in cluster.failovers:
            assert record.reason == REASON_MAKE_ROOM
            assert not record.is_capacity_failover

    def test_impossible_even_with_make_room(self):
        cluster = make_cluster(node_count=1, cpu=8.0)
        cluster.create_service("a", 1, 8.0, {}, now=0)
        with pytest.raises(PlacementError):
            cluster.create_service("b", 1, 4.0, {}, now=0)


class TestViolations:
    def test_disk_violation_triggers_failover(self):
        cluster = make_cluster(node_count=2, disk=100.0)
        a = cluster.create_service("a", 1, 2.0, {DISK_GB: 60.0}, now=0)
        b = cluster.create_service("b", 1, 2.0, {DISK_GB: 60.0}, now=0)
        # Force both onto violation: report b's disk growing past capacity
        # on whichever node it shares... place them on the same node is
        # impossible (2 nodes, balanced), so grow one replica past 100.
        replica = a.replicas[0]
        cluster.report_load(replica, {DISK_GB: 120.0})
        node = cluster.node(replica.node_id)
        assert node.violates(DISK_GB)
        records = cluster.sweep_violations(now=10)
        # The replica itself cannot fit anywhere (120 > 100): the sweep
        # must not crash; either it moved the other tenant or got stuck.
        assert all(r.reason == REASON_CAPACITY_VIOLATION for r in records)

    def test_violation_fixed_by_moving_smallest_covering(self):
        cluster = make_cluster(node_count=3, disk=100.0, cpu=64.0)
        services = []
        for index, disk in enumerate((40.0, 30.0, 20.0)):
            services.append(cluster.create_service(
                f"s{index}", 1, 2.0, {DISK_GB: disk}, now=0))
        # Manually pile all three onto node 0 to create a violation.
        for record in services:
            replica = record.replicas[0]
            if replica.node_id != 0:
                cluster.node(replica.node_id).detach(replica)
                cluster.node(0).attach(replica)
        cluster.node(0).recompute_loads()
        assert cluster.node(0).load(DISK_GB) == pytest.approx(90.0)
        cluster.report_load(services[0].replicas[0], {DISK_GB: 55.0})
        assert cluster.node(0).violates(DISK_GB)

        records = cluster.sweep_violations(now=5)
        assert records, "violation should be fixed by a move"
        assert not cluster.node(0).violates(DISK_GB)
        # Smallest replica that covers the 5GB excess is the 20GB one.
        assert records[0].disk_moved_gb == pytest.approx(20.0)

    def test_primary_move_promotes_secondary(self):
        cluster = make_cluster(node_count=5, disk=100.0)
        record = cluster.create_service("bc", 4, 2.0, {DISK_GB: 30.0},
                                        now=0)
        primary = record.primary
        primary_node = cluster.node(primary.node_id)
        cluster.report_load(primary, {DISK_GB: 120.0})
        cluster.sweep_violations(now=5)
        # A new primary must exist and be unique.
        primaries = [replica for replica in record.replicas
                     if replica.is_primary]
        assert len(primaries) == 1
        cluster.validate_invariants()

    def test_downtime_recorded_for_primary_moves(self):
        cluster = make_cluster(node_count=2, disk=100.0)
        record = cluster.create_service("gp", 1, 2.0, {DISK_GB: 60.0},
                                        now=0)
        cluster.create_service("gp2", 1, 2.0, {DISK_GB: 30.0}, now=0)
        replica = record.replicas[0]
        cluster.report_load(replica, {DISK_GB: 80.0})
        records = cluster.sweep_violations(now=5)
        if records:  # single-replica moves always carry downtime
            assert all(r.downtime_seconds > 0 for r in records
                       if r.role is ReplicaRole.PRIMARY)

    def test_stuck_violation_counted(self):
        cluster = make_cluster(node_count=1, disk=100.0)
        record = cluster.create_service("only", 1, 2.0, {DISK_GB: 50.0},
                                        now=0)
        cluster.report_load(record.replicas[0], {DISK_GB: 150.0})
        records = cluster.sweep_violations(now=5)
        assert records == []
        assert cluster.plb.stats.stuck_violations == 1


class TestInvariants:
    def test_validate_after_churn(self):
        cluster = make_cluster(node_count=6, cpu=64.0, disk=2000.0)
        rng = np.random.default_rng(0)
        for index in range(30):
            replica_count = 4 if index % 5 == 0 else 1
            cluster.create_service(f"svc-{index}", replica_count,
                                   float(rng.integers(2, 9)),
                                   {DISK_GB: float(rng.integers(5, 80))},
                                   now=index)
        for index in range(0, 30, 3):
            cluster.drop_service(f"svc-{index}")
        cluster.validate_invariants()
        assert cluster.service_count == 20
