"""Tests for the configuration-change sweep (use case (a))."""

import pytest

from repro.experiments.sensitivity import (
    ConfigSweep,
    Variant,
    with_density,
    with_greedy_placement,
    with_report_interval,
)
from tests.test_runner_integration import small_scenario


@pytest.fixture(scope="module")
def baseline(tiny_document):
    return small_scenario(tiny_document, hours=4)


class TestTransforms:
    def test_report_interval(self, baseline):
        variant = with_report_interval(900)
        scenario = variant.transform(baseline)
        assert scenario.ring.report_interval == 900
        assert variant.label == "report-15min"

    def test_density(self, baseline):
        variant = with_density(1.3)
        assert variant.transform(baseline).ring.density == 1.3
        assert variant.label == "density-130"

    def test_greedy(self, baseline):
        assert with_greedy_placement().transform(baseline) \
            .ring.use_annealing is False


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self, baseline):
        sweep = ConfigSweep(baseline, [with_report_interval(900),
                                       with_density(1.2)])
        sweep.run()
        return sweep

    def test_baseline_plus_variants(self, sweep):
        outcomes = sweep.run()
        assert [o.label for o in outcomes] == [
            "baseline", "report-15min", "density-120"]

    def test_results_cached(self, sweep):
        assert sweep.run() is not sweep.run()  # list copies...
        assert sweep.run()[0].result is sweep.run()[0].result  # same runs

    def test_outcome_lookup(self, sweep):
        assert sweep.outcome("density-120").result.scenario.ring \
            .density == 1.2
        with pytest.raises(KeyError):
            sweep.outcome("nope")

    def test_variant_runs_differ_from_baseline(self, sweep):
        base = sweep.outcome("baseline").result
        denser = sweep.outcome("density-120").result
        assert denser.scenario.ring.density > base.scenario.ring.density

    def test_delta_rows_shape(self, sweep):
        rows = sweep.delta_rows()
        assert len(rows) == 3
        assert rows[0][0] == "baseline"
        assert rows[0][-1] == "+0"  # baseline deltas are zero

    def test_report_renders(self, sweep):
        text = sweep.format_report()
        assert "Config sweep" in text
        assert "report-15min" in text

    def test_duplicate_labels_rejected(self, baseline):
        with pytest.raises(ValueError):
            ConfigSweep(baseline, [with_density(1.2), with_density(1.2)])

    def test_reserved_label_rejected(self, baseline):
        with pytest.raises(ValueError):
            ConfigSweep(baseline,
                        [Variant("baseline", lambda s: s)])
