"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.simkernel import Event, EventQueue, PeriodicProcess, SimClock, \
    SimulationKernel
from repro.units import HOUR


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_custom_start(self):
        assert SimClock(100).now == 100

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1)

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(50)
        assert clock.now == 50

    def test_advance_to_same_time_ok(self):
        clock = SimClock(10)
        clock.advance_to(10)
        assert clock.now == 10

    def test_cannot_go_backwards(self):
        clock = SimClock(10)
        with pytest.raises(SimulationError):
            clock.advance_to(9)

    def test_hour_of_day(self):
        clock = SimClock(3 * HOUR + 10)
        assert clock.hour_of_day == 3


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(30, lambda: None, "late")
        queue.push(10, lambda: None, "early")
        assert queue.pop().label == "early"
        assert queue.pop().label == "late"

    def test_fifo_within_same_time(self):
        queue = EventQueue()
        queue.push(5, lambda: None, "first")
        queue.push(5, lambda: None, "second")
        assert queue.pop().label == "first"
        assert queue.pop().label == "second"

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(5, lambda: None, "cancel-me")
        queue.push(6, lambda: None, "keep")
        event.cancel()
        assert queue.pop().label == "keep"

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(5, lambda: None)
        queue.push(9, lambda: None)
        event.cancel()
        assert queue.peek_time() == 9

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1, lambda: None)

    def test_len_counts_only_live_events(self):
        queue = EventQueue()
        events = [queue.push(t, lambda: None) for t in range(10)]
        events[3].cancel()
        events[7].cancel()
        assert len(queue) == 8

    def test_lazy_label_resolved_on_access(self):
        queue = EventQueue()
        calls = []

        def label():
            calls.append(1)
            return "expensive-label"

        event = queue.push(5, lambda: None, label)
        assert calls == []          # not formatted at scheduling time
        assert event.label == "expensive-label"
        assert event.label == "expensive-label"
        assert calls == [1]         # resolved exactly once

    def test_pop_before_stops_at_end_time(self):
        queue = EventQueue()
        queue.push(5, lambda: None, "early")
        queue.push(20, lambda: None, "late")
        assert queue.pop_before(10).label == "early"
        assert queue.pop_before(10) is None
        assert len(queue) == 1      # the late event stays queued
        assert queue.pop_before(21).label == "late"

    def test_pop_before_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(5, lambda: None, "cancelled")
        queue.push(6, lambda: None, "live")
        first.cancel()
        assert queue.pop_before(10).label == "live"


class TestEventQueueCompaction:
    def test_cancelled_debris_compacts(self):
        """Cancelling most of a large heap sheds the dead entries."""
        queue = EventQueue()
        keep = [queue.push(t, lambda: None, "keep") for t in range(0, 50)]
        doomed = [queue.push(t, lambda: None, "doomed")
                  for t in range(50, 250)]
        for event in doomed:
            event.cancel()
        # Compaction ran (possibly several times): debris stays bounded
        # under the threshold instead of accumulating all 200 entries.
        assert queue.cancelled_pending < EventQueue.COMPACT_MIN
        assert queue.entries_pending < len(keep) + EventQueue.COMPACT_MIN
        assert len(queue) == len(keep)
        # And the survivors still pop in order.
        assert [queue.pop().time for _ in range(3)] == [0, 1, 2]

    def test_small_heaps_not_compacted(self):
        """Tiny heaps skip compaction (below COMPACT_MIN debris)."""
        queue = EventQueue()
        events = [queue.push(t, lambda: None) for t in range(10)]
        for event in events[1:]:
            event.cancel()
        assert queue.cancelled_pending == 9
        assert queue.pop().time == 0

    def test_double_cancel_counted_once(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        event.cancel()
        event.cancel()
        assert queue.cancelled_pending == 1
        assert len(queue) == 1

    def test_explicit_compact_keeps_order(self):
        queue = EventQueue()
        events = [queue.push(t, lambda: None) for t in range(20)]
        for event in events[::2]:
            event.cancel()
        queue.compact()
        assert queue.cancelled_pending == 0
        assert [queue.pop().time for _ in range(10)] \
            == list(range(1, 20, 2))


class TestKernel:
    def test_executes_in_order(self, kernel):
        log = []
        kernel.schedule(20, lambda: log.append("b"))
        kernel.schedule(10, lambda: log.append("a"))
        kernel.run_until(100)
        assert log == ["a", "b"]

    def test_clock_advances_to_end(self, kernel):
        kernel.run_until(500)
        assert kernel.now == 500

    def test_event_at_end_time_not_executed(self, kernel):
        log = []
        kernel.schedule(100, lambda: log.append("x"))
        kernel.run_until(100)
        assert log == []
        kernel.run_until(101)
        assert log == ["x"]

    def test_schedule_in_past_rejected(self, kernel):
        kernel.run_until(50)
        with pytest.raises(SimulationError):
            kernel.schedule(49, lambda: None)

    def test_schedule_after(self, kernel):
        seen = []
        kernel.run_until(10)
        kernel.schedule_after(5, lambda: seen.append(kernel.now))
        kernel.run_until(100)
        assert seen == [15]

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(SimulationError):
            kernel.schedule_after(-1, lambda: None)

    def test_events_can_schedule_events(self, kernel):
        log = []

        def chain():
            log.append(kernel.now)
            if kernel.now < 30:
                kernel.schedule_after(10, chain)

        kernel.schedule(10, chain)
        kernel.run_until(100)
        assert log == [10, 20, 30]

    def test_counts_executed_events(self, kernel):
        for time in (1, 2, 3):
            kernel.schedule(time, lambda: None)
        kernel.run_until(10)
        assert kernel.events_executed == 3

    def test_run_to_completion(self, kernel):
        log = []
        kernel.schedule(10, lambda: log.append(1))
        kernel.schedule(20, lambda: log.append(2))
        kernel.run_to_completion()
        assert log == [1, 2]
        assert kernel.now == 20

    def test_run_to_completion_loop_guard(self, kernel):
        def forever():
            kernel.schedule_after(1, forever)

        kernel.schedule(0, forever)
        with pytest.raises(SimulationError):
            kernel.run_to_completion(max_events=100)

    def test_run_until_backwards_rejected(self, kernel):
        kernel.run_until(10)
        with pytest.raises(SimulationError):
            kernel.run_until(5)


class TestPeriodicProcess:
    def test_ticks_every_period(self, kernel):
        seen = []
        process = PeriodicProcess(kernel, 10, lambda now: seen.append(now))
        process.start()
        kernel.run_until(45)
        assert seen == [10, 20, 30, 40]

    def test_aligned_start(self, kernel):
        seen = []
        kernel.run_until(130)
        process = PeriodicProcess(kernel, 100, lambda now: seen.append(now),
                                  align_to_period=True)
        process.start()
        kernel.run_until(500)
        assert seen == [200, 300, 400]

    def test_explicit_first_time(self, kernel):
        seen = []
        process = PeriodicProcess(kernel, 10, lambda now: seen.append(now))
        process.start(first_at=3)
        kernel.run_until(30)
        assert seen == [3, 13, 23]

    def test_stop(self, kernel):
        seen = []
        process = PeriodicProcess(kernel, 10, lambda now: seen.append(now))
        process.start()
        kernel.run_until(25)
        process.stop()
        kernel.run_until(100)
        assert seen == [10, 20]

    def test_restart_after_stop(self, kernel):
        seen = []
        process = PeriodicProcess(kernel, 10, lambda now: seen.append(now))
        process.start()
        kernel.run_until(15)
        process.stop()
        process.start()
        kernel.run_until(40)
        assert seen == [10, 25, 35]

    def test_double_start_rejected(self, kernel):
        process = PeriodicProcess(kernel, 10, lambda now: None)
        process.start()
        with pytest.raises(SimulationError):
            process.start()

    def test_tick_may_stop_itself(self, kernel):
        seen = []
        process = PeriodicProcess(kernel, 10, lambda now: (
            seen.append(now), process.stop()))
        process.start()
        kernel.run_until(100)
        assert seen == [10]

    def test_zero_period_rejected(self, kernel):
        with pytest.raises(SimulationError):
            PeriodicProcess(kernel, 0, lambda now: None)

    def test_counts_ticks(self, kernel):
        process = PeriodicProcess(kernel, 10, lambda now: None)
        process.start()
        kernel.run_until(55)
        assert process.ticks_fired == 5
