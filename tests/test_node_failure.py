"""Failure-injection tests: node failures and recovery."""

import numpy as np
import pytest

from repro.errors import FabricError
from repro.fabric.cluster import ServiceFabricCluster
from repro.fabric.failover import REASON_NODE_FAILURE
from repro.fabric.metrics import CPU_CORES, DISK_GB, NodeCapacities
from repro.fabric.replica import ReplicaRole


def make_cluster(nodes=5, cpu=32.0, disk=1000.0, seed=2):
    return ServiceFabricCluster(
        node_count=nodes,
        capacities=NodeCapacities(cpu_cores=cpu, disk_gb=disk,
                                  memory_gb=128.0),
        plb_rng=np.random.default_rng(seed))


class TestFailNode:
    def test_replicas_evacuated(self):
        cluster = make_cluster()
        cluster.create_service("bc", 4, 2.0, {DISK_GB: 50.0}, now=0)
        victim = cluster.service("bc").replicas[0].node_id
        records = cluster.fail_node(victim, now=100)
        assert records, "expected at least one evacuation"
        assert all(r.reason == REASON_NODE_FAILURE for r in records)
        assert cluster.node(victim).replica_count == 0
        # All four replicas still exist, on distinct live nodes.
        cluster.validate_invariants()
        node_ids = {r.node_id for r in cluster.service("bc").replicas}
        assert victim not in node_ids
        assert len(node_ids) == 4

    def test_primary_loss_promotes_secondary(self):
        cluster = make_cluster()
        record = cluster.create_service("bc", 4, 2.0, {DISK_GB: 30.0},
                                        now=0)
        primary = record.primary
        cluster.fail_node(primary.node_id, now=50)
        primaries = [r for r in record.replicas if r.is_primary]
        assert len(primaries) == 1
        assert primaries[0].replica_id != primary.replica_id

    def test_failed_node_excluded_from_placement(self):
        cluster = make_cluster(nodes=5)
        cluster.fail_node(0, now=0)
        for index in range(4):
            record = cluster.create_service(f"s{index}", 1, 4.0, {},
                                            now=10)
            assert record.replicas[0].node_id != 0

    def test_double_failure_rejected(self):
        cluster = make_cluster()
        cluster.fail_node(0, now=0)
        with pytest.raises(FabricError):
            cluster.fail_node(0, now=10)

    def test_single_replica_downtime_booked(self):
        cluster = make_cluster()
        record = cluster.create_service("gp", 1, 2.0, {DISK_GB: 20.0},
                                        now=0)
        node_id = record.replicas[0].node_id
        records = cluster.fail_node(node_id, now=100)
        assert len(records) == 1
        assert records[0].downtime_seconds > 0

    def test_secondary_loss_invisible(self):
        cluster = make_cluster()
        record = cluster.create_service("bc", 4, 2.0, {DISK_GB: 30.0},
                                        now=0)
        secondary = record.secondaries[0]
        records = cluster.fail_node(secondary.node_id, now=100)
        moved = [r for r in records
                 if r.replica_id == secondary.replica_id]
        assert moved[0].downtime_seconds == 0.0

    def test_restore_makes_node_placeable_again(self):
        cluster = make_cluster(nodes=5)
        cluster.fail_node(0, now=0)
        cluster.restore_node(0)
        # Pack the others so node 0 is the only one with room.
        for index in range(5):
            cluster.create_service(f"fill-{index}", 1, 28.0, {}, now=10)
        assert cluster.node(0).replica_count >= 1


class TestPendingReplicas:
    def make_tight_cluster(self):
        """Two nodes nearly full on disk: evacuation has nowhere to go."""
        cluster = make_cluster(nodes=2, disk=100.0)
        cluster.create_service("a", 1, 2.0, {DISK_GB: 80.0}, now=0)
        cluster.create_service("b", 1, 2.0, {DISK_GB: 80.0}, now=0)
        return cluster

    def test_stranded_replica_goes_pending(self):
        cluster = self.make_tight_cluster()
        victim = cluster.service("a").replicas[0].node_id
        records = cluster.fail_node(victim, now=100)
        assert records == []  # nothing could move
        assert cluster.pending_replicas == 1
        cluster.validate_invariants()  # pending tolerated

    def test_pending_placed_after_capacity_returns(self):
        cluster = self.make_tight_cluster()
        replica_a = cluster.service("a").replicas[0]
        victim = replica_a.node_id
        cluster.fail_node(victim, now=100)
        # Free space: drop the other tenant.
        cluster.drop_service("b")
        cluster.sweep_violations(now=700)
        assert cluster.pending_replicas == 0
        assert replica_a.node_id is not None
        # Outage lasted from the failure until placement.
        record = cluster.failovers[-1]
        assert record.reason == REASON_NODE_FAILURE
        assert record.downtime_seconds >= 600.0

    def test_pending_dropped_service_discarded(self):
        cluster = self.make_tight_cluster()
        victim = cluster.service("a").replicas[0].node_id
        cluster.fail_node(victim, now=100)
        cluster.drop_service("a")
        cluster.sweep_violations(now=400)
        assert cluster.pending_replicas == 0

    def test_listener_notified_on_evacuation(self):
        cluster = make_cluster()
        seen = []
        cluster.add_failover_listener(seen.append)
        cluster.create_service("bc", 4, 2.0, {DISK_GB: 30.0}, now=0)
        victim = cluster.service("bc").replicas[0].node_id
        cluster.fail_node(victim, now=100)
        assert seen
        assert all(r.reason == REASON_NODE_FAILURE for r in seen)
