"""Golden end-to-end chaos regression.

One small benchmark (6 hours, density 1.1) under the fixed "moderate"
fault profile, with every KPI and fault counter pinned to its exact
value. The determinism contract (docs/CHAOS.md) makes exact pinning
legitimate: the run is a pure function of the scenario, so *any*
change in these numbers means either an intentional semantic change
(re-pin the goldens and say so in the commit) or a determinism
regression (fix it).
"""

import pytest

from repro.core.runner import run_scenario
from repro.experiments.scenarios import chaos_scenario, paper_scenario

pytestmark = pytest.mark.chaos

GOLDEN = dict(
    final_reserved_cores=946.0,
    final_disk_gb=40454.80724464085,
    core_utilization=0.853174603174603,
    disk_utilization=0.7054758517829389,
    creation_redirects=0,
    active_databases=219,
    failover_count=0,
    faults_injected=8,
    probes=278,
    retries=1390,
    degraded_intervals=1554,
    naming_unavailable_errors=278,
    naming_stale_reads=1112,
    rpc_reports_lost=1276,
    rpc_reports_delayed=0,
    creates_timed_out=0,
    drops_deferred=0,
    pm_ticks_stalled=0,
    node_crashes_applied=2,
    node_restores=2,
    injected_by_kind=(("control-plane", 1), ("naming-outage", 1),
                      ("naming-stale", 2), ("node-crash", 2),
                      ("rpc-loss", 2)),
    total_gross=1619.9709884679687,
    total_penalty=235.64289128604824,
    total_adjusted=1384.3280971819195,
    penalized_databases=34,
    events_executed=562,
)


@pytest.fixture(scope="module")
def golden_run():
    return run_scenario(chaos_scenario("moderate", density=1.1, days=0.25))


class TestGoldenChaosRun:
    def test_kpis_pinned_exactly(self, golden_run):
        kpis = golden_run.kpis
        assert kpis.final_reserved_cores == GOLDEN["final_reserved_cores"]
        assert kpis.final_disk_gb == GOLDEN["final_disk_gb"]
        assert kpis.core_utilization == GOLDEN["core_utilization"]
        assert kpis.disk_utilization == GOLDEN["disk_utilization"]
        assert kpis.creation_redirects == GOLDEN["creation_redirects"]
        assert kpis.active_databases == GOLDEN["active_databases"]
        assert kpis.failovers.count == GOLDEN["failover_count"]

    def test_fault_counters_pinned_exactly(self, golden_run):
        chaos = golden_run.kpis.chaos
        assert chaos is not None
        for counter in ("faults_injected", "probes", "retries",
                        "degraded_intervals", "naming_unavailable_errors",
                        "naming_stale_reads", "rpc_reports_lost",
                        "rpc_reports_delayed", "creates_timed_out",
                        "drops_deferred", "pm_ticks_stalled",
                        "node_crashes_applied", "node_restores",
                        "injected_by_kind"):
            assert getattr(chaos, counter) == GOLDEN[counter], counter

    def test_degraded_interval_arithmetic_holds(self, golden_run):
        """The roll-up counter is the sum of its per-path parts."""
        chaos = golden_run.kpis.chaos
        assert chaos.degraded_intervals == (
            chaos.naming_unavailable_errors + chaos.rpc_reports_lost
            + chaos.creates_timed_out + chaos.drops_deferred
            + chaos.pm_ticks_stalled)

    def test_revenue_pinned_exactly(self, golden_run):
        revenue = golden_run.revenue
        assert revenue.total_gross == GOLDEN["total_gross"]
        assert revenue.total_penalty == GOLDEN["total_penalty"]
        assert revenue.total_adjusted == GOLDEN["total_adjusted"]
        assert revenue.penalized_databases == GOLDEN["penalized_databases"]

    def test_telemetry_frames_carry_fault_counters(self, golden_run):
        last = golden_run.frames[-1]
        assert last.faults_injected_cumulative == GOLDEN["faults_injected"]
        assert last.chaos_retries_cumulative == GOLDEN["retries"]
        assert last.degraded_intervals_cumulative \
            == GOLDEN["degraded_intervals"]
        # Counters are cumulative, hence monotone across frames.
        injected = [frame.faults_injected_cumulative
                    for frame in golden_run.frames]
        assert injected == sorted(injected)

    def test_event_count_pinned_exactly(self, golden_run):
        assert golden_run.events_executed == GOLDEN["events_executed"]


class TestChaosAgainstBaseline:
    def test_same_scenario_without_chaos_reports_no_chaos_kpis(self):
        baseline = run_scenario(
            paper_scenario(density=1.1, days=0.25, maintenance=False))
        assert baseline.kpis.chaos is None
        assert baseline.frames[-1].faults_injected_cumulative == 0
        assert baseline.frames[-1].degraded_intervals_cumulative == 0
