"""Tests for noisy-neighbor CPU governance (§3.2 / §5.5)."""

import pytest

from repro.core.cpu_model import CpuUsageModel
from repro.core.hourly_schedule import HourlyNormalSchedule
from repro.core.model_base import TotoModelSet
from repro.core.selectors import ALL_DATABASES
from repro.errors import SqlDbError
from repro.sqldb.governance import (
    CpuGovernor,
    GovernanceStats,
    summarize_governors,
)
from repro.units import HOUR
from tests.conftest import SMALL_CAPACITIES, make_ring


class TestGovernor:
    def test_under_limit_untouched(self):
        governor = CpuGovernor(32.0, limit_fraction=0.9)
        usage = {1: 10.0, 2: 8.0}
        assert governor.govern(usage, 300) == usage
        assert governor.stats.throttle_events == 0

    def test_over_limit_throttled_to_limit(self):
        governor = CpuGovernor(32.0, limit_fraction=0.5)  # limit 16
        governed = governor.govern({1: 12.0, 2: 10.0}, 300)
        assert sum(governed.values()) == pytest.approx(16.0)
        assert governor.stats.over_limit_observations == 1

    def test_heaviest_throttled_first(self):
        governor = CpuGovernor(32.0, limit_fraction=0.5,
                               fair_share_cores=0.0)
        governed = governor.govern({1: 14.0, 2: 4.0}, 300)
        # 18 total, 2 excess: all taken from replica 1.
        assert governed[1] == pytest.approx(12.0)
        assert governed[2] == pytest.approx(4.0)

    def test_fair_share_floor(self):
        governor = CpuGovernor(4.0, limit_fraction=0.5,
                               fair_share_cores=1.0)
        governed = governor.govern({1: 3.0, 2: 3.0}, 300)
        # Limit 2 cannot be reached without breaking the 1-core floor;
        # both replicas keep at least their fair share.
        assert governed[1] >= 1.0 and governed[2] >= 1.0

    def test_throttled_core_seconds_accumulate(self):
        governor = CpuGovernor(8.0, limit_fraction=0.5,
                               fair_share_cores=0.0)
        governor.govern({1: 6.0}, 600)  # 2 cores cut for 600 s
        assert governor.stats.throttled_core_seconds == pytest.approx(
            1200.0)

    def test_invalid_parameters(self):
        with pytest.raises(SqlDbError):
            CpuGovernor(0.0)
        with pytest.raises(SqlDbError):
            CpuGovernor(8.0, limit_fraction=0.0)
        with pytest.raises(SqlDbError):
            CpuGovernor(8.0, fair_share_cores=-1.0)

    def test_over_limit_fraction(self):
        stats = GovernanceStats(observations=10, over_limit_observations=3)
        assert stats.over_limit_fraction == pytest.approx(0.3)
        assert GovernanceStats().over_limit_fraction == 0.0

    def test_monitor_mode_records_without_throttling(self):
        governor = CpuGovernor(8.0, limit_fraction=0.5, enforce=False)
        usage = {1: 6.0, 2: 3.0}
        assert governor.govern(usage, 300) == usage
        assert governor.stats.over_limit_observations == 1
        assert governor.stats.throttle_events == 0

    def test_summary(self):
        governors = [CpuGovernor(8.0, limit_fraction=0.5,
                                 fair_share_cores=0.0) for _ in range(2)]
        governors[0].govern({1: 6.0}, 300)
        governors[1].govern({1: 1.0}, 300)
        report = summarize_governors(governors)
        assert report.nodes == 2
        assert report.observations == 2
        assert report.throttle_events == 1
        assert "core-h" in report.row()


class TestRingIntegration:
    def make_governed_ring(self, kernel, rng_registry, utilization):
        # Limit at 60% of 32 cores = 19.2; three 8-core tenants at full
        # utilization (24 cores) overrun it.
        ring = make_ring(kernel, rng_registry, node_count=4,
                         cpu_governance_limit=0.6)
        cpu_model = CpuUsageModel(
            ALL_DATABASES,
            HourlyNormalSchedule.constant(utilization, 0.0),
            secondary_fraction=1.0)
        for rgmanager in ring.rgmanagers:
            rgmanager.install_models(TotoModelSet([cpu_model]), 1)
        # Fill each node's reservations close to capacity.
        for _ in range(12):
            ring.control_plane.create_database("GP_Gen5_8", now=0,
                                               initial_data_gb=10.0)
        ring.start()
        return ring

    def test_hot_tenants_get_throttled(self, kernel, rng_registry):
        ring = self.make_governed_ring(kernel, rng_registry,
                                       utilization=1.0)
        kernel.run_until(2 * HOUR)
        report = summarize_governors(r.governor for r in ring.rgmanagers)
        assert report.raw_over_limit_fraction > 0.5
        assert report.throttle_events > 0
        for rgmanager in ring.rgmanagers:
            if rgmanager.cpu_usage_governed:
                assert rgmanager.node_cpu_usage(governed=True) <= \
                    rgmanager.governor.limit_cores + 1e-6

    def test_idle_tenants_never_throttled(self, kernel, rng_registry):
        ring = self.make_governed_ring(kernel, rng_registry,
                                       utilization=0.10)
        kernel.run_until(2 * HOUR)
        report = summarize_governors(r.governor for r in ring.rgmanagers)
        assert report.raw_over_limit_fraction == 0.0
        assert report.throttle_events == 0

    def test_governance_disabled_by_default(self, kernel, rng_registry):
        ring = make_ring(kernel, rng_registry)
        assert all(r.governor is None for r in ring.rgmanagers)
