"""Tests for the Elastic Pools extension (§5.5 future work)."""

import pytest

from repro.core.model_base import TotoModelSet
from repro.errors import SqlDbError
from repro.fabric.metrics import DISK_GB
from repro.sqldb.editions import Edition
from repro.sqldb.elastic_pool import ElasticPoolManager
from repro.sqldb.rgmanager import persisted_load_key
from repro.units import HOUR
from tests.conftest import make_flat_disk_model, make_ring


@pytest.fixture
def ring(kernel, rng_registry):
    return make_ring(kernel, rng_registry, node_count=6)


@pytest.fixture
def manager(ring):
    return ElasticPoolManager(ring.control_plane)


class TestPoolLifecycle:
    def test_create_pool_places_service(self, ring, manager):
        pool = manager.create_pool("BC_Gen5_8", now=0)
        assert ring.cluster.has_service(pool.pool_id)
        assert ring.cluster.reserved_cores() == 32.0  # 8 cores x 4

    def test_pool_starts_empty(self, manager):
        pool = manager.create_pool("GP_Gen5_4", now=0)
        assert pool.active_members == []
        assert pool.member_data_gb == 0.0

    def test_drop_pool_releases_everything(self, ring, manager):
        pool = manager.create_pool("GP_Gen5_4", now=0)
        manager.add_member(pool.pool_id, "orders", 20.0, now=0)
        manager.drop_pool(pool.pool_id, now=HOUR)
        assert ring.cluster.reserved_cores() == 0.0
        with pytest.raises(SqlDbError):
            manager.pool(pool.pool_id)

    def test_unknown_pool(self, manager):
        with pytest.raises(SqlDbError):
            manager.pool("pool-nope")


class TestMembership:
    def test_add_member_grows_billed_data(self, manager):
        pool = manager.create_pool("GP_Gen5_4", now=0)
        before = pool.database.initial_data_gb
        manager.add_member(pool.pool_id, "orders", 25.0, now=0)
        assert pool.database.initial_data_gb == pytest.approx(before + 25.0)
        assert pool.member_data_gb == 25.0

    def test_duplicate_member_rejected(self, manager):
        pool = manager.create_pool("GP_Gen5_4", now=0)
        manager.add_member(pool.pool_id, "orders", 5.0, now=0)
        with pytest.raises(SqlDbError):
            manager.add_member(pool.pool_id, "orders", 5.0, now=0)

    def test_capacity_headroom_enforced(self, manager):
        pool = manager.create_pool("BC_Gen5_2", now=0)
        cap = pool.database.slo.max_data_gb
        with pytest.raises(SqlDbError):
            manager.add_member(pool.pool_id, "huge", cap, now=0)

    def test_remove_member(self, manager):
        pool = manager.create_pool("GP_Gen5_4", now=0)
        manager.add_member(pool.pool_id, "orders", 25.0, now=0)
        manager.remove_member(pool.pool_id, "orders", now=HOUR)
        assert pool.active_members == []
        member = pool.members[0]
        assert member.removed_at == HOUR

    def test_remove_unknown_member(self, manager):
        pool = manager.create_pool("GP_Gen5_4", now=0)
        with pytest.raises(SqlDbError):
            manager.remove_member(pool.pool_id, "ghost", now=0)

    def test_move_member_between_pools(self, manager):
        a = manager.create_pool("GP_Gen5_4", now=0)
        b = manager.create_pool("GP_Gen5_8", now=0)
        manager.add_member(a.pool_id, "orders", 25.0, now=0)
        manager.move_member(a.pool_id, b.pool_id, "orders", now=HOUR)
        assert a.active_members == []
        assert b.member(member_name := "orders").data_gb == 25.0
        assert b.member(member_name).added_at == HOUR


class TestDiskIntegration:
    def test_bc_pool_membership_updates_persisted_disk(self, ring, manager,
                                                       kernel):
        """Once Toto governs the pool's disk, membership changes land in
        the Naming Service and flow to the PLB on the next report."""
        model = make_flat_disk_model(Edition.PREMIUM_BC, mu=0.0,
                                     rate_heterogeneity=0.0)
        for rgmanager in ring.rgmanagers:
            rgmanager.install_models(TotoModelSet([model]), 1)
        ring.start()
        pool = manager.create_pool("BC_Gen5_8", now=0)
        kernel.run_until(10 * 60)  # let the primary persist its load

        key = persisted_load_key(pool.pool_id, DISK_GB)
        before = ring.cluster.naming.get(key)
        manager.add_member(pool.pool_id, "warehouse", 200.0,
                           now=kernel.now)
        assert ring.cluster.naming.get(key) == pytest.approx(before + 200.0)

        kernel.run_until(kernel.now + 10 * 60)
        primary = ring.cluster.service(pool.pool_id).primary
        assert primary.load(DISK_GB) == pytest.approx(before + 200.0)

    def test_gp_pool_membership_bills_only(self, ring, manager):
        pool = manager.create_pool("GP_Gen5_4", now=0)
        manager.add_member(pool.pool_id, "orders", 25.0, now=0)
        # Remote-store pools keep data off the local disk.
        replica = ring.cluster.service(pool.pool_id).replicas[0]
        assert replica.load(DISK_GB) < 25.0

    def test_pool_revenue_reflects_membership(self, ring, manager):
        from repro.revenue.adjusted import database_revenue
        pool = manager.create_pool("GP_Gen5_4", now=0)
        empty = database_revenue(pool.database, now=HOUR)
        manager.add_member(pool.pool_id, "orders", 100.0, now=0)
        loaded = database_revenue(pool.database, now=HOUR)
        assert loaded.storage_revenue > empty.storage_revenue
        assert loaded.compute_revenue == empty.compute_revenue
