"""Tests for the simulated-annealing minimizer."""

import numpy as np
import pytest

from repro.fabric.annealing import anneal


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestAnneal:
    def test_finds_minimum_of_quadratic(self, rng):
        result = anneal(
            initial=10.0,
            energy=lambda x: (x - 3.0) ** 2,
            neighbour=lambda x, r: x + r.normal(0, 1.0),
            rng=rng,
            iterations=500,
        )
        assert result.state == pytest.approx(3.0, abs=0.5)

    def test_returns_best_not_last(self, rng):
        # With huge temperature the walk accepts uphill moves freely,
        # but the result must still be the best state ever seen.
        visited = []

        def energy(x):
            visited.append(x)
            return abs(x)

        result = anneal(0.0, energy,
                        lambda x, r: x + r.normal(0, 5.0), rng,
                        iterations=50, initial_temperature=1e9,
                        cooling=1.0)
        assert result.energy == min(abs(v) for v in visited)

    def test_zero_iterations_returns_initial(self, rng):
        result = anneal(42.0, lambda x: x, lambda x, r: x - 1, rng,
                        iterations=0)
        assert result.state == 42.0
        assert result.accepted_moves == 0

    def test_deterministic_given_seed(self):
        def run(seed):
            return anneal(0.0, lambda x: (x - 1) ** 2,
                          lambda x, r: x + r.normal(0, 0.5),
                          np.random.default_rng(seed), iterations=100)
        assert run(5).state == run(5).state
        assert run(5).energy == run(5).energy

    def test_discrete_state_space(self, rng):
        # Minimize over permutations-ish: pick subsets of {0..9} of size 2
        # minimizing the sum.
        def neighbour(state, r):
            state = list(state)
            state[int(r.integers(2))] = int(r.integers(10))
            if state[0] == state[1]:
                state[1] = (state[1] + 1) % 10
            return tuple(state)

        result = anneal((9, 8), lambda s: sum(s), neighbour, rng,
                        iterations=300)
        assert sum(result.state) <= 3

    def test_downhill_always_accepted(self, rng):
        result = anneal(100.0, lambda x: x, lambda x, r: x - 1.0, rng,
                        iterations=10, initial_temperature=1e-9)
        assert result.state == 90.0
        assert result.accepted_moves == 10
