"""Tests for the cluster facade."""

import numpy as np
import pytest

from repro.errors import FabricError, UnknownReplicaError
from repro.fabric.cluster import ServiceFabricCluster
from repro.fabric.metrics import CPU_CORES, DISK_GB, NodeCapacities


def make_cluster(node_count=4, cpu=32.0, disk=1000.0, seed=1):
    return ServiceFabricCluster(
        node_count=node_count,
        capacities=NodeCapacities(cpu_cores=cpu, disk_gb=disk,
                                  memory_gb=128.0),
        plb_rng=np.random.default_rng(seed))


class TestLifecycle:
    def test_create_registers_service(self):
        cluster = make_cluster()
        cluster.create_service("db-1", 1, 2.0, {}, now=0)
        assert cluster.has_service("db-1")
        assert cluster.service_count == 1

    def test_duplicate_service_rejected(self):
        cluster = make_cluster()
        cluster.create_service("db-1", 1, 2.0, {}, now=0)
        with pytest.raises(FabricError):
            cluster.create_service("db-1", 1, 2.0, {}, now=0)

    def test_zero_replicas_rejected(self):
        cluster = make_cluster()
        with pytest.raises(FabricError):
            cluster.create_service("db-1", 0, 2.0, {}, now=0)

    def test_drop_releases_capacity(self):
        cluster = make_cluster()
        cluster.create_service("db-1", 4, 4.0, {DISK_GB: 50.0}, now=0)
        assert cluster.reserved_cores() == 16.0
        cluster.drop_service("db-1")
        assert cluster.reserved_cores() == 0.0
        assert cluster.disk_usage_gb() == 0.0
        assert not cluster.has_service("db-1")

    def test_drop_unknown_rejected(self):
        with pytest.raises(FabricError):
            make_cluster().drop_service("nope")

    def test_replica_lookup(self):
        cluster = make_cluster()
        record = cluster.create_service("db-1", 2, 2.0, {}, now=0)
        replica = record.replicas[0]
        assert cluster.replica(replica.replica_id) is replica
        with pytest.raises(UnknownReplicaError):
            cluster.replica(999)

    def test_replica_ids_unique_across_services(self):
        cluster = make_cluster()
        cluster.create_service("a", 2, 2.0, {}, now=0)
        cluster.create_service("b", 2, 2.0, {}, now=0)
        ids = [replica.replica_id for replica in cluster.replicas()]
        assert len(ids) == len(set(ids)) == 4


class TestAggregates:
    def test_reserved_cores_sums_replicas(self):
        cluster = make_cluster()
        cluster.create_service("bc", 4, 6.0, {}, now=0)
        assert cluster.reserved_cores() == 24.0

    def test_free_capacity(self):
        cluster = make_cluster(node_count=2, cpu=10.0)
        cluster.create_service("a", 1, 4.0, {}, now=0)
        assert cluster.free_capacity(CPU_CORES) == pytest.approx(16.0)

    def test_can_fit_probe_has_no_side_effects(self):
        cluster = make_cluster()
        before = cluster.reserved_cores()
        assert cluster.can_fit_service(4, {CPU_CORES: 2.0})
        assert not cluster.can_fit_service(4, {CPU_CORES: 100.0})
        assert cluster.reserved_cores() == before

    def test_total_capacity(self):
        cluster = make_cluster(node_count=3, cpu=32.0)
        assert cluster.total_capacity(CPU_CORES) == 96.0


class TestFailoverListeners:
    def test_listener_called_on_sweep(self):
        cluster = make_cluster(node_count=2, disk=100.0)
        seen = []
        cluster.add_failover_listener(seen.append)
        a = cluster.create_service("a", 1, 2.0, {DISK_GB: 60.0}, now=0)
        cluster.create_service("b", 1, 2.0, {DISK_GB: 30.0}, now=0)
        cluster.report_load(a.replicas[0], {DISK_GB: 95.0})
        # find whichever node violates and confirm listener fires when
        # a move happens
        records = cluster.sweep_violations(now=3)
        assert seen == records

    def test_report_load_unplaced_rejected(self):
        cluster = make_cluster()
        record = cluster.create_service("a", 1, 2.0, {}, now=0)
        replica = record.replicas[0]
        cluster.node(replica.node_id).detach(replica)
        with pytest.raises(UnknownReplicaError):
            cluster.report_load(replica, {DISK_GB: 5.0})


class TestPromotion:
    def test_promote_prefers_least_loaded_node(self):
        cluster = make_cluster(node_count=4, cpu=32.0)
        record = cluster.create_service("bc", 3, 2.0, {}, now=0)
        # Load up one secondary's node heavily.
        secondaries = record.secondaries
        heavy = secondaries[0]
        cluster.create_service("filler", 1, 20.0, {}, now=0)
        # Move filler onto heavy's node if not already there.
        filler = cluster.service("filler").replicas[0]
        if filler.node_id != heavy.node_id:
            cluster.node(filler.node_id).detach(filler)
            cluster.node(heavy.node_id).attach(filler)
        old_primary = record.primary
        cluster.promote_new_primary("bc",
                                    exclude_replica=old_primary.replica_id)
        # Two primaries now exist (old not demoted by this call) — the
        # caller (PLB._move) demotes; emulate and validate.
        promoted = [replica for replica in record.replicas
                    if replica.is_primary
                    and replica.replica_id != old_primary.replica_id]
        assert len(promoted) == 1
        assert promoted[0].node_id != heavy.node_id


class TestInvariantChecker:
    def test_detects_aggregate_drift(self):
        cluster = make_cluster()
        record = cluster.create_service("a", 1, 2.0, {DISK_GB: 10.0}, now=0)
        node = cluster.node(record.replicas[0].node_id)
        node._loads[DISK_GB] += 5.0  # corrupt deliberately
        with pytest.raises(FabricError):
            cluster.validate_invariants()

    def test_detects_double_primary(self):
        cluster = make_cluster()
        record = cluster.create_service("a", 2, 2.0, {}, now=0)
        from repro.fabric.replica import ReplicaRole
        record.replicas[1].role = ReplicaRole.PRIMARY
        with pytest.raises(FabricError):
            cluster.validate_invariants()
