"""Docs-code consistency: the documentation's claims stay true.

These tests keep README/DESIGN/EXPERIMENTS honest as the code evolves:
every example the README lists exists (and vice versa), every
benchmark file is indexed in the docs, and the per-experiment index
references real modules.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
README = (REPO / "README.md").read_text()
DESIGN = (REPO / "DESIGN.md").read_text()
EXPERIMENTS = (REPO / "EXPERIMENTS.md").read_text()
CHAOS_DOC = (REPO / "docs" / "CHAOS.md").read_text()
OBS_DOC = (REPO / "docs" / "OBSERVABILITY.md").read_text()
FLEET_DOC = (REPO / "docs" / "FLEET.md").read_text()
ORCH_DOC = (REPO / "docs" / "ORCHESTRATORS.md").read_text()


class TestExamples:
    def test_every_example_listed_in_readme(self):
        for path in sorted((REPO / "examples").glob("*.py")):
            assert f"examples/{path.name}" in README, \
                f"README does not mention {path.name}"

    def test_every_readme_example_exists(self):
        for name in re.findall(r"examples/(\w+\.py)", README):
            assert (REPO / "examples" / name).exists(), \
                f"README references missing examples/{name}"

    def test_examples_have_docstrings_and_main(self):
        for path in sorted((REPO / "examples").glob("*.py")):
            source = path.read_text()
            assert source.lstrip().startswith(("#!", '"""')), path.name
            assert 'if __name__ == "__main__":' in source, path.name


class TestBenchmarks:
    def test_every_bench_indexed_in_docs(self):
        for path in sorted((REPO / "benchmarks").glob("bench_*.py")):
            reference = f"benchmarks/{path.name}"
            assert reference in DESIGN or reference in EXPERIMENTS, \
                f"{reference} not indexed in DESIGN.md or EXPERIMENTS.md"

    def test_every_indexed_bench_exists(self):
        for document in (DESIGN, EXPERIMENTS):
            for name in re.findall(r"benchmarks/(bench_\w+\.py)",
                                   document):
                assert (REPO / "benchmarks" / name).exists(), \
                    f"docs reference missing benchmarks/{name}"

    def test_paper_figures_all_covered(self):
        """Every evaluation figure/table has a bench file."""
        expected = {"fig02", "fig03", "fig06", "fig07", "fig08", "fig09",
                    "fig10", "fig11", "fig12", "fig13", "fig14",
                    "table1", "table2", "table3"}
        present = {match
                   for path in (REPO / "benchmarks").glob("bench_*.py")
                   for match in re.findall(r"(fig\d+|table\d+)",
                                           path.name)}
        assert expected <= present


class TestChaosDoc:
    def test_readme_and_experiments_cover_chaos(self):
        assert "docs/CHAOS.md" in README
        assert "--chaos" in README
        assert "--chaos" in EXPERIMENTS

    def test_every_fault_kind_documented(self):
        from repro.chaos import FaultKind
        for kind in FaultKind:
            assert f"`{kind.value}`" in CHAOS_DOC, \
                f"docs/CHAOS.md does not document fault kind {kind.value}"

    def test_documented_profiles_match_code(self):
        from repro.experiments.scenarios import CHAOS_PROFILES
        for name in CHAOS_PROFILES:
            assert f"`{name}`" in CHAOS_DOC, \
                f"docs/CHAOS.md does not mention profile {name}"

    def test_chaos_telemetry_counters_documented(self):
        for counter in ("faults_injected", "retries", "degraded_intervals"):
            assert counter in CHAOS_DOC

    def test_static_analysis_doc_covers_tl009(self):
        doc = (REPO / "docs" / "STATIC_ANALYSIS.md").read_text()
        assert "TL009" in doc
        assert "repro.chaos" in doc


class TestStaticAnalysisDoc:
    DOC = (REPO / "docs" / "STATIC_ANALYSIS.md").read_text()

    def test_every_rule_has_a_section(self):
        from repro.analysis import all_rules
        for rule in all_rules():
            assert f"### {rule.code} — " in self.DOC, \
                f"docs/STATIC_ANALYSIS.md has no section for {rule.code}"

    def test_detsan_and_ratchet_are_documented(self):
        assert "--detsan" in self.DOC
        assert "DetSan" in self.DOC
        assert "--write-baseline" in self.DOC
        assert "totolint-baseline.json" in self.DOC
        assert "substream=" in self.DOC
        assert "--cache" in self.DOC
        assert "SARIF" in self.DOC

    def test_readme_mentions_the_runtime_half(self):
        assert "--detsan" in README
        assert "--perfsan" in README
        assert "--floatsan" in README
        assert "TL001–TL014" in README
        assert "TL020–TL024" in README
        assert "TL030–TL034" in README

    def test_documented_rule_ids_match_registered_ones(self):
        from repro.analysis import all_rules
        registered = {rule.code for rule in all_rules()}
        documented = set(re.findall(r"### (TL\d+)", self.DOC))
        assert documented == registered, \
            "docs/STATIC_ANALYSIS.md sections out of sync with the registry"

    def test_perf_tier_and_perfsan_are_documented(self):
        assert "--perfsan" in self.DOC
        assert "PerfSan" in self.DOC
        assert "fleet-scale" in self.DOC
        assert "--select" in self.DOC
        assert "--ignore" in self.DOC

    def test_committed_baseline_is_valid_and_stays_burned_down(self):
        # The perf-tier burn-down finished (PR 9); the ratchet starts
        # clean, so any future entry is a deliberate, reviewed parking
        # decision — and determinism findings must never be parked.
        import json
        payload = json.loads(
            (REPO / "totolint-baseline.json").read_text())
        assert payload["version"] == 1
        assert payload["entries"] == [], \
            "the ratchet was burned down to zero; fix findings instead " \
            "of re-growing the baseline"


class TestNumericDoc:
    DOC = (REPO / "docs" / "STATIC_ANALYSIS.md").read_text()

    def test_numeric_tier_and_floatsan_are_documented(self):
        assert "--floatsan" in self.DOC
        assert "FloatSan" in self.DOC
        assert "merge-fn" in self.DOC
        assert "canonical-json" in self.DOC
        assert "merge-fn=insensitive" in self.DOC

    def test_every_numeric_rule_has_a_section(self):
        from repro.analysis.numeric_rules import NUMERIC_TIER
        for code in NUMERIC_TIER:
            assert f"### {code} — " in self.DOC, \
                f"docs/STATIC_ANALYSIS.md has no section for {code}"

    def test_doc_spec_keys_match_floatsan(self):
        # The documented spec-order keys are FloatSan's actual probe
        # order, not an approximation of it.
        from repro.analysis.floatsan import SPEC_KEYS
        for key in SPEC_KEYS:
            assert f"`{key}`" in self.DOC, \
                f"docs/STATIC_ANALYSIS.md misses spec key {key}"

    def test_doc_kpi_aggregates_match_the_rule(self):
        from repro.analysis.numeric_rules import _KPI_AGGREGATES
        for name in _KPI_AGGREGATES:
            assert name in self.DOC, \
                f"docs/STATIC_ANALYSIS.md misses KPI aggregate {name}"

    def test_annotated_merge_fns_exist_and_are_ordered(self):
        from repro.analysis import merge_registry
        registry = merge_registry([REPO / "src" / "repro"])
        qualnames = {qualname for _, qualname in registry}
        assert qualnames == {"merge_summaries", "merge_frames",
                             "merge_backend_summaries",
                             "adjusted_revenue_report"}
        assert set(registry.values()) == {"ordered"}


class TestObsDoc:
    def test_readme_and_experiments_cover_obs(self):
        assert "docs/OBSERVABILITY.md" in README
        for flag in ("--trace", "--metrics", "--profile", "--obs-dir"):
            assert flag in README, f"README does not mention {flag}"
            assert flag in OBS_DOC, \
                f"docs/OBSERVABILITY.md does not mention {flag}"
        assert "--metrics" in EXPERIMENTS

    def test_every_artifact_filename_documented(self):
        from repro.obs.export import (
            MANIFEST_FILENAME,
            METRICS_JSONL_FILENAME,
            METRICS_PROM_FILENAME,
            PROFILE_FILENAME,
            TRACE_FILENAME,
        )
        for name in (TRACE_FILENAME, METRICS_JSONL_FILENAME,
                     METRICS_PROM_FILENAME, PROFILE_FILENAME,
                     MANIFEST_FILENAME):
            assert name in OBS_DOC, \
                f"docs/OBSERVABILITY.md does not document {name}"

    def test_every_run_metric_documented(self):
        from repro.obs import RUN_METRIC_NAMES
        for name in RUN_METRIC_NAMES:
            assert f"`{name}`" in OBS_DOC, \
                f"docs/OBSERVABILITY.md does not document metric {name}"

    def test_trace_schema_fields_documented(self):
        for field in ("t_sched", "t_fire", "parent", "label", "seq"):
            assert f"`{field}`" in OBS_DOC, \
                f"docs/OBSERVABILITY.md does not document field {field}"

    def test_determinism_contract_documented(self):
        assert "TL014" in OBS_DOC
        assert "byte-identical" in OBS_DOC
        assert "add_frame_listener" in OBS_DOC
        assert "KernelObserver" in OBS_DOC

    def test_chaos_mark_labels_match_code(self):
        import re as _re
        injector_source = (REPO / "src" / "repro" / "chaos"
                           / "injector.py").read_text()
        for label in _re.findall(r'_mark\(f?"([a-z-]+)', injector_source):
            assert label in OBS_DOC, \
                f"docs/OBSERVABILITY.md misses chaos mark label {label}"


class TestFleetDoc:
    def test_readme_and_experiments_cover_fleet(self):
        assert "docs/FLEET.md" in README
        assert "FleetDensityStudy" in README
        assert "docs/FLEET.md" in EXPERIMENTS
        assert "FleetDensityStudy" in EXPERIMENTS

    def test_fleet_api_names_documented(self):
        for name in ("FleetTopology", "ClusterTemplate", "run_fleet",
                     "ClusterSummary", "fleet_digest", "SweepExecutor"):
            assert name in FLEET_DOC, \
                f"docs/FLEET.md does not mention {name}"

    def test_fleet_marker_documented(self):
        assert "-m fleet" in FLEET_DOC
        assert "-m fleet" in README

    def test_fleet_metric_names_match_code(self):
        runner_source = (REPO / "src" / "repro" / "fleet"
                         / "runner.py").read_text()
        names = set(re.findall(r'"(toto_fleet_\w+)"', runner_source))
        assert names, "expected toto_fleet_* metrics in fleet/runner.py"
        for name in sorted(names):
            assert f"`{name}`" in FLEET_DOC, \
                f"docs/FLEET.md does not document metric {name}"

    def test_columnar_escape_hatch_documented(self):
        assert "TOTO_OBJECT_STATE" in FLEET_DOC
        assert "TOTO_OBJECT_STATE" in README

    def test_template_fields_documented(self):
        import dataclasses
        from repro.fleet import ClusterTemplate
        for field in dataclasses.fields(ClusterTemplate):
            assert f"`{field.name}`" in FLEET_DOC, \
                f"docs/FLEET.md table misses template field {field.name}"


class TestOrchestratorDoc:
    def test_readme_and_experiments_cover_backends(self):
        assert "docs/ORCHESTRATORS.md" in README
        assert "--backend" in README
        assert "docs/ORCHESTRATORS.md" in EXPERIMENTS
        assert "BackendComparisonStudy" in EXPERIMENTS

    def test_backend_api_names_documented(self):
        for name in ("OrchestratorBackend", "backend_names",
                     "create_backend", "register_backend",
                     "KubernetesBackend", "ResourceSpec",
                     "PlacementAndLoadBalancer", "bootstrap_spill",
                     "BackendComparisonStudy", "backend_digest"):
            assert name in ORCH_DOC, \
                f"docs/ORCHESTRATORS.md does not mention {name}"

    def test_every_registered_backend_documented(self):
        from repro.fabric.backend import backend_names
        for name in backend_names():
            assert f"`{name}`" in ORCH_DOC, \
                f"docs/ORCHESTRATORS.md does not document backend {name}"

    def test_endpoints_prefix_matches_code(self):
        from repro.fabric.k8s import ENDPOINTS_PREFIX
        assert ENDPOINTS_PREFIX == "endpoints/"
        assert "endpoints/" in ORCH_DOC

    def test_cli_flag_documented_and_wired(self):
        assert "--backend" in ORCH_DOC
        cli_source = (REPO / "src" / "repro" / "cli.py").read_text()
        assert '"--backend"' in cli_source

    def test_comparison_metric_stems_match_code(self):
        fleet_source = (REPO / "src" / "repro" / "experiments"
                        / "fleet.py").read_text()
        assert 'f"toto_backend_{backend}"' in fleet_source
        assert "toto_backend_<name>_*" in ORCH_DOC
        for suffix in ("_reserved_cores", "_failover_cores",
                       "_adjusted_revenue", "_redirects_total",
                       "_capacity_failovers_total"):
            assert suffix in ORCH_DOC, \
                f"docs/ORCHESTRATORS.md misses metric suffix {suffix}"

    def test_conformance_suite_referenced(self):
        assert "tests/test_backend_conformance.py" in ORCH_DOC
        assert (REPO / "tests" / "test_backend_conformance.py").exists()

    def test_fleet_doc_cross_references(self):
        assert "docs/ORCHESTRATORS.md" in FLEET_DOC


class TestDesignIndex:
    def test_referenced_modules_exist(self):
        for module in re.findall(r"`repro\.([\w.]+)`", DESIGN):
            path = REPO / "src" / "repro" / (module.replace(".", "/"))
            assert (path.with_suffix(".py").exists()
                    or (path / "__init__.py").exists()), \
                f"DESIGN.md references missing module repro.{module}"

    def test_experiments_regeneration_command_present(self):
        assert "pytest benchmarks/ --benchmark-only" in EXPERIMENTS

    def test_paper_identity_check_present(self):
        assert "Moeller" in DESIGN
        assert "SIGMOD 2021" in DESIGN
