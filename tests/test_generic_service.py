"""Toto's generality: a custom ResourceModel on a non-SQL service.

Backs the paper's closing claim that the framework "applies to any
cloud service that leverages cluster orchestration": a user-defined
model plugged into TotoModelSet drives a memory metric, and the same
PLB governs memory capacity violations.
"""

import numpy as np
import pytest

from repro.core.model_base import ModelContext, ResourceModel, TotoModelSet
from repro.core.selectors import ALL_DATABASES
from repro.fabric.cluster import ServiceFabricCluster
from repro.fabric.metrics import MEMORY_GB, NodeCapacities


class ConstantMemoryModel(ResourceModel):
    """Simplest possible custom model: a fixed working set."""

    metric = MEMORY_GB
    persisted = False
    selector = ALL_DATABASES

    def __init__(self, gb: float) -> None:
        self.gb = gb

    def kind(self) -> str:
        return "ConstantMemoryModel"

    def initial_value(self, context: ModelContext) -> float:
        return self.gb

    def next_value(self, context: ModelContext) -> float:
        return self.gb


class FakePod:
    def __init__(self, pod_id: str) -> None:
        self.db_id = pod_id


def make_cluster(nodes=3, memory=32.0):
    return ServiceFabricCluster(
        node_count=nodes,
        capacities=NodeCapacities(cpu_cores=16, disk_gb=256,
                                  memory_gb=memory),
        plb_rng=np.random.default_rng(5))


class TestCustomModel:
    def test_model_set_accepts_custom_subclass(self):
        model_set = TotoModelSet([ConstantMemoryModel(4.0)])
        assert model_set.find(MEMORY_GB, FakePod("p")) is not None

    def test_custom_model_drives_reports(self):
        cluster = make_cluster()
        record = cluster.create_service("pod-0", 1, 2.0,
                                        {MEMORY_GB: 1.0}, now=0)
        model = TotoModelSet([ConstantMemoryModel(9.0)]) \
            .find(MEMORY_GB, FakePod("pod-0"))
        replica = record.replicas[0]
        value = model.next_value(ModelContext(
            now=300, interval_seconds=300, database=FakePod("pod-0"),
            is_primary=True, previous_value=1.0,
            rng=np.random.default_rng(0)))
        cluster.report_load(replica, {MEMORY_GB: value})
        assert cluster.nodes[replica.node_id].load(MEMORY_GB) == 9.0

    def test_plb_governs_memory_violations(self):
        cluster = make_cluster(nodes=3, memory=32.0)
        replicas = []
        for index in range(3):
            record = cluster.create_service(f"pod-{index}", 1, 2.0,
                                            {MEMORY_GB: 10.0}, now=0)
            replicas.append(record.replicas[0])
        # Blow one pod's working set past its node's memory capacity
        # headroom: two pods at 10 + one at 25 = violation wherever two
        # land together... force the violation explicitly instead.
        hot = replicas[0]
        cluster.report_load(hot, {MEMORY_GB: 40.0})
        node = cluster.nodes[hot.node_id]
        assert node.violates(MEMORY_GB)
        records = cluster.plb.fix_violations(now=300, cluster=cluster,
                                             metric=MEMORY_GB)
        # The 40 GB pod can't fit anywhere (32 GB nodes), but any
        # co-tenant moves out; either way the machinery ran cleanly.
        assert all(record.metric == MEMORY_GB for record in records)
        cluster.validate_invariants()

    def test_memory_violation_resolved_when_possible(self):
        cluster = make_cluster(nodes=3, memory=32.0)
        a = cluster.create_service("a", 1, 2.0, {MEMORY_GB: 20.0}, now=0)
        b = cluster.create_service("b", 1, 2.0, {MEMORY_GB: 20.0}, now=0)
        # Co-locate both, creating a 40 > 32 violation.
        replica_b = b.replicas[0]
        if replica_b.node_id != a.replicas[0].node_id:
            cluster.nodes[replica_b.node_id].detach(replica_b)
            cluster.nodes[a.replicas[0].node_id].attach(replica_b)
        assert cluster.nodes[a.replicas[0].node_id].violates(MEMORY_GB)
        records = cluster.plb.fix_violations(now=300, cluster=cluster,
                                             metric=MEMORY_GB)
        assert len(records) == 1
        assert not cluster.nodes[a.replicas[0].node_id].violates(MEMORY_GB)
