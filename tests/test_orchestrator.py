"""Tests for Toto's orchestrator: XML publication and the 15-min refresh."""

import pytest

from repro.core.orchestrator import MODEL_XML_KEY, TotoOrchestrator
from repro.core.model_xml import TotoModelDocument
from repro.sqldb.editions import Edition
from repro.units import MINUTE
from tests.conftest import make_flat_disk_model, make_ring


@pytest.fixture
def ring(kernel, rng_registry):
    return make_ring(kernel, rng_registry, node_count=3)


@pytest.fixture
def orchestrator(kernel, ring):
    return TotoOrchestrator(kernel, ring)


def make_document(mu=1.0):
    return TotoModelDocument(resource_models=[
        make_flat_disk_model(Edition.PREMIUM_BC, mu=mu,
                             rate_heterogeneity=0.0)])


class TestPublication:
    def test_publish_writes_xml(self, orchestrator, ring):
        version = orchestrator.publish_models(make_document())
        assert version == 1
        assert ring.cluster.naming.exists(MODEL_XML_KEY)

    def test_publish_bumps_version(self, orchestrator):
        orchestrator.publish_models(make_document())
        assert orchestrator.publish_models(make_document(mu=2.0)) == 2

    def test_current_document_roundtrip(self, orchestrator):
        orchestrator.publish_models(make_document(mu=3.0))
        document = orchestrator.current_document()
        assert len(document.resource_models) == 1

    def test_current_document_none_before_publish(self, orchestrator):
        assert orchestrator.current_document() is None

    def test_propagate_now_installs_everywhere(self, orchestrator, ring):
        orchestrator.publish_models(make_document(), propagate_now=True)
        for rgmanager in ring.rgmanagers:
            assert rgmanager.model_set is not None
            assert rgmanager.model_version == 1

    def test_clear_models(self, orchestrator, ring):
        orchestrator.publish_models(make_document(), propagate_now=True)
        orchestrator.clear_models(propagate_now=True)
        for rgmanager in ring.rgmanagers:
            assert rgmanager.model_set is None
            assert rgmanager.model_version == 0


class TestRefreshLoop:
    def test_nodes_pick_up_xml_within_refresh_interval(
            self, kernel, ring, orchestrator):
        orchestrator.start()
        orchestrator.publish_models(make_document())
        # Not yet visible...
        assert all(r.model_set is None for r in ring.rgmanagers)
        kernel.run_until(16 * MINUTE)
        assert all(r.model_set is not None for r in ring.rgmanagers)

    def test_update_propagates_within_interval(self, kernel, ring,
                                               orchestrator):
        orchestrator.start()
        orchestrator.publish_models(make_document(), propagate_now=True)
        orchestrator.publish_models(make_document(mu=9.0))
        kernel.run_until(kernel.now + 16 * MINUTE)
        assert all(r.model_version == 2 for r in ring.rgmanagers)

    def test_refresh_skips_parse_when_unchanged(self, kernel, ring,
                                                orchestrator):
        orchestrator.start()
        orchestrator.publish_models(make_document(), propagate_now=True)
        naming = ring.cluster.naming
        reads_after_install = naming.reads
        kernel.run_until(kernel.now + 65 * MINUTE)
        # 4 refresh rounds x 3 nodes: version checks don't read the
        # blob, so no further blob reads happened.
        assert naming.reads == reads_after_install

    def test_republish_after_clear_propagates(self, kernel, ring,
                                              orchestrator):
        """Regression: clearing the blob and publishing again must not
        reuse an old version number, or nodes holding the stale version
        would silently skip the new models (found by the Naming Service
        property test)."""
        orchestrator.start()
        orchestrator.publish_models(make_document(mu=1.0),
                                    propagate_now=True)
        first_version = ring.rgmanagers[0].model_version
        orchestrator.clear_models(propagate_now=True)
        assert ring.rgmanagers[0].model_set is None
        orchestrator.publish_models(make_document(mu=9.0))
        kernel.run_until(kernel.now + 16 * MINUTE)
        for rgmanager in ring.rgmanagers:
            assert rgmanager.model_set is not None
            assert rgmanager.model_version > first_version

    def test_stop_halts_refresh(self, kernel, ring, orchestrator):
        orchestrator.start()
        orchestrator.stop()
        orchestrator.publish_models(make_document())
        kernel.run_until(kernel.now + 60 * MINUTE)
        assert all(r.model_set is None for r in ring.rgmanagers)
