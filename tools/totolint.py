#!/usr/bin/env python
"""CI/pre-commit wrapper for the determinism linter.

Runs without installation: prepends the repo's ``src/`` to ``sys.path``
and delegates to :mod:`repro.analysis.cli`. Exit codes are stable —
0 clean, 1 violations, 2 internal error — see docs/STATIC_ANALYSIS.md.

Usage::

    python tools/totolint.py                       # lint src/repro (TL001..TL014)
    python tools/totolint.py --format json         # CI artifact
    python tools/totolint.py --sarif               # SARIF 2.1.0
    python tools/totolint.py --baseline totolint-baseline.json
    python tools/totolint.py --cache .totolint-cache.json    # incremental
    python tools/totolint.py --rules TL001,TL006 src/repro/simkernel
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
