#!/usr/bin/env python3
"""What-if: grow Premium/BC disk usage 2x faster.

Paper §3.3.1: "Tweaking the growth behavior of subsets of databases
(e.g., grow disk usage of Premium/BC replicas 2x faster) is easily
configurable simply by changing XML properties."

This example runs the same 2-day scenario twice — once with the
trained models, once after scaling only the Premium/BC steady-state
growth schedule by 2x in the model document — and compares failovers
and disk pressure. This is exactly the paper's use case (b):
"quantify the benefits of proposals (what-if)".

Run with::

    python examples/whatif_disk_growth.py
"""

from dataclasses import replace

from repro.core.disk_models import DiskUsageModel
from repro.core.model_xml import TotoModelDocument
from repro.core.runner import run_scenario
from repro.experiments.scenarios import paper_scenario
from repro.sqldb.editions import Edition


def scale_bc_growth(document: TotoModelDocument,
                    factor: float) -> TotoModelDocument:
    """Return a copy of the document with BC steady growth scaled."""
    scaled_models = []
    for model in document.resource_models:
        if (isinstance(model, DiskUsageModel)
                and model.selector.edition is Edition.PREMIUM_BC):
            scaled_models.append(DiskUsageModel(
                selector=model.selector,
                steady=model.steady.scaled(factor),
                initial_growth=model.initial_growth,
                rapid_growth=model.rapid_growth,
                persisted=model.persisted,
                floor_gb=model.floor_gb,
                rate_heterogeneity=model.rate_heterogeneity,
                start_weekday=model.start_weekday,
            ))
        else:
            scaled_models.append(model)
    return TotoModelDocument(resource_models=scaled_models,
                             population=document.population,
                             seed_salt=document.seed_salt + "-whatif",
                             start_weekday=document.start_weekday)


def run_variant(label: str, scenario) -> None:
    result = run_scenario(scenario)
    kpis = result.kpis
    print(f"{label:>12}: disk={kpis.final_disk_gb:8,.0f} GB "
          f"({kpis.disk_utilization:.1%})  "
          f"failovers={kpis.failovers.count:3d} "
          f"({kpis.failovers.total_cores_moved:.0f} cores)  "
          f"penalty=${result.revenue.total_penalty:,.2f}")


def main() -> None:
    baseline = paper_scenario(density=1.2, days=2.0, maintenance=False)
    whatif = replace(
        baseline,
        name=baseline.name + "-bc2x",
        model_document=scale_bc_growth(baseline.model_document, 2.0))

    print("what-if study: Premium/BC steady disk growth x2 "
          "(120% density, 2 simulated days)\n")
    run_variant("baseline", baseline)
    run_variant("BC growth x2", whatif)


if __name__ == "__main__":
    main()
