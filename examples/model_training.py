#!/usr/bin/env python3
"""Train Toto's behaviour models from (synthetic) region telemetry.

Reproduces the §4 pipeline: generate two weeks of region-level
telemetry, aggregate create/drop events hourly, screen each hourly
training set with the K-S normality test (Figure 7), fit the
hourly-normal models, partition Delta Disk Usage into steady /
initial / rapid patterns, validate with 100 simulation runs
(Figure 8), and emit the serialized model XML that RgManager consumes.

Run with::

    python examples/model_training.py
"""

import numpy as np

from repro.core.model_xml import serialize_model_xml
from repro.models.training import train_model_document
from repro.models.validation import validate_create_drop
from repro.models.training import train_create_drop_model
from repro.sqldb.editions import Edition
from repro.telemetry.region import US_EAST_LIKE


def main() -> None:
    rng = np.random.default_rng(20210620)
    print("training on 14 days of synthetic region telemetry ...")
    artifacts = train_model_document(US_EAST_LIKE, rng,
                                     training_days=14,
                                     disk_corpus_size=600)

    for edition, dataset in artifacts.datasets.items():
        print(f"\n{edition.value}:")
        print(f"  steady-state sample share : {dataset.steady_fraction:.2%}"
              "   (paper reports ~99.8%)")
        print(f"  high-initial-growth prob  : {dataset.initial_probability:.3f}")
        print(f"  rapid-growth prob         : {dataset.rapid_probability:.3f}")

    print("\nvalidating the Standard/GP create/drop model "
          "(100 simulated runs) ...")
    create = artifacts.event_traces[(Edition.STANDARD_GP, "create")]
    drop = artifacts.event_traces[(Edition.STANDARD_GP, "drop")]
    model = train_create_drop_model(create, drop)
    validation = validate_create_drop(model, create, drop, runs=100,
                                      rng=np.random.default_rng(1))
    print(f"  creates RMSE (hourly)      : {validation.creates_rmse():.2f}")
    print(f"  drops RMSE (hourly)        : {validation.drops_rmse():.2f}")
    print(f"  total-creates relative err : "
          f"{validation.relative_daily_error():.2%}")

    xml = serialize_model_xml(artifacts.document)
    print(f"\nserialized model XML: {len(xml):,} bytes; first 400:")
    print(xml[:400] + " ...")


if __name__ == "__main__":
    main()
