#!/usr/bin/env python3
"""Reproduce a production incident ("repro", paper use case (c)).

§5.3.2 describes a 6-core Business Critical database that grew about
1.3 TB within its first 30 minutes and reshaped the whole cluster's
disk state. This example replays exactly that incident on top of the
normal churn, at two density levels, and shows how the same database
is redirected at 100% density but admitted — with consequences — at
140%.

Run with::

    python examples/incident_repro.py
"""

import dataclasses

from repro.core.runner import run_scenario
from repro.core.scenario import ScriptedCreate
from repro.experiments.scenarios import paper_scenario
from repro.units import HOUR

#: The §5.3.2 incident: a 6-core BC database restoring ~1.3 TB.
INCIDENT = ScriptedCreate(
    at_offset=30 * HOUR,
    slo_name="BC_Gen5_6",
    initial_data_gb=50.0,
    high_initial_growth=True,
    initial_growth_total_gb=1300.0,
)


def run_at(density: float) -> None:
    base = paper_scenario(density=density, days=2.0, maintenance=False)
    scenario = dataclasses.replace(
        base, name=base.name + "-incident",
        scripted_creates=(INCIDENT,))
    result = run_scenario(scenario)

    incident_dbs = [db for db in result.databases
                    if db.initial_growth_total_gb == 1300.0]
    admitted = bool(incident_dbs)
    outcome = "ADMITTED" if admitted else "REDIRECTED"
    kpis = result.kpis
    print(f"density {density:.0%}: incident {outcome}  |  "
          f"final disk {kpis.final_disk_gb:8,.0f} GB "
          f"({kpis.disk_utilization:.1%})  "
          f"failovers {kpis.failovers.count:3d}  "
          f"penalty ${result.revenue.total_penalty:8,.2f}")
    if admitted:
        db = incident_dbs[0]
        print(f"   -> created h{(db.created_at - result.frames[0].time) // HOUR}, "
              f"suffered {db.failover_count} failovers, "
              f"{db.downtime_seconds:.0f}s downtime")


def main() -> None:
    print("replaying the 1.3 TB BC restore incident (2-day runs)\n")
    for density in (1.0, 1.4):
        run_at(density)


if __name__ == "__main__":
    main()
