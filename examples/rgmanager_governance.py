#!/usr/bin/env python3
"""Measure RgManager's noisy-neighbor mitigation with Toto (§5.5).

"We will also be exploring how to use Toto to measure RgManager's
effectiveness at mitigating potential performance issues."

Toto injects a CPU-usage model with a hot business-hours peak into a
packed ring, once with the node CPU governor disabled and once with it
enabled, and reports how often nodes overran their usable-core limit
and how much demand the governor shaved off the noisy tenants.

Run with::

    python examples/rgmanager_governance.py
"""

from repro.core.cpu_model import CpuUsageModel
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.model_base import TotoModelSet
from repro.core.selectors import ALL_DATABASES
from repro.rng import RngRegistry
from repro.simkernel import SimulationKernel
from repro.sqldb.governance import summarize_governors
from repro.sqldb.tenant_ring import TenantRing, TenantRingConfig
from repro.units import DAY


def business_hours_utilization() -> HourlyNormalSchedule:
    """Low overnight, hot 9-17h weekday utilization."""
    schedule = HourlyNormalSchedule()
    for daytype in DayType:
        for hour in range(24):
            hot = daytype is DayType.WEEKDAY and 9 <= hour <= 17
            mu = 0.85 if hot else 0.15
            schedule.set(daytype, hour, mu, 0.10)
    return schedule


def run(governed: bool) -> None:
    kernel = SimulationKernel()
    config = TenantRingConfig(node_count=6, cpu_governance_limit=0.80)
    ring = TenantRing(kernel, config, RngRegistry(21))
    if not governed:  # monitor-only baseline: observe, never throttle
        for rgmanager in ring.rgmanagers:
            rgmanager.governor.enforce = False
    cpu_model = CpuUsageModel(ALL_DATABASES,
                              business_hours_utilization(),
                              secondary_fraction=0.6)
    for rgmanager in ring.rgmanagers:
        rgmanager.install_models(TotoModelSet([cpu_model]), 1)
    # Pack the ring tightly with 8-core tenants.
    while True:
        try:
            ring.control_plane.create_database("GP_Gen5_8", now=0,
                                               initial_data_gb=20.0)
        except Exception:
            break
    ring.start()
    kernel.run_until(2 * DAY)

    label = "governed" if governed else "ungoverned"
    report = summarize_governors(r.governor for r in ring.rgmanagers)
    print(f"{label:>10}: {report.row()}")


def main() -> None:
    print("noisy-neighbor mitigation study (2 simulated days, "
          "6-node ring packed with 8-core tenants)\n")
    run(governed=False)
    run(governed=True)


if __name__ == "__main__":
    main()
