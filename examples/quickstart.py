#!/usr/bin/env python3
"""Quickstart: benchmark one stage ring for 12 simulated hours.

Trains behaviour models on synthetic region telemetry, bootstraps the
paper's Table 2 population into a 14-node gen5 ring at 110% density,
runs Toto for 12 hours, and prints the headline KPIs.

Run with::

    python examples/quickstart.py
"""

from repro.core.runner import run_scenario
from repro.experiments.scenarios import paper_scenario
from repro.units import format_duration


def main() -> None:
    scenario = paper_scenario(density=1.1, days=0.5, maintenance=False)
    print(f"scenario: {scenario.name}, duration "
          f"{format_duration(scenario.duration)}, "
          f"{scenario.ring.node_count} nodes @ "
          f"{scenario.ring.density:.0%} density")

    result = run_scenario(scenario)

    kpis = result.kpis
    print(f"\nbootstrap: {result.frames[0].active_total} databases, "
          f"{result.bootstrap_free_cores:.0f} free cores, "
          f"{result.bootstrap_disk_utilization:.0%} disk")
    print(f"final reserved cores : {kpis.final_reserved_cores:.0f} "
          f"({kpis.core_utilization:.1%} of logical capacity)")
    print(f"final disk usage     : {kpis.final_disk_gb:,.0f} GB "
          f"({kpis.disk_utilization:.1%})")
    print(f"creation redirects   : {kpis.creation_redirects}")
    print(f"capacity failovers   : {kpis.failovers.count} "
          f"({kpis.failovers.total_cores_moved:.0f} cores moved)")
    print(f"adjusted revenue     : ${result.revenue.total_adjusted:,.2f} "
          f"(penalty ${result.revenue.total_penalty:,.2f})")

    print("\nhourly reserved cores:")
    for frame in result.frames:
        bar = "#" * int(frame.core_utilization * 60)
        print(f"  h{frame.hour_index:<3d} {frame.reserved_cores:7.0f} {bar}")


if __name__ == "__main__":
    main()
