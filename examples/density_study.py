#!/usr/bin/env python3
"""The paper's §5 density study, end to end.

Runs the four density levels (100/110/120/140%) back-to-back on
identical scenarios and prints the series behind Figures 2, 10, 11,
12, 14 and Tables 2-3.

The paper's runs are 6 days; pass ``--days`` to shorten while
exploring (the crossovers need 3+ days to appear)::

    python examples/density_study.py --days 2
    python examples/density_study.py              # full 6-day study
"""

import argparse

from repro.experiments.density import DensityStudy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=6.0,
                        help="simulated days per density level")
    parser.add_argument("--seed", type=int, default=42,
                        help="scenario seed (Population Manager etc.)")
    args = parser.parse_args()

    study = DensityStudy(days=args.days, seed=args.seed)
    print(f"running {len(study.densities)} experiments x "
          f"{args.days:g} simulated days ...\n")
    study.run()

    print(study.format_tables())
    print()
    print(study.format_figure10())
    print()
    print(study.format_figure11())
    print()
    print(study.format_figure12())
    print()
    print(study.format_figure14())
    print()
    print(study.format_figure2())


if __name__ == "__main__":
    main()
