#!/usr/bin/env python3
"""Evaluate a configuration change before it deploys (use case (a)).

"We are using Toto to: (a) evaluate production configuration changes
in SQL DB before they deploy (e.g., buffers, placement policies)."

Candidate change under review: report load to the PLB every 15 minutes
instead of every 5 (less reporting overhead, but the balancer sees
violations later). A second candidate disables the PLB's simulated
annealing. The sweep shows what each would do to the ring's KPIs.

Run with::

    python examples/config_change_review.py
"""

from repro.experiments.scenarios import paper_scenario
from repro.experiments.sensitivity import (
    ConfigSweep,
    with_greedy_placement,
    with_report_interval,
)


def main() -> None:
    baseline = paper_scenario(density=1.2, days=1.0, maintenance=False)
    sweep = ConfigSweep(baseline, [
        with_report_interval(15 * 60),
        with_greedy_placement(),
    ])
    print("evaluating 2 configuration candidates against the baseline "
          "(1 simulated day @ 120% density) ...\n")
    sweep.run()
    print(sweep.format_report())
    print("\nreading: a positive Δ adjusted $ means the candidate earns "
          "more than today's configuration on this scenario.")


if __name__ == "__main__":
    main()
