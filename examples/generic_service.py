#!/usr/bin/env python3
"""Toto on a non-database orchestrated service.

The paper's closing claim: "Toto is not limited in its relevance to a
cloud database service, but applies to any cloud service that
leverages cluster orchestration using a system like Kubernetes or SF."

This example benchmarks a fictional *cache service*: stateless cache
pods whose governed resource is DRAM, placed by the same PLB and
subject to the same capacity-violation failovers — no SQL DB substrate
involved. A custom working-set model (a plain ResourceModel subclass)
drives the memory metric; the PLB sweep governs ``memory-gb`` instead
of disk.

Run with::

    python examples/generic_service.py
"""

import math

import numpy as np

from repro.core.model_base import ModelContext, ResourceModel, TotoModelSet
from repro.core.selectors import ALL_DATABASES
from repro.fabric.cluster import ServiceFabricCluster
from repro.fabric.metrics import MEMORY_GB, NodeCapacities
from repro.rng import RngRegistry
from repro.units import HOUR


class WorkingSetModel(ResourceModel):
    """Cache working set: fills toward a hot-hours target, decays off-peak.

    Stateless per §3.3.1 — the previous value arrives via the context —
    and non-persisted: a cache restarted elsewhere starts cold.
    """

    metric = MEMORY_GB
    persisted = False
    selector = ALL_DATABASES  # every pod of the service

    def __init__(self, peak_gb: float, trough_gb: float,
                 tau_hours: float = 1.5) -> None:
        self.peak_gb = peak_gb
        self.trough_gb = trough_gb
        self.tau_hours = tau_hours

    def kind(self) -> str:
        return "WorkingSetModel"

    def _target(self, now: int) -> float:
        hour = (now // HOUR) % 24
        hot = 9 <= hour <= 20
        return self.peak_gb if hot else self.trough_gb

    def initial_value(self, context: ModelContext) -> float:
        return 0.5  # cold cache

    def next_value(self, context: ModelContext) -> float:
        if context.previous_value is None:
            return self.initial_value(context)
        target = self._target(context.now)
        decay = math.exp(-context.interval_seconds
                         / (self.tau_hours * HOUR))
        value = target + (context.previous_value - target) * decay
        return max(value * (1.0 + float(context.rng.normal(0, 0.03))),
                   0.1)


class CachePod:
    """Minimal stand-in for the database object models select on."""

    def __init__(self, pod_id: str) -> None:
        self.db_id = pod_id


def main() -> None:
    registry = RngRegistry(99)
    cluster = ServiceFabricCluster(
        node_count=5,
        capacities=NodeCapacities(cpu_cores=16, disk_gb=512,
                                  memory_gb=64.0),
        plb_rng=registry.stream("plb"))
    model_set = TotoModelSet([WorkingSetModel(peak_gb=22.0,
                                              trough_gb=6.0)])

    pods = {}
    for index in range(12):
        record = cluster.create_service(f"cache-{index:02d}", 1, 2.0,
                                        {MEMORY_GB: 0.5}, now=0)
        pods[f"cache-{index:02d}"] = (record.replicas[0],
                                      CachePod(f"cache-{index:02d}"))

    rng = registry.stream("model")
    print("hour  mem/node (GB)                     failovers")
    failovers = 0
    for step in range(24 * 12):  # 24h at 5-minute reports
        now = step * 300
        for replica, pod in pods.values():
            model = model_set.find(MEMORY_GB, pod)
            previous = replica.load(MEMORY_GB) if step else None
            value = model.next_value(ModelContext(
                now=now, interval_seconds=300, database=pod,
                is_primary=True, previous_value=previous, rng=rng))
            cluster.report_load(replica, {MEMORY_GB: value})
        # Govern MEMORY instead of disk: same PLB machinery.
        records = cluster.plb.fix_violations(now, cluster,
                                             metric=MEMORY_GB)
        failovers += len(records)
        if step % 36 == 0:
            loads = " ".join(f"{node.load(MEMORY_GB):5.1f}"
                             for node in cluster.nodes)
            print(f"h{now // HOUR:<4d} {loads}   {failovers}")

    print(f"\n24h of cache-service benchmarking: {failovers} "
          "memory-capacity failovers, zero SQL anywhere.")
    cluster.validate_invariants()


if __name__ == "__main__":
    main()
