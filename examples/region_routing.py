#!/usr/bin/env python3
"""Region-level create routing across multiple tenant rings.

The paper benchmarks a single ring but assumes region context: creates
pick a ring uniformly (§4.1.1) and a ring that cannot admit a request
redirects it "to another tenant ring that has enough capacity"
(§5.3.1). This example stands up a 4-ring region, pushes a burst of
creates through the region control plane, and shows where everything
landed — including the cross-ring redirects.

Run with::

    python examples/region_routing.py
"""

import numpy as np

from repro.rng import RngRegistry
from repro.simkernel import SimulationKernel
from repro.sqldb.region import Region
from repro.sqldb.tenant_ring import TenantRingConfig


def main() -> None:
    kernel = SimulationKernel()
    region = Region(kernel, ring_count=4,
                    config=TenantRingConfig(node_count=6),
                    rng_registry=RngRegistry(11))
    region.start()

    rng = np.random.default_rng(3)
    slos = ["GP_Gen5_2", "GP_Gen5_4", "GP_Gen5_8", "BC_Gen5_2",
            "BC_Gen5_4", "GP_Gen5_16", "BC_Gen5_8"]
    admitted = 0
    rejected = 0
    for index in range(400):
        slo = slos[int(rng.integers(len(slos)))]
        outcome = region.create_database(
            slo, now=kernel.now,
            initial_data_gb=float(rng.lognormal(3.5, 1.0)))
        if outcome.admitted:
            admitted += 1
        else:
            rejected += 1

    print(f"routed 400 creates: {admitted} admitted, "
          f"{rejected} rejected region-wide")
    print(f"cross-ring redirects: {region.cross_ring_redirects}")
    print("\nper-ring state:")
    for index, ring in enumerate(region.rings):
        cp = ring.control_plane
        print(f"  ring {index}: {cp.active_count():4d} DBs  "
              f"{ring.reserved_cores():6.0f} cores reserved  "
              f"{ring.disk_usage_gb():9,.0f} GB disk  "
              f"{cp.redirect_count():3d} redirects")
    print(f"\nregion totals: {region.active_count()} DBs, "
          f"{region.reserved_cores():,.0f} cores, "
          f"{region.disk_usage_gb():,.0f} GB")


if __name__ == "__main__":
    main()
