#!/usr/bin/env python3
"""Quantify PLB non-determinism (§5.3.4 / Figure 13).

Runs three identical 18-hour experiments that differ only in the
Placement and Load Balancer's annealing randomness — the one seed the
paper could not pin in production — and tests whether node-level disk
and reserved-core readings differ significantly (Wilcoxon signed-rank,
alpha = 0.05). The paper found 5 of 6 pairwise tests insignificant.

Run with::

    python examples/repeatability.py
"""

from repro.experiments.nondeterminism import NondeterminismStudy


def main() -> None:
    study = NondeterminismStudy(repeats=3, hours=18.0)
    print("running 3 identical 18-hour experiments "
          "(only the PLB seed differs) ...\n")
    print(study.format_report())
    fraction = study.insignificant_fraction()
    print(f"\n{fraction:.0%} of pairwise tests are insignificant "
          "(the paper reports 5 of 6).")


if __name__ == "__main__":
    main()
