#!/usr/bin/env python3
"""Elastic pools: the §5.5 population extension.

Provisions two pools on a ring, packs member databases into them,
moves a member between pools, and shows how membership changes flow
through the Toto-governed disk metric to the orchestrator.

Run with::

    python examples/elastic_pools.py
"""

from repro.core.model_base import TotoModelSet
from repro.core.disk_models import DiskUsageModel
from repro.core.hourly_schedule import HourlyNormalSchedule
from repro.core.selectors import ALL_PREMIUM_BC
from repro.fabric.metrics import DISK_GB
from repro.rng import RngRegistry
from repro.simkernel import SimulationKernel
from repro.sqldb.elastic_pool import ElasticPoolManager
from repro.sqldb.tenant_ring import TenantRing, TenantRingConfig
from repro.units import MINUTE


def main() -> None:
    kernel = SimulationKernel()
    ring = TenantRing(kernel, TenantRingConfig(node_count=6),
                      RngRegistry(7))
    model = DiskUsageModel(selector=ALL_PREMIUM_BC,
                           steady=HourlyNormalSchedule.constant(0.02, 0.01),
                           persisted=True, rate_heterogeneity=0.0)
    for rgmanager in ring.rgmanagers:
        rgmanager.install_models(TotoModelSet([model]), 1)
    ring.start()

    pools = ElasticPoolManager(ring.control_plane)
    saas = pools.create_pool("BC_Gen5_8", now=kernel.now)
    archive = pools.create_pool("BC_Gen5_4", now=kernel.now)
    print(f"created pools {saas.pool_id} (BC_Gen5_8) and "
          f"{archive.pool_id} (BC_Gen5_4)")

    kernel.run_until(10 * MINUTE)
    for name, size in (("tenant-a", 120.0), ("tenant-b", 45.0),
                       ("tenant-c", 210.0)):
        pools.add_member(saas.pool_id, name, size, now=kernel.now)
    print(f"packed {len(saas.active_members)} tenants "
          f"({saas.member_data_gb:.0f} GB) into {saas.pool_id}")

    kernel.run_until(kernel.now + 10 * MINUTE)
    primary = ring.cluster.service(saas.pool_id).primary
    print(f"pool disk reported to the PLB: "
          f"{primary.load(DISK_GB):.0f} GB")

    pools.move_member(saas.pool_id, archive.pool_id, "tenant-c",
                      now=kernel.now)
    kernel.run_until(kernel.now + 10 * MINUTE)
    print(f"after moving tenant-c to {archive.pool_id}:")
    for pool in (saas, archive):
        primary = ring.cluster.service(pool.pool_id).primary
        print(f"  {pool.pool_id}: members={len(pool.active_members)} "
              f"disk={primary.load(DISK_GB):.0f} GB")


if __name__ == "__main__":
    main()
