"""Exception hierarchy for the Toto reproduction.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Raised for scheduling into the past, running a stopped kernel, or
    re-entrant ``run`` calls.
    """


class FabricError(ReproError):
    """Base class for orchestrator (Service-Fabric-like) errors."""


class PlacementError(FabricError):
    """The PLB could not place a replica anywhere in the cluster."""


class CapacityError(FabricError):
    """An operation would exceed a node's physical capacity."""


class NamingServiceError(FabricError):
    """A Naming Service read/write failed (e.g. missing key)."""


class NamingUnavailableError(NamingServiceError):
    """The Naming Service stayed unreachable past the retry budget.

    Raised by the fault-injection gate when an injected metastore
    outage outlasts the caller's exponential-backoff schedule; callers
    degrade gracefully (last-known-good model blob, node-local metric
    state) instead of crashing the run.
    """


class UnknownReplicaError(FabricError):
    """A replica id was not found in the cluster."""


class SqlDbError(ReproError):
    """Base class for SQL DB substrate errors."""


class UnknownSloError(SqlDbError):
    """An SLO name was not found in the catalog."""


class UnknownDatabaseError(SqlDbError):
    """A database id was not found in the tenant ring."""


class AdmissionRejected(SqlDbError):
    """The control plane redirected a create request to another ring.

    This is the paper's "creation redirect" (Figure 10): the cluster does
    not have enough free logical capacity to admit the database.
    """

    def __init__(self, message: str, *, required_cores: int = 0,
                 free_cores: int = 0) -> None:
        super().__init__(message)
        self.required_cores = required_cores
        self.free_cores = free_cores


class ModelError(ReproError):
    """Base class for behaviour-model errors."""


class ModelSpecError(ModelError):
    """A model XML blob or model parameter set is invalid."""


class TrainingError(ModelError):
    """Model training received unusable telemetry."""


class ScenarioError(ReproError):
    """A benchmark scenario specification is invalid."""


class ChaosError(ReproError):
    """Base class for fault-injection (chaos) subsystem errors."""


class FaultSpecError(ChaosError):
    """A fault schedule or chaos profile is invalid."""


class RetryBudgetExceeded(ChaosError):
    """An injected transient fault outlasted the backoff schedule.

    Raised by the chaos retry wrapper when every attempt of a
    control-plane operation landed inside an active fault window; the
    control plane converts it into the paper's graceful-degradation
    semantics (a creation redirect, or a deferred drop).
    """
