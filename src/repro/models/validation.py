"""Model validation (paper §4.1.4 and Figures 8-9).

"To validate the trained models, they were executed in a simulated
environment 100 times [...] Our 'hourly normal' model was able to
imitate the create and drop production trace closely."

:func:`validate_create_drop` reproduces Figure 8's three panels (net
creates, creates, drops) as numeric series; :func:`validate_disk_model`
reproduces Figure 9's cumulative disk comparison with the DTW and RMSE
scores the paper used for model selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.core.create_drop import CreateDropModel
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.stats.descriptive import rmse
from repro.stats.dtw import dtw_distance
from repro.telemetry.production import HourlyEventTrace
from repro.units import DELTA_DISK_PERIOD, HOUR


# ---------------------------------------------------------------------------
# Create / Drop validation (Figure 8)
# ---------------------------------------------------------------------------

def simulate_event_counts(model: CreateDropModel, kind: str, days: int,
                          runs: int, rng: np.random.Generator,
                          start_weekday: int = 0) -> np.ndarray:
    """Sample hourly counts: shape ``(runs, days * 24)``."""
    if kind not in ("create", "drop"):
        raise TrainingError(f"kind must be create|drop, got '{kind}'")
    counts = np.zeros((runs, days * 24), dtype=float)
    for run in range(runs):
        for day in range(days):
            daytype = (DayType.WEEKEND if (start_weekday + day) % 7 >= 5
                       else DayType.WEEKDAY)
            for hour in range(24):
                if kind == "create":
                    value = model.sample_creates(daytype, hour, rng)
                else:
                    value = model.sample_drops(daytype, hour, rng)
                counts[run, day * 24 + hour] = value
    return counts


@dataclass(frozen=True)
class CreateDropValidation:
    """Figure 8's series for one edition."""

    production_creates: np.ndarray     # hourly
    production_drops: np.ndarray
    simulated_creates: np.ndarray      # (runs, hours)
    simulated_drops: np.ndarray

    @property
    def production_net(self) -> np.ndarray:
        return self.production_creates - self.production_drops

    @property
    def mean_creates(self) -> np.ndarray:
        return self.simulated_creates.mean(axis=0)

    @property
    def mean_drops(self) -> np.ndarray:
        return self.simulated_drops.mean(axis=0)

    @property
    def mean_net(self) -> np.ndarray:
        return self.mean_creates - self.mean_drops

    def creates_rmse(self) -> float:
        """RMSE between mean simulated and production creates."""
        return rmse(self.mean_creates, self.production_creates)

    def drops_rmse(self) -> float:
        return rmse(self.mean_drops, self.production_drops)

    def net_rmse(self) -> float:
        return rmse(self.mean_net, self.production_net)

    def relative_daily_error(self) -> float:
        """|mean simulated - production| of total events, relative.

        The paper's headline claim is that the mean of 100 modeled
        curves "nearly overlapped with the production curve"; this is
        the corresponding scalar.
        """
        production_total = float(self.production_creates.sum())
        if production_total == 0:
            raise TrainingError("production trace has no creates")
        simulated_total = float(self.mean_creates.sum())
        return abs(simulated_total - production_total) / production_total


def validate_create_drop(model: CreateDropModel,
                         create_trace: HourlyEventTrace,
                         drop_trace: HourlyEventTrace,
                         runs: int = 100,
                         rng: np.random.Generator = None
                         ) -> CreateDropValidation:
    """Run the paper's 100-simulation validation for one edition."""
    if rng is None:
        rng = np.random.default_rng(0)
    days = create_trace.n_days
    return CreateDropValidation(
        production_creates=np.asarray(create_trace.counts, dtype=float),
        production_drops=np.asarray(drop_trace.counts, dtype=float),
        simulated_creates=simulate_event_counts(
            model, "create", days, runs, rng, create_trace.start_weekday),
        simulated_drops=simulate_event_counts(
            model, "drop", days, runs, rng, drop_trace.start_weekday),
    )


# ---------------------------------------------------------------------------
# Disk validation (Figure 9)
# ---------------------------------------------------------------------------

def simulate_steady_disk(schedule: HourlyNormalSchedule, days: int,
                         start_gb: float, runs: int,
                         rng: np.random.Generator,
                         start_weekday: int = 0) -> np.ndarray:
    """Cumulative disk usage curves from the steady model.

    Shape ``(runs, periods + 1)`` at 20-minute granularity.
    """
    periods = days * (24 * HOUR // DELTA_DISK_PERIOD)
    curves = np.empty((runs, periods + 1))
    curves[:, 0] = start_gb
    for run in range(runs):
        value = start_gb
        for period in range(periods):
            timestamp = period * DELTA_DISK_PERIOD
            mu, sigma = schedule.params_at(timestamp, start_weekday)
            delta = float(rng.normal(mu, sigma)) if sigma > 0 else mu
            value = max(value + delta, 0.1)
            curves[run, period + 1] = value
    return curves


@dataclass(frozen=True)
class DiskValidation:
    """Figure 9's comparison for one edition."""

    production_mean_curve: np.ndarray
    simulated_curves: np.ndarray

    @property
    def simulated_mean_curve(self) -> np.ndarray:
        return self.simulated_curves.mean(axis=0)

    def dtw(self) -> float:
        """DTW between mean curves (the §4.2.2 selection metric)."""
        return dtw_distance(self.simulated_mean_curve,
                            self.production_mean_curve,
                            window=48)

    def rmse(self) -> float:
        return rmse(self.simulated_mean_curve, self.production_mean_curve)

    def cumulative_growth_error(self) -> float:
        """Relative error of total growth over the horizon.

        The paper "primarily aimed to have the resulting cumulative
        disk usage from our models to be as close to production as
        possible over the two week training period".
        """
        production_growth = float(self.production_mean_curve[-1]
                                  - self.production_mean_curve[0])
        simulated_growth = float(self.simulated_mean_curve[-1]
                                 - self.simulated_mean_curve[0])
        if production_growth == 0:
            raise TrainingError("production curve shows no growth")
        return abs(simulated_growth - production_growth) / abs(production_growth)


def validate_disk_model(schedule: HourlyNormalSchedule,
                        steady_traces: List[Tuple[float, ...]],
                        days: int, runs: int = 50,
                        rng: np.random.Generator = None,
                        start_weekday: int = 0) -> DiskValidation:
    """Compare the steady model against production steady traces.

    ``steady_traces`` are absolute-usage tuples (from
    :class:`DiskUsageTrace.usage_gb`) of steady-labeled databases.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if not steady_traces:
        raise TrainingError("no steady traces to validate against")
    lengths = {len(t) for t in steady_traces}
    if len(lengths) != 1:
        raise TrainingError("steady traces have mixed lengths")
    production = np.asarray(steady_traces, dtype=float)
    # Compare growth shapes: re-base every curve at its own start.
    production_rebased = production - production[:, :1]
    mean_curve = production_rebased.mean(axis=0)

    start_gb = 0.0
    simulated = simulate_steady_disk(schedule, days, start_gb, runs, rng,
                                     start_weekday)
    periods = min(simulated.shape[1], mean_curve.shape[0])
    return DiskValidation(
        production_mean_curve=mean_curve[:periods],
        simulated_curves=simulated[:, :periods],
    )
