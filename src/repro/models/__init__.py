"""Model training framework (paper §4).

Turns production telemetry (here: the synthetic corpus from
:mod:`repro.telemetry.production`) into the model parameters Toto
executes:

* :mod:`repro.models.hourly` — hourly aggregation and the K-S
  normality screening of Figure 7;
* :mod:`repro.models.delta_disk` — Delta Disk Usage computation and
  the steady / initial / rapid pattern labeling of §4.2;
* :mod:`repro.models.training` — end-to-end trainers producing
  :class:`repro.core.CreateDropModel`, the disk growth specs, and a
  complete, publishable :class:`repro.core.TotoModelDocument`;
* :mod:`repro.models.validation` — the 100-run simulation validation
  of Figure 8 and the cumulative-disk comparison of Figure 9;
* :mod:`repro.models.baselines` — the KDE and customized-binning
  alternatives the paper evaluated and rejected (§4.2.2), with the
  DTW/RMSE comparison that justified hourly-normal.
"""

from repro.models.baselines import BinnedDeltaModel, KdeDeltaModel
from repro.models.diagnostics import (
    ScheduleDiagnostics,
    diagnose_schedule,
    diagnose_trace,
    diurnal_strength,
)
from repro.models.delta_disk import (
    DeltaDiskDataset,
    build_delta_disk_dataset,
    label_initial_growth,
)
from repro.models.hourly import HourlyTrainingSets, ks_screening
from repro.models.training import (
    train_create_drop_model,
    train_disk_usage_model,
    train_model_document,
    train_population_models,
)
from repro.models.validation import (
    simulate_event_counts,
    simulate_steady_disk,
    validate_create_drop,
    validate_disk_model,
)

__all__ = [
    "BinnedDeltaModel",
    "DeltaDiskDataset",
    "ScheduleDiagnostics",
    "diagnose_schedule",
    "diagnose_trace",
    "diurnal_strength",
    "HourlyTrainingSets",
    "KdeDeltaModel",
    "build_delta_disk_dataset",
    "ks_screening",
    "label_initial_growth",
    "simulate_event_counts",
    "simulate_steady_disk",
    "train_create_drop_model",
    "train_disk_usage_model",
    "train_model_document",
    "train_population_models",
    "validate_create_drop",
    "validate_disk_model",
]
