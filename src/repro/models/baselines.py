"""Baseline disk-delta models the paper evaluated and rejected (§4.2.2).

"We explored several statistical approaches including non-parametric
kernel density estimations (KDE) and a customized binning model in
which the training set was divided into bins, each with a probability.
However [...] we decided to imitate the Delta Disk Usage by using a
'hourly normal' model."

Both baselines ignore the temporal (hour-of-day) structure — exactly
the deficiency the paper cites ("Unlike customized binning, it could
capture temporal disk usage patterns") — so the comparison harness can
show the hourly-normal model matching or beating them on DTW/RMSE
while being far cheaper to sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import TrainingError
from repro.core.hourly_schedule import HourlyNormalSchedule
from repro.stats.descriptive import rmse
from repro.stats.dtw import dtw_distance
from repro.units import DELTA_DISK_PERIOD, HOUR


class KdeDeltaModel:
    """Gaussian KDE over the pooled Delta Disk Usage values."""

    name = "kde"

    def __init__(self, deltas: Sequence[float]) -> None:
        data = np.asarray(deltas, dtype=float)
        if data.size < 5:
            raise TrainingError("KDE needs at least 5 samples")
        if float(data.std()) == 0.0:
            raise TrainingError("KDE undefined for zero-variance data")
        self._kde = sps.gaussian_kde(data)

    def sample_delta(self, rng: np.random.Generator, timestamp: int) -> float:
        """Draw one delta; the timestamp is ignored (no temporal view)."""
        return float(self._kde.resample(size=1, seed=rng)[0, 0])


class BinnedDeltaModel:
    """The paper's "customized binning" baseline.

    The training set is divided into value bins; each bin carries its
    empirical probability and sampling draws a bin then a uniform value
    within it.
    """

    name = "binned"

    def __init__(self, deltas: Sequence[float], n_bins: int = 20) -> None:
        data = np.asarray(deltas, dtype=float)
        if data.size < n_bins:
            raise TrainingError(
                f"binning needs >= {n_bins} samples, got {data.size}")
        counts, edges = np.histogram(data, bins=n_bins)
        total = counts.sum()
        if total == 0:
            raise TrainingError("histogram is empty")
        self._probabilities = counts / total
        self._edges = edges

    def sample_delta(self, rng: np.random.Generator, timestamp: int) -> float:
        """Draw one delta; the timestamp is ignored (no temporal view)."""
        index = int(rng.choice(len(self._probabilities),
                               p=self._probabilities))
        return float(rng.uniform(self._edges[index], self._edges[index + 1]))


class HourlyNormalDeltaModel:
    """Adapter putting the paper's chosen model into the same interface."""

    name = "hourly-normal"

    def __init__(self, schedule: HourlyNormalSchedule,
                 start_weekday: int = 0) -> None:
        schedule.validate()
        self._schedule = schedule
        self._start_weekday = start_weekday

    def sample_delta(self, rng: np.random.Generator, timestamp: int) -> float:
        mu, sigma = self._schedule.params_at(timestamp, self._start_weekday)
        return float(rng.normal(mu, sigma)) if sigma > 0 else mu


@dataclass(frozen=True)
class ModelComparisonRow:
    """One model's scores in the §4.2.2 selection table."""

    model_name: str
    dtw: float
    rmse: float
    cumulative_growth_error: float


def _simulate_generic(model, days: int, runs: int,
                      rng: np.random.Generator) -> np.ndarray:
    periods = days * (24 * HOUR // DELTA_DISK_PERIOD)
    curves = np.empty((runs, periods + 1))
    curves[:, 0] = 0.0
    for run in range(runs):
        value = 0.0
        for period in range(periods):
            value += model.sample_delta(rng, period * DELTA_DISK_PERIOD)
            curves[run, period + 1] = value
    return curves


def compare_delta_models(production_mean_curve: np.ndarray,
                         models: List, days: int, runs: int,
                         rng: np.random.Generator) -> List[ModelComparisonRow]:
    """Score candidate delta models against a production mean curve.

    This reproduces the selection comparison behind §4.2.2: lower DTW
    and RMSE is better; the hourly-normal model should match or beat
    the a-temporal baselines.
    """
    rows: List[ModelComparisonRow] = []
    production = np.asarray(production_mean_curve, dtype=float)
    production_growth = float(production[-1] - production[0])
    for model in models:
        curves = _simulate_generic(model, days, runs, rng)
        mean_curve = curves.mean(axis=0)[:production.shape[0]]
        target = production[:mean_curve.shape[0]]
        growth = float(mean_curve[-1] - mean_curve[0])
        growth_error = (abs(growth - production_growth)
                        / abs(production_growth)
                        if production_growth else float("inf"))
        rows.append(ModelComparisonRow(
            model_name=model.name,
            dtw=dtw_distance(mean_curve, target, window=48),
            rmse=rmse(mean_curve, target),
            cumulative_growth_error=growth_error,
        ))
    return rows
