"""Training-quality diagnostics for hourly-normal schedules.

The paper's modelers eyeballed Figures 6-9 to decide the trained
models were trustworthy; this module turns those eyeball checks into
numbers a pipeline can gate on:

* per-cell sample counts (a weekend cell trained on two Saturdays is
  weaker than a weekday cell trained on ten weekdays);
* *diurnal strength* — how much of the weekday profile's variance is
  structure rather than noise (Figure 6's visible hourly pattern);
* *weekday/weekend contrast* — the §4.1.2 finding that weekdays are
  busier;
* flagged cells whose fitted sigma dwarfs mu (count cells where the
  normal would frequently truncate at zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.errors import TrainingError
from repro.models.hourly import HourlyTrainingSets


@dataclass(frozen=True)
class CellDiagnostic:
    """One (day type, hour) cell's training health."""

    daytype: DayType
    hour: int
    sample_count: int
    mu: float
    sigma: float

    @property
    def noisy(self) -> bool:
        """Sigma exceeding |mu|: samples would truncate at zero often."""
        return self.sigma > abs(self.mu) and self.mu >= 0


@dataclass(frozen=True)
class ScheduleDiagnostics:
    """Aggregate training-quality report for one schedule."""

    cells: Tuple[CellDiagnostic, ...]
    diurnal_strength: float
    weekday_weekend_contrast: float
    min_sample_count: int
    noisy_cell_count: int

    def healthy(self, min_samples: int = 3,
                min_diurnal_strength: float = 0.2) -> bool:
        """The gate a training pipeline would apply before shipping."""
        return (self.min_sample_count >= min_samples
                and self.diurnal_strength >= min_diurnal_strength)

    def summary(self) -> str:
        return (f"cells={len(self.cells)}  "
                f"min-samples={self.min_sample_count}  "
                f"diurnal={self.diurnal_strength:.2f}  "
                f"wd/we-contrast={self.weekday_weekend_contrast:.2f}  "
                f"noisy-cells={self.noisy_cell_count}")


def diurnal_strength(profile: np.ndarray) -> float:
    """Share of a 24-hour profile's energy in its structure.

    1 - (variance of hour-to-hour noise) / (variance of the profile).
    A flat profile scores 0; a smooth business-hours bump scores near 1.
    Estimated by comparing the profile against its 3-hour moving
    average: what survives smoothing is structure.
    """
    profile = np.asarray(profile, dtype=float)
    if profile.size != 24:
        raise TrainingError(f"need a 24-hour profile, got {profile.size}")
    total_var = float(profile.var())
    if total_var == 0:
        return 0.0
    padded = np.concatenate([profile[-1:], profile, profile[:1]])
    smooth = np.convolve(padded, np.ones(3) / 3.0, mode="valid")
    noise_var = float(np.var(profile - smooth))
    return max(0.0, 1.0 - noise_var / total_var)


def diagnose_schedule(schedule: HourlyNormalSchedule,
                      training_sets: HourlyTrainingSets
                      ) -> ScheduleDiagnostics:
    """Produce the full diagnostic report for a trained schedule."""
    schedule.validate()
    cells: List[CellDiagnostic] = []
    for daytype in DayType:
        for hour in range(24):
            mu, sigma = schedule.params(daytype, hour)
            samples = training_sets.groups.get((daytype, hour), [])
            cells.append(CellDiagnostic(daytype=daytype, hour=hour,
                                        sample_count=len(samples),
                                        mu=mu, sigma=sigma))

    weekday_profile = np.array(
        [schedule.params(DayType.WEEKDAY, hour)[0] for hour in range(24)])
    weekend_profile = np.array(
        [schedule.params(DayType.WEEKEND, hour)[0] for hour in range(24)])
    weekend_mean = float(weekend_profile.mean())
    contrast = (float(weekday_profile.mean()) / weekend_mean
                if weekend_mean > 0 else float("inf"))

    return ScheduleDiagnostics(
        cells=tuple(cells),
        diurnal_strength=diurnal_strength(weekday_profile),
        weekday_weekend_contrast=contrast,
        min_sample_count=min(cell.sample_count for cell in cells),
        noisy_cell_count=sum(1 for cell in cells if cell.noisy),
    )


def diagnose_trace(trace) -> ScheduleDiagnostics:
    """Convenience: fit + diagnose in one step from an event trace."""
    sets = HourlyTrainingSets.from_trace(trace)
    schedule = sets.fit_schedule()
    if not schedule.is_complete:
        # Short traces leave weekend cells empty; borrow the weekday
        # fallback the trainer uses so diagnostics still run.
        from repro.models.training import _fill_missing_cells
        _fill_missing_cells(schedule)
    return diagnose_schedule(schedule, sets)
