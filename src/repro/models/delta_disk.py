"""Delta Disk Usage dataset construction and pattern labeling (§4.2).

"We modeled this by discretizing the disk usage for each database into
20 minute time periods and computing the Delta Disk Usage. [...] we
observed that around 99.8% of the time across databases and time
stamps the disk usage showed a steady-state growth pattern. For the
remaining 0.2%, it was dominated by initial creation growth and
predictable rapid growth patterns."

Labeling rules implemented from the paper:

* **initial creation growth** — "databases [...] labeled 'High Initial
  Growth' if they had growth more than 12 GB within the first five
  minutes of the database's lifetime" (we test the first 20-minute
  period against the pro-rated threshold);
* **predictable rapid growth** — databases whose delta series shows
  repeated large spikes followed by comparable decreases;
* everything else is **steady state**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.core.disk_models import HIGH_INITIAL_GROWTH_LABEL_GB
from repro.core.hourly_schedule import DayType
from repro.telemetry.production import (
    DiskUsageTrace,
    PERIODS_PER_DAY,
    PERIODS_PER_HOUR,
)
from repro.units import DELTA_DISK_PERIOD, MINUTE

#: The paper labels databases "High Initial Growth" when they grow more
#: than 12 GB within the first five minutes; our telemetry is
#: discretized at 20 minutes (the paper's own Delta Disk granularity),
#: so the rule is applied to the first 20-minute period. A database
#: that crossed 12 GB in 5 minutes certainly crossed it in 20.
INITIAL_GROWTH_PERIOD_THRESHOLD_GB = HIGH_INITIAL_GROWTH_LABEL_GB

#: A delta counts as a "rapid spike" when it exceeds this many *robust*
#: standard deviations (1.4826 x MAD) of the database's own delta
#: series. MAD keeps the noise floor unaffected by the spikes being
#: detected, unlike a plain standard deviation.
RAPID_SPIKE_SIGMA = 6.0
#: Minimum paired up/down spikes for the rapid-growth label.
RAPID_MIN_CYCLES = 2


def robust_sigma(deltas: np.ndarray) -> float:
    """Noise scale estimate that ignores outliers (1.4826 x MAD)."""
    if deltas.size == 0:
        return 0.0
    mad = float(np.median(np.abs(deltas - np.median(deltas))))
    return 1.4826 * mad


def label_initial_growth(trace: DiskUsageTrace) -> bool:
    """Apply the 12 GB-in-5-minutes rule to a trace's first period."""
    deltas = trace.deltas()
    if deltas.size == 0:
        raise TrainingError("trace too short to label")
    return bool(deltas[0] >= INITIAL_GROWTH_PERIOD_THRESHOLD_GB)


def label_rapid_growth(trace: DiskUsageTrace) -> bool:
    """Detect the spike-up / spike-down ETL signature (§4.2.4)."""
    deltas = trace.deltas()
    if deltas.size < PERIODS_PER_DAY:
        return False
    # Exclude the initial-creation window from spike statistics.
    body = deltas[PERIODS_PER_HOUR:]
    sigma = robust_sigma(body)
    if sigma == 0:
        return False
    threshold = RAPID_SPIKE_SIGMA * sigma
    ups = int(np.sum(body > threshold))
    downs = int(np.sum(body < -threshold))
    return min(ups, downs) >= RAPID_MIN_CYCLES


@dataclass
class DeltaDiskDataset:
    """The partitioned Delta Disk Usage training corpus.

    Attributes:
        steady_by_cell: steady-state deltas grouped by (day type,
            hour) — the hourly-normal training sets of §4.2.2.
        initial_totals: per-database 30-minute totals of the
            high-initial-growth subset (§4.2.3).
        initial_probability: fraction of databases labeled high
            initial growth.
        rapid_increase: spike-up magnitudes of the rapid subset.
        rapid_decrease: spike-down magnitudes (positive values).
        rapid_probability: fraction of databases labeled rapid.
        rapid_state_periods: average periods spent per state, keyed
            steady/increase/between/decrease.
        steady_fraction: share of (database, period) samples labeled
            steady — the paper reports ~99.8%.
    """

    steady_by_cell: Dict[Tuple[DayType, int], List[float]]
    initial_totals: List[float]
    initial_probability: float
    rapid_increase: List[float]
    rapid_decrease: List[float]
    rapid_probability: float
    rapid_state_periods: Dict[str, float]
    steady_fraction: float


def build_delta_disk_dataset(traces: List[DiskUsageTrace],
                             start_weekday: int = 0) -> DeltaDiskDataset:
    """Partition a disk corpus into the three §4.2 training sets."""
    if not traces:
        raise TrainingError("empty disk corpus")

    steady_by_cell: Dict[Tuple[DayType, int], List[float]] = {}
    initial_totals: List[float] = []
    rapid_increase: List[float] = []
    rapid_decrease: List[float] = []
    rapid_dbs = 0
    initial_dbs = 0
    special_samples = 0
    total_samples = 0
    state_period_sums = {"steady": 0.0, "increase": 0.0,
                         "between": 0.0, "decrease": 0.0}
    state_period_counts = {key: 0 for key in state_period_sums}

    initial_periods = (30 * MINUTE) // DELTA_DISK_PERIOD + 1

    for trace in traces:
        deltas = trace.deltas()
        total_samples += deltas.size
        is_initial = label_initial_growth(trace)
        is_rapid = label_rapid_growth(trace)

        start_index = 0
        if is_initial:
            initial_dbs += 1
            window = deltas[:initial_periods]
            initial_totals.append(float(window.sum()))
            special_samples += window.size
            start_index = initial_periods

        body = deltas[start_index:]
        if is_rapid:
            rapid_dbs += 1
            spikes = _extract_rapid(body, rapid_increase, rapid_decrease,
                                    state_period_sums, state_period_counts)
            special_samples += spikes
            # Non-spike periods still train the steady model.
            _collect_steady(body, start_index, start_weekday,
                            steady_by_cell, exclude_spikes=True)
        else:
            _collect_steady(body, start_index, start_weekday,
                            steady_by_cell, exclude_spikes=False)

    n_databases = len(traces)
    state_periods = {
        key: (state_period_sums[key] / state_period_counts[key]
              if state_period_counts[key] else 0.0)
        for key in state_period_sums
    }
    return DeltaDiskDataset(
        steady_by_cell=steady_by_cell,
        initial_totals=initial_totals,
        initial_probability=initial_dbs / n_databases,
        rapid_increase=rapid_increase,
        rapid_decrease=rapid_decrease,
        rapid_probability=rapid_dbs / n_databases,
        rapid_state_periods=state_periods,
        steady_fraction=1.0 - (special_samples / max(total_samples, 1)),
    )


def _collect_steady(deltas: np.ndarray, offset_periods: int,
                    start_weekday: int,
                    steady_by_cell: Dict[Tuple[DayType, int], List[float]],
                    exclude_spikes: bool) -> None:
    """Append steady samples into their (day type, hour) cells."""
    if deltas.size == 0:
        return
    threshold = None
    if exclude_spikes:
        sigma = robust_sigma(deltas)
        threshold = RAPID_SPIKE_SIGMA * sigma if sigma > 0 else None
    for index, delta in enumerate(deltas):
        if threshold is not None and abs(float(delta)) > threshold:
            continue
        period = offset_periods + index
        hour = (period // PERIODS_PER_HOUR) % 24
        day = period // PERIODS_PER_DAY
        daytype = (DayType.WEEKEND if (start_weekday + day) % 7 >= 5
                   else DayType.WEEKDAY)
        steady_by_cell.setdefault((daytype, hour), []).append(float(delta))


def _extract_rapid(deltas: np.ndarray, increases: List[float],
                   decreases: List[float],
                   state_period_sums: Dict[str, float],
                   state_period_counts: Dict[str, int]) -> int:
    """Extract spike magnitudes and state durations from a rapid trace.

    Returns the number of samples attributed to the special pattern.
    """
    sigma = robust_sigma(deltas)
    if sigma == 0:
        return 0
    threshold = RAPID_SPIKE_SIGMA * sigma
    spike_samples = 0

    # Walk the series accumulating contiguous spike runs and the gaps
    # between them; a run of positive spikes is one "increase" state.
    state = "steady"
    run_total = 0.0
    run_length = 0
    gap_length = 0
    seen_increase = False

    def close_run(kind: str) -> None:
        nonlocal run_total, run_length
        if run_length == 0:
            return
        if kind == "increase":
            increases.append(run_total)
        else:
            decreases.append(abs(run_total))
        state_period_sums[kind] += run_length
        state_period_counts[kind] += 1
        run_total = 0.0
        run_length = 0

    for delta in deltas:
        value = float(delta)
        if value > threshold:
            if state == "decrease":
                close_run("decrease")
            if state != "increase" and gap_length:
                kind = "between" if seen_increase else "steady"
                state_period_sums[kind] += gap_length
                state_period_counts[kind] += 1
                gap_length = 0
            state = "increase"
            seen_increase = True
            run_total += value
            run_length += 1
            spike_samples += 1
        elif value < -threshold:
            if state == "increase":
                close_run("increase")
            if state != "decrease" and gap_length:
                state_period_sums["between"] += gap_length
                state_period_counts["between"] += 1
                gap_length = 0
            state = "decrease"
            run_total += value
            run_length += 1
            spike_samples += 1
        else:
            if state == "increase":
                close_run("increase")
                state = "steady"
            elif state == "decrease":
                close_run("decrease")
                state = "steady"
            gap_length += 1
    if state in ("increase", "decrease"):
        close_run(state)
    elif gap_length:
        kind = "steady" if not seen_increase else "steady"
        state_period_sums[kind] += gap_length
        state_period_counts[kind] += 1
    return spike_samples
