"""End-to-end model training (paper §4).

Produces exactly what the paper's pipeline produced: hourly-normal
Create/Drop models per edition, the composite disk-usage model per
edition (steady + initial + rapid), and a complete, serializable
:class:`repro.core.TotoModelDocument` ready to publish into a ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.core.create_drop import CreateDropModel
from repro.core.disk_models import (
    DiskUsageModel,
    INITIAL_GROWTH_DURATION,
    InitialGrowthSpec,
    RapidGrowthSpec,
)
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.model_base import BinnedUniform
from repro.core.model_xml import TotoModelDocument
from repro.core.population_models import (
    InitialDataSpec,
    PopulationModels,
    SloMix,
)
from repro.core.selectors import DatabaseSelector
from repro.models.delta_disk import DeltaDiskDataset, build_delta_disk_dataset
from repro.models.hourly import HourlyTrainingSets
from repro.sqldb.editions import Edition
from repro.sqldb.population import PopulationMix
from repro.stats.distributions import NormalDistribution
from repro.telemetry.production import (
    DiskUsageTrace,
    HourlyEventTrace,
    ProductionTraceGenerator,
)
from repro.telemetry.region import RegionProfile
from repro.units import DELTA_DISK_PERIOD


# ---------------------------------------------------------------------------
# Create / Drop models (§4.1)
# ---------------------------------------------------------------------------

def train_create_drop_model(create_trace: HourlyEventTrace,
                            drop_trace: HourlyEventTrace) -> CreateDropModel:
    """Fit the 2 x 24 hourly-normal schedules for one edition."""
    if create_trace.edition is not drop_trace.edition:
        raise TrainingError("create and drop traces are different editions")
    creates = HourlyTrainingSets.from_trace(create_trace).fit_schedule()
    drops = HourlyTrainingSets.from_trace(drop_trace).fit_schedule()
    _fill_missing_cells(creates)
    _fill_missing_cells(drops)
    return CreateDropModel(edition=create_trace.edition,
                           creates=creates, drops=drops)


def _fill_missing_cells(schedule: HourlyNormalSchedule) -> None:
    """Complete a schedule whose corpus lacked some (day type, hour).

    Short traces (e.g. a 5-weekday training window) leave weekend cells
    empty; fill them with the global mean so the schedule validates.
    """
    if schedule.is_complete:
        return
    if not schedule.cells:
        raise TrainingError("schedule has no trained cells at all")
    mus = [mu for mu, _ in schedule.cells.values()]
    sigmas = [sigma for _, sigma in schedule.cells.values()]
    fallback = (float(np.mean(mus)), float(np.mean(sigmas)))
    for daytype in DayType:
        for hour in range(24):
            if (daytype, hour) not in schedule.cells:
                schedule.set(daytype, hour, *fallback)


# ---------------------------------------------------------------------------
# Disk models (§4.2)
# ---------------------------------------------------------------------------

def train_disk_usage_model(dataset: DeltaDiskDataset,
                           selector: DatabaseSelector,
                           persisted: bool,
                           start_weekday: int = 0) -> DiskUsageModel:
    """Build the composite disk model from a Delta Disk dataset."""
    steady = HourlyNormalSchedule()
    for (daytype, hour), values in dataset.steady_by_cell.items():
        fitted = NormalDistribution.fit(values)
        steady.set(daytype, hour, fitted.mu, fitted.sigma)
    _fill_missing_cells(steady)

    initial_growth: Optional[InitialGrowthSpec] = None
    if dataset.initial_totals and dataset.initial_probability > 0:
        initial_growth = InitialGrowthSpec(
            probability=dataset.initial_probability,
            totals=BinnedUniform.from_sample(dataset.initial_totals),
            duration_seconds=INITIAL_GROWTH_DURATION,
        )

    rapid_growth: Optional[RapidGrowthSpec] = None
    if (dataset.rapid_increase and dataset.rapid_decrease
            and dataset.rapid_probability > 0):
        periods = dataset.rapid_state_periods

        def seconds(state: str, default_periods: float) -> int:
            value = periods.get(state, 0.0) or default_periods
            return max(int(round(value * DELTA_DISK_PERIOD)), DELTA_DISK_PERIOD)

        rapid_growth = RapidGrowthSpec(
            probability=dataset.rapid_probability,
            steady_duration=seconds("steady", 30.0),
            increase_duration=seconds("increase", 3.0),
            between_duration=seconds("between", 15.0),
            decrease_duration=seconds("decrease", 3.0),
            increase_totals=BinnedUniform.from_sample(dataset.rapid_increase),
            decrease_totals=BinnedUniform.from_sample(dataset.rapid_decrease),
        )

    return DiskUsageModel(selector=selector, steady=steady,
                          initial_growth=initial_growth,
                          rapid_growth=rapid_growth,
                          persisted=persisted,
                          start_weekday=start_weekday)


# ---------------------------------------------------------------------------
# Population models
# ---------------------------------------------------------------------------

def train_initial_data_spec(traces: List[DiskUsageTrace],
                            edition: Edition) -> InitialDataSpec:
    """Fit the lognormal initial-size distribution from trace starts."""
    starts = [trace.usage_gb[0] for trace in traces
              if trace.edition is edition and trace.usage_gb[0] > 0]
    if len(starts) < 3:
        raise TrainingError(
            f"too few {edition.value} traces ({len(starts)}) to fit sizes")
    logs = np.log(np.asarray(starts, dtype=float))
    # Size correlates with the purchased SLO: customers with large
    # databases buy large compute. The synthetic traces carry no SLO
    # dimension, so the exponent is a modeling constant — stronger for
    # local-store databases where data and compute scale together.
    core_exponent = 0.6 if edition is Edition.PREMIUM_BC else 0.3
    return InitialDataSpec(edition=edition,
                           mu=float(logs.mean()),
                           sigma=float(max(logs.std(), 1e-6)),
                           core_exponent=core_exponent)


def train_population_models(
        event_traces: Dict[Tuple[Edition, str], HourlyEventTrace],
        disk_traces: List[DiskUsageTrace],
        ring_count: int,
        mix: Optional[PopulationMix] = None) -> PopulationModels:
    """Assemble population models, scaled to one tenant ring.

    The SLO mix is demographic metadata the synthetic event traces do
    not carry, so it comes from a :class:`PopulationMix` (default: the
    Table 2 mix).
    """
    mix = mix if mix is not None else PopulationMix()
    population = PopulationModels()
    for edition in Edition:
        create = event_traces[(edition, "create")]
        drop = event_traces[(edition, "drop")]
        model = train_create_drop_model(create, drop)
        population.create_drop[edition] = model.scaled_to_ring(ring_count)
        population.slo_mix[edition] = SloMix(
            edition=edition, weights=mix.slo_weights(edition))
        population.initial_data[edition] = train_initial_data_spec(
            disk_traces, edition)
    population.validate()
    return population


# ---------------------------------------------------------------------------
# Full pipeline
# ---------------------------------------------------------------------------

@dataclass
class TrainingArtifacts:
    """Everything the training pipeline produced (for validation figures)."""

    document: TotoModelDocument
    event_traces: Dict[Tuple[Edition, str], HourlyEventTrace]
    disk_traces: List[DiskUsageTrace]
    datasets: Dict[Edition, DeltaDiskDataset] = field(default_factory=dict)


def train_model_document(profile: RegionProfile,
                         rng: np.random.Generator,
                         ring_count: Optional[int] = None,
                         training_days: int = 14,
                         disk_corpus_size: int = 400,
                         start_weekday: int = 0,
                         mix: Optional[PopulationMix] = None,
                         seed_salt: str = "trained") -> TrainingArtifacts:
    """Generate a training corpus and train a complete model document.

    This is the §4 pipeline end to end: synthesize the region's
    two-week telemetry, aggregate hourly, partition Delta Disk Usage,
    fit everything, and package resource + population models.
    """
    ring_count = ring_count if ring_count is not None \
        else profile.tenant_ring_count
    generator = ProductionTraceGenerator(profile, rng)
    event_traces = generator.create_and_drop_traces(
        days=training_days, start_weekday=start_weekday)
    disk_traces = generator.disk_corpus(
        n_databases=disk_corpus_size, days=training_days,
        start_weekday=start_weekday)

    datasets: Dict[Edition, DeltaDiskDataset] = {}
    resource_models = []
    for edition in Edition:
        edition_traces = [t for t in disk_traces if t.edition is edition]
        if not edition_traces:
            raise TrainingError(f"no disk traces for {edition.value}")
        dataset = build_delta_disk_dataset(edition_traces,
                                           start_weekday=start_weekday)
        datasets[edition] = dataset
        resource_models.append(train_disk_usage_model(
            dataset,
            selector=DatabaseSelector(edition=edition),
            # Local-store disk persists across failovers; remote-store
            # (tempdb) resets (§3.3.2).
            persisted=edition is Edition.PREMIUM_BC,
            start_weekday=start_weekday,
        ))

    population = train_population_models(event_traces, disk_traces,
                                         ring_count, mix)
    document = TotoModelDocument(resource_models=resource_models,
                                 population=population,
                                 seed_salt=seed_salt,
                                 start_weekday=start_weekday)
    return TrainingArtifacts(document=document, event_traces=event_traces,
                             disk_traces=disk_traces, datasets=datasets)
