"""Hourly aggregation and normality screening (paper §4.1).

The paper aggregates create/drop events to one-hour buckets ("if the
analysis was performed on the granularity of seconds or a minute,
there would be a low probability of a create or drop event
occurring"), groups them by (weekday/weekend, hour), and runs a K-S
normality test per group (Figure 7). :class:`HourlyTrainingSets` is
that grouping; :func:`ks_screening` reproduces the figure's p-values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import TrainingError
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.stats.distributions import NormalDistribution
from repro.stats.ks import KsTestResult, ks_normality_test
from repro.telemetry.production import HourlyEventTrace

Key = Tuple[DayType, int]


@dataclass
class HourlyTrainingSets:
    """The 48 per-(day type, hour) training samples for one trace."""

    groups: Dict[Key, List[float]]

    @classmethod
    def from_trace(cls, trace: HourlyEventTrace) -> "HourlyTrainingSets":
        groups: Dict[Key, List[float]] = {}
        for (weekend, hour), values in trace.hourly_samples().items():
            daytype = DayType.WEEKEND if weekend else DayType.WEEKDAY
            groups[(daytype, hour)] = [float(v) for v in values]
        return cls(groups=groups)

    def sample(self, daytype: DayType, hour: int) -> List[float]:
        key = (daytype, hour)
        if key not in self.groups:
            raise TrainingError(
                f"no training data for {daytype.value} hour {hour}")
        return self.groups[key]

    def fit_schedule(self) -> HourlyNormalSchedule:
        """Fit a normal per cell — the paper's "hourly normal" model."""
        schedule = HourlyNormalSchedule()
        for (daytype, hour), values in self.groups.items():
            fitted = NormalDistribution.fit(values)
            schedule.set(daytype, hour, fitted.mu, fitted.sigma)
        return schedule


def ks_screening(sets: HourlyTrainingSets,
                 daytype: DayType) -> List[Optional[KsTestResult]]:
    """K-S normality test per hour of one day type (Figure 7).

    Returns 24 entries; ``None`` marks hours whose sample was
    degenerate (too small or zero variance), which the paper's box
    plots simply omit.
    """
    results: List[Optional[KsTestResult]] = []
    for hour in range(24):
        key = (daytype, hour)
        values = sets.groups.get(key)
        if values is None:
            results.append(None)
            continue
        try:
            results.append(ks_normality_test(values))
        except TrainingError:
            results.append(None)
    return results


def ks_p_values(sets: HourlyTrainingSets, daytype: DayType) -> List[float]:
    """Just the defined p-values for one day type's 24 hours."""
    return [result.p_value
            for result in ks_screening(sets, daytype)
            if result is not None]
