"""Time and size units used throughout the reproduction.

Simulated time is measured in **integer seconds** from the start of the
scenario. Disk sizes are measured in **GB** (floats), CPU in **logical
cores** (ints for reservations, floats for utilization), and memory in
**GB**.

The helpers here convert between simulation timestamps and the calendar
features the paper's models key on (hour of day, weekday/weekend).
By convention a scenario starts at midnight on a Monday unless the
scenario specifies a different ``start_weekday``.
"""

from __future__ import annotations

SECOND = 1
MINUTE = 60 * SECOND
HOUR = 60 * MINUTE
DAY = 24 * HOUR
WEEK = 7 * DAY

#: Interval at which replicas report load metrics to the PLB (paper: each
#: replica reports "at some regular interval"; we default to 5 minutes).
DEFAULT_REPORT_INTERVAL = 5 * MINUTE

#: Interval at which RgManager re-reads the model XML from the Naming
#: Service (paper §3.3.1: "every 15 minutes").
MODEL_REFRESH_INTERVAL = 15 * MINUTE

#: Granularity at which the paper discretizes Delta Disk Usage (§4.2.1).
DELTA_DISK_PERIOD = 20 * MINUTE

GB = 1.0
TB = 1024.0 * GB
MB = GB / 1024.0

#: Hours in an average month, used to convert GB/month storage prices to
#: GB/hour (365.25 * 24 / 12).
HOURS_PER_MONTH = 730.5


def hour_of_day(timestamp: int) -> int:
    """Return the hour-of-day (0-23) for a simulation timestamp."""
    return (timestamp % DAY) // HOUR


def day_index(timestamp: int) -> int:
    """Return the number of whole days elapsed at ``timestamp``."""
    return timestamp // DAY


def weekday_index(timestamp: int, start_weekday: int = 0) -> int:
    """Return the weekday (0=Monday .. 6=Sunday) at ``timestamp``.

    ``start_weekday`` is the weekday of simulation time zero.
    """
    return (start_weekday + day_index(timestamp)) % 7


def is_weekend(timestamp: int, start_weekday: int = 0) -> bool:
    """True if ``timestamp`` falls on Saturday or Sunday."""
    return weekday_index(timestamp, start_weekday) >= 5


def hours(timestamp: int) -> float:
    """Convert a timestamp in seconds to fractional hours."""
    return timestamp / HOUR


def format_duration(seconds: int) -> str:
    """Render a duration like ``'2d 03:15:00'`` for logs and reports."""
    days, rem = divmod(int(seconds), DAY)
    hrs, rem = divmod(rem, HOUR)
    mins, secs = divmod(rem, MINUTE)
    if days:
        return f"{days}d {hrs:02d}:{mins:02d}:{secs:02d}"
    return f"{hrs:02d}:{mins:02d}:{secs:02d}"
