"""Simulated clock.

A thin mutable wrapper around the current simulation time, shared by the
kernel and every component that needs "now". Time never flows backwards.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.units import DAY, HOUR, format_duration


class SimClock:
    """Monotonic integer-second simulation clock."""

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current simulation time in seconds."""
        return self._now

    @property
    def hour_of_day(self) -> int:
        """Hour of day (0-23) at the current time."""
        return (self._now % DAY) // HOUR

    @property
    def elapsed_hours(self) -> float:
        """Fractional hours elapsed since time zero."""
        return self._now / HOUR

    def advance_to(self, timestamp: int) -> None:
        """Move the clock forward to ``timestamp``.

        Raises :class:`SimulationError` if that would move time backwards.
        """
        timestamp = int(timestamp)
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards: {timestamp} < {self._now}")
        self._now = timestamp

    def __repr__(self) -> str:
        return f"SimClock({format_duration(self._now)})"
