"""Discrete-event simulation kernel.

The paper runs each experiment in real time on a live stage cluster; we
replace wall-clock time with a deterministic event-driven clock so a
six-day benchmark finishes in seconds while every periodic behaviour
(metric reports every 5 minutes, model refresh every 15 minutes, the
Population Manager waking at the top of each hour) fires at exactly the
same simulated instants it would in the real deployment.
"""

from repro.simkernel.clock import SimClock
from repro.simkernel.event import Event, EventQueue
from repro.simkernel.kernel import KernelObserver, SimulationKernel
from repro.simkernel.process import PeriodicProcess

__all__ = [
    "Event",
    "EventQueue",
    "KernelObserver",
    "PeriodicProcess",
    "SimClock",
    "SimulationKernel",
]
