"""Periodic processes (daemons) on top of the kernel.

The system contains several strictly periodic actors: replicas report
load every report interval, RgManager refreshes model XML every 15
minutes, and the Population Manager "wakes up at the top of each hour"
(paper §3.3.3). :class:`PeriodicProcess` encapsulates the reschedule
loop so those actors are plain callables.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.simkernel.event import Event
from repro.simkernel.kernel import SimulationKernel

Tick = Callable[[int], None]


class PeriodicProcess:
    """Invokes ``tick(now)`` every ``period`` seconds once started."""

    __slots__ = ("_kernel", "period", "_tick", "label", "align_to_period",
                 "_next_event", "ticks_fired")

    def __init__(self, kernel: SimulationKernel, period: int, tick: Tick,
                 label: str = "periodic", align_to_period: bool = False) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._kernel = kernel
        self.period = int(period)
        self._tick = tick
        self.label = label
        self.align_to_period = align_to_period
        self._next_event: Optional[Event] = None
        self.ticks_fired = 0

    @property
    def running(self) -> bool:
        """True while the process has a pending tick scheduled."""
        return self._next_event is not None

    def start(self, first_at: Optional[int] = None) -> None:
        """Begin ticking.

        If ``align_to_period`` is set and ``first_at`` is omitted, the
        first tick lands on the next multiple of ``period`` (the
        Population Manager's "top of each hour"). Otherwise the first
        tick defaults to one period from now.
        """
        if self._next_event is not None:
            raise SimulationError(f"process '{self.label}' already started")
        now = self._kernel.now
        if first_at is None:
            if self.align_to_period:
                first_at = ((now // self.period) + 1) * self.period
            else:
                first_at = now + self.period
        self._next_event = self._kernel.schedule(first_at, self._fire,
                                                 label=self.label)

    def stop(self) -> None:
        """Cancel the pending tick; the process can be started again."""
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    def _fire(self) -> None:
        now = self._kernel.now
        # Reschedule before ticking so a tick that raises does not leave
        # the process half-stopped, and so a tick may call stop().
        self._next_event = self._kernel.schedule(now + self.period,
                                                 self._fire, label=self.label)
        self.ticks_fired += 1
        self._tick(now)
