"""Events and the pending-event queue (bucketed calendar queue).

Events are ordered by ``(time, sequence)``: events scheduled for the same
instant fire in scheduling order, which keeps runs fully deterministic
without relying on callback identity.

Hot-path layout: instead of a single binary heap of ``(time, sequence,
event)`` tuples, the queue keeps one FIFO *bucket* (a plain list) per
distinct timestamp plus a small min-heap of the distinct timestamps
themselves. Scheduling an event at an already-populated timestamp is a
dict lookup and a list append — no heap sift at all — and the heap only
ever holds one entry per distinct instant, so its size (and the cost of
the occasional ``heappush``) is bounded by the number of *distinct*
pending timestamps rather than the number of pending events. Because a
bucket is appended in scheduling order, iterating it front-to-back
replays the exact ``(time, sequence)`` order of the old heap; the kernel
exploits this to batch-fire a whole same-timestamp bucket per clock
advance (see :mod:`repro.simkernel.kernel`).

Sizing is counter-based so the push path carries no explicit size
update: ``_seq`` counts every entry ever pushed (it doubles as the
sequence source), ``_popped`` counts every entry consumed, and
``_cancelled`` counts cancelled debris still buried in buckets — so
``len(queue) == _seq - _popped - _cancelled``.

Cancellation keeps the lazy-debris semantics of the heap design:
cancelled events stay in their bucket until they surface, and once more
than half of all queued entries (and at least ``COMPACT_MIN``) are
cancelled debris, the queue compacts in one linear pass. Compaction is
deferred while the kernel is mid-batch (``_locked``) because it rewrites
the bucket lists the kernel iterates; when it runs, it rewrites the
bucket map and times heap *in place* — the kernel holds references to
both across a whole run.

Handle-free entries: the kernel's ``schedule_oneshot`` path appends the
*callback itself* to a bucket instead of an :class:`Event` — most
schedule sites discard the returned handle, and the Event allocation is
the single largest cost of scheduling. Queue scans therefore dispatch
on ``entry.__class__ is Event``; a raw entry is always live (it has no
cancel handle). :meth:`EventQueue.pop` synthesizes a handle (sequence
``-1``) when it surfaces a raw entry, so the pop-based API stays
uniform.

Labels may be passed as zero-argument callables so callers on the
scheduling fast path can defer string formatting until a trace or error
actually needs the label.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional, Union

from repro.errors import SimulationError

Callback = Callable[[], None]
#: Either the label itself or a zero-argument factory evaluated lazily.
Label = Union[str, Callable[[], str]]
#: What a bucket holds: cancellable events or handle-free raw callbacks.
Entry = Union["Event", Callback]


class Event:
    """A scheduled callback.

    Attributes:
        time: simulation timestamp at which the callback fires.
        sequence: tie-breaker preserving scheduling order.
        callback: the zero-argument callable to invoke.
        label: human-readable tag used in tracing and error messages;
            resolved on first access when scheduled lazily.
    """

    __slots__ = ("time", "sequence", "callback", "_label", "_queue")

    def __init__(self, time: int, sequence: int, callback: Callback,
                 label: Label = "",
                 queue: Optional["EventQueue"] = None) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self._label = label
        self._queue = queue

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` ran.

        Cancellation is stored as ``callback is None`` rather than in a
        separate slot: the fire loop has to load ``callback`` anyway,
        so the cancelled test rides along for free and event creation
        (the simulator's hottest allocation) saves one slot store.
        """
        return self.callback is None

    @property
    def label(self) -> str:
        label = self._label
        if not isinstance(label, str):
            label = label()
            self._label = label
        return label

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its bucket fires."""
        if self.callback is not None:
            self.callback = None
            if self._queue is not None:
                self._queue._note_cancelled()

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return (f"Event(t={self.time}, seq={self.sequence}, "
                f"label={self.label!r}{state})")


def _live_entries(entries: List[Entry]) -> List[Entry]:
    """A bucket's surviving entries: cancelled :class:`Event`s dropped.

    Raw-callback entries are never cancellable, so they always survive.
    """
    return [entry for entry in entries
            if entry.__class__ is not Event
            or entry.callback is not None]  # type: ignore[union-attr]


class EventQueue:
    """A calendar queue of :class:`Event` objects.

    Structure invariants:

    * ``_buckets[t]`` holds every pending entry scheduled at ``t`` in
      scheduling (= sequence) order; ``_times`` is a min-heap of exactly
      the keys of ``_buckets``.
    * ``_front`` is a consumption cursor into the *front* bucket only
      (``_times[0]``); entries before it have already been popped.
      Every other bucket is unconsumed.
    * ``_seq`` is the next sequence number == total entries ever
      pushed; ``_popped`` counts consumed entries (fired, popped, or
      skipped as debris); ``_cancelled`` counts cancelled debris still
      in buckets. ``len(queue) == _seq - _popped - _cancelled``.

    The kernel's batch-fire loop reads these internals directly (they
    are package-private, not API) and sets ``_locked`` while it iterates
    a bucket; ``_note_cancelled`` defers compaction until the bucket is
    released so the iterated list object is never swapped mid-batch.
    """

    __slots__ = ("_buckets", "_times", "_seq", "_popped", "_cancelled",
                 "_front", "_locked", "_compact_pending")

    #: Minimum cancelled-entry count before compaction is considered.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._buckets: Dict[int, List[Entry]] = {}
        self._times: List[int] = []
        self._seq = 0
        self._popped = 0
        self._cancelled = 0
        self._front = 0
        self._locked = False
        self._compact_pending = False

    def __len__(self) -> int:
        return self._seq - self._popped - self._cancelled

    def push(self, time: int, callback: Callback, label: Label = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if time < 0:
            raise SimulationError(f"cannot schedule at negative time {time}")
        time = int(time)
        sequence = self._seq
        self._seq = sequence + 1
        event = Event(time, sequence, callback, label, self)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heappush(self._times, time)
        else:
            bucket.append(event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None.

        A handle-free entry (see module docstring) is wrapped in a
        synthetic :class:`Event` with sequence ``-1`` so callers see a
        uniform type; its firing order is still exact.
        """
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets[time]
            i = self._front
            n = len(bucket)
            while i < n:
                entry = bucket[i]
                i += 1
                if entry.__class__ is Event:
                    if entry.callback is None:  # type: ignore[union-attr]
                        self._cancelled -= 1
                        self._popped += 1
                        continue
                else:
                    entry = Event(time, -1, entry, "", self)  # type: ignore[arg-type]
                self._front = i
                self._popped += 1
                return entry  # type: ignore[return-value]
            del buckets[time]
            heappop(times)
            self._front = 0
        return None

    def pop_before(self, end_time: int) -> Optional[Event]:
        """Pop the earliest live event strictly before ``end_time``.

        Returns None when the queue is empty or the earliest live event
        is at or past ``end_time`` (that event stays queued).
        """
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets[time]
            i = self._front
            n = len(bucket)
            while i < n:
                entry = bucket[i]
                i += 1
                if entry.__class__ is Event:
                    if entry.callback is None:  # type: ignore[union-attr]
                        self._cancelled -= 1
                        self._popped += 1
                        continue
                    if time >= end_time:
                        self._front = i - 1
                        return None
                else:
                    if time >= end_time:
                        self._front = i - 1
                        return None
                    entry = Event(time, -1, entry, "", self)  # type: ignore[arg-type]
                self._front = i
                self._popped += 1
                return entry  # type: ignore[return-value]
            del buckets[time]
            heappop(times)
            self._front = 0
        return None

    def peek_time(self) -> Optional[int]:
        """Return the timestamp of the earliest pending event, or None."""
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets[time]
            i = self._front
            n = len(bucket)
            while i < n:
                entry = bucket[i]
                if entry.__class__ is not Event \
                        or entry.callback is not None:  # type: ignore[union-attr]
                    self._front = i
                    return time
                i += 1
                self._cancelled -= 1
                self._popped += 1
            del buckets[time]
            heappop(times)
            self._front = 0
        return None

    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Account one newly cancelled entry; compact when dominated."""
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_MIN
                and self._cancelled * 2 > self._seq - self._popped):
            if self._locked:
                # The kernel is mid-batch iterating a bucket; rewriting
                # the bucket lists now would invalidate its iterator.
                self._compact_pending = True
            else:
                self.compact()

    def compact(self) -> None:
        """Drop all cancelled entries and rebuild (linear time).

        Rebuilds *in place*: the kernel's run loop binds the bucket map
        and the times heap once per run, so compaction must never swap
        the container objects out from under it.
        """
        if self._locked:
            self._compact_pending = True
            return
        if self._cancelled == 0:
            return
        buckets = self._buckets
        times = self._times
        front_time = times[0] if times else None
        size = 0
        emptied = []
        for time, entries in buckets.items():
            if time == front_time and self._front:
                entries_view: List[Entry] = entries[self._front:]
            else:
                entries_view = entries
            live = _live_entries(entries_view)
            if live:
                entries[:] = live
                size += len(live)
            else:
                emptied.append(time)
        for time in emptied:
            del buckets[time]
        times[:] = buckets
        heapify(times)
        self._popped = self._seq - size
        self._cancelled = 0
        self._front = 0

    def _release(self) -> None:
        """Run the compaction deferred while the kernel held a batch.

        The kernel clears ``_locked`` itself on the fast path; this is
        only called when ``_compact_pending`` was set mid-batch.
        """
        self._compact_pending = False
        if (self._cancelled >= self.COMPACT_MIN
                and self._cancelled * 2 > self._seq - self._popped):
            self.compact()

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still buried in the queue (for tests)."""
        return self._cancelled

    @property
    def entries_pending(self) -> int:
        """All queued entries including cancelled debris (for tests)."""
        return self._seq - self._popped
