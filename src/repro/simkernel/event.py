"""Events and the pending-event queue.

Events are ordered by ``(time, sequence)``: events scheduled for the same
instant fire in scheduling order, which keeps runs fully deterministic
without relying on callback identity.

Hot-path layout: the heap stores plain ``(time, sequence, event)``
tuples, so every sift comparison is an int-tuple comparison (the unique
sequence guarantees the :class:`Event` payload is never compared), and
:class:`Event` uses ``__slots__`` — a six-day benchmark schedules
hundreds of thousands of events and the per-event dict plus
dataclass-generated ``__lt__`` dominated the scheduling cost. Labels may
be passed as zero-argument callables so callers on the scheduling fast
path can defer string formatting until a trace or error actually needs
the label.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple, Union

from repro.errors import SimulationError

Callback = Callable[[], None]
#: Either the label itself or a zero-argument factory evaluated lazily.
Label = Union[str, Callable[[], str]]


class Event:
    """A scheduled callback.

    Attributes:
        time: simulation timestamp at which the callback fires.
        sequence: tie-breaker preserving scheduling order.
        callback: the zero-argument callable to invoke.
        label: human-readable tag used in tracing and error messages;
            resolved on first access when scheduled lazily.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled",
                 "_label", "_queue")

    def __init__(self, time: int, sequence: int, callback: Callback,
                 label: Label = "") -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._label = label
        self._queue: Optional["EventQueue"] = None

    @property
    def label(self) -> str:
        label = self._label
        if not isinstance(label, str):
            label = label()
            self._label = label
        return label

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._note_cancelled()

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return (f"Event(t={self.time}, seq={self.sequence}, "
                f"label={self.label!r}{state})")


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    Cancelled events stay in the heap until they surface at the top —
    except that once more than half the heap (and at least
    ``COMPACT_MIN`` entries) is cancelled debris, the queue compacts
    itself in one linear pass, so long runs with many cancelled timers
    do not hold dead events or pay for sifting past them.
    """

    __slots__ = ("_heap", "_counter", "_cancelled")

    #: Minimum cancelled-entry count before compaction is considered.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def push(self, time: int, callback: Callback, label: Label = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if time < 0:
            raise SimulationError(f"cannot schedule at negative time {time}")
        time = int(time)
        event = Event(time, next(self._counter), callback, label)
        event._queue = self
        heapq.heappush(self._heap, (time, event.sequence, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                return event
            self._cancelled -= 1
        return None

    def pop_before(self, end_time: int) -> Optional[Event]:
        """Pop the earliest live event strictly before ``end_time``.

        Returns None when the queue is empty or the earliest live event
        is at or past ``end_time`` (that event stays queued). This is
        the kernel's run-loop primitive: one heap traversal instead of a
        peek followed by a pop.
        """
        heap = self._heap
        while heap:
            first = heap[0]
            event = first[2]
            if event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            if first[0] >= end_time:
                return None
            heapq.heappop(heap)
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the timestamp of the earliest pending event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if heap:
            return heap[0][0]
        return None

    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Account one newly cancelled entry; compact when dominated."""
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_MIN
                and self._cancelled * 2 > len(self._heap)):
            self.compact()

    def compact(self) -> None:
        """Drop all cancelled entries and re-heapify (linear time)."""
        if self._cancelled == 0:
            return
        self._heap = [entry for entry in self._heap
                      if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still buried in the heap (for tests)."""
        return self._cancelled
