"""Events and the pending-event queue.

Events are ordered by ``(time, sequence)``: events scheduled for the same
instant fire in scheduling order, which keeps runs fully deterministic
without relying on callback identity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError

Callback = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulation timestamp at which the callback fires.
        sequence: tie-breaker preserving scheduling order.
        callback: the zero-argument callable to invoke (excluded from
            ordering comparisons).
        label: human-readable tag used in tracing and error messages.
    """

    time: int
    sequence: int
    callback: Callback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if time < 0:
            raise SimulationError(f"cannot schedule at negative time {time}")
        event = Event(time=int(time), sequence=next(self._counter),
                      callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the timestamp of the earliest pending event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None
