"""The simulation kernel: clock + event queue + run loop."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError
from repro.simkernel.clock import SimClock
from repro.simkernel.event import Callback, Event, EventQueue, Label

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.analysis.detsan import DetSanRecorder


class SimulationKernel:
    """Drives a discrete-event simulation to completion.

    Components schedule callbacks with :meth:`schedule` (absolute time)
    or :meth:`schedule_after` (relative delay); :meth:`run_until`
    executes events in timestamp order, advancing the shared clock.

    ``detsan`` optionally attaches the runtime determinism sanitizer
    (:mod:`repro.analysis.detsan`): every scheduling is then appended
    to its ordered ledger.  Off by default and costs one ``is None``
    test per scheduling when off.
    """

    __slots__ = ("clock", "_queue", "_running", "events_executed",
                 "_detsan")

    def __init__(self, start: int = 0,
                 detsan: Optional["DetSanRecorder"] = None) -> None:
        self.clock = SimClock(start)
        self._queue = EventQueue()
        self._running = False
        self.events_executed = 0
        self._detsan = detsan

    @property
    def now(self) -> int:
        """Current simulation time in seconds."""
        return self.clock.now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire."""
        return len(self._queue)

    def schedule(self, time: int, callback: Callback,
                 label: Label = "") -> Event:
        """Schedule ``callback`` at absolute time ``time``.

        ``label`` may be a string or a zero-argument callable resolved
        lazily — hot-path callers avoid formatting strings per event.
        """
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule '{label}' at {time}, now is {self.clock.now}")
        if self._detsan is not None:
            self._detsan.record_event(time, label)
        return self._queue.push(time, callback, label)

    def schedule_after(self, delay: int, callback: Callback,
                       label: Label = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for '{label}'")
        if self._detsan is not None:
            self._detsan.record_event(self.clock.now + delay, label)
        return self._queue.push(self.clock.now + delay, callback, label)

    def run_until(self, end_time: int) -> None:
        """Execute events in order until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are *not* executed, so
        consecutive ``run_until`` calls partition time into half-open
        intervals ``[start, end)``. The clock always finishes at
        ``end_time`` even if the queue drains early.
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        if end_time < self.clock.now:
            raise SimulationError(
                f"end_time {end_time} is before now {self.clock.now}")
        self._running = True
        # Bind hot attributes once: the loop below runs for every event
        # of a multi-day benchmark.
        queue_pop_before = self._queue.pop_before
        clock_advance = self.clock.advance_to
        executed = 0
        try:
            while True:
                event = queue_pop_before(end_time)
                if event is None:
                    break
                clock_advance(event.time)
                event.callback()
                executed += 1
            clock_advance(end_time)
        finally:
            self.events_executed += executed
            self._running = False

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        """Execute every pending event (bounded by ``max_events``)."""
        if self._running:
            raise SimulationError("run_to_completion is not re-entrant")
        self._running = True
        try:
            executed = 0
            while True:
                event = self._queue.pop()
                if event is None:
                    break
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a scheduling loop")
                self.clock.advance_to(event.time)
                event.callback()
                self.events_executed += 1
        finally:
            self._running = False
