"""The simulation kernel: clock + event queue + run loop.

Perf notes (this file is the simulator's hottest code): the run loop
batch-fires whole same-timestamp buckets of the calendar queue
(:mod:`repro.simkernel.event`), advancing the clock once per distinct
instant; scheduling inlines the queue insert and the event allocation.
A kernel constructed without ``detsan``/``observer`` swaps itself to the
uninstrumented fast class so the hot path carries no per-call
instrumentation checks at all — mirroring the module's long-standing
rule that instrumentation must not slow the unobserved run.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Optional, Protocol

from repro.errors import SimulationError
from repro.simkernel.clock import SimClock
from repro.simkernel.event import Callback, Event, EventQueue, Label

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.analysis.detsan import DetSanRecorder

class KernelObserver(Protocol):
    """Passive instrumentation hooks for the kernel's run loop.

    An observer (e.g. :class:`repro.obs.session.ObsSession`) watches
    events flow through the kernel: ``event_scheduled`` fires at each
    schedule site (after the queue push), ``event_begin``/``event_end``
    bracket each callback execution. Observers must be pure — they may
    not schedule events, draw RNG, or mutate simulation state; the
    kernel's event count and ordering are identical with or without
    one attached.
    """

    def event_scheduled(self, event: Event, now: int) -> None:
        """Called after ``event`` is pushed, with the scheduling time."""

    def event_begin(self, event: Event) -> None:
        """Called immediately before ``event.callback()`` runs."""

    def event_end(self, event: Event) -> None:
        """Called after ``event.callback()`` returns (or raises)."""


class SimulationKernel:
    """Drives a discrete-event simulation to completion.

    Components schedule callbacks with :meth:`schedule` (absolute time)
    or :meth:`schedule_after` (relative delay); :meth:`run_until`
    executes events in timestamp order, advancing the shared clock.

    The run loop batch-fires whole same-timestamp buckets of the
    calendar queue: the clock advances once per distinct instant and
    the bucket is drained with a plain list iterator — which picks up
    appends made while iterating, so callbacks that schedule further
    work *at the current instant* join the same batch, reproducing
    exactly the order the old per-event heap pop produced.

    ``detsan`` optionally attaches the runtime determinism sanitizer
    (:mod:`repro.analysis.detsan`): every scheduling is then appended
    to its ordered ledger. ``observer`` optionally attaches a
    :class:`KernelObserver` (run observability, docs/OBSERVABILITY.md).
    Either one moves the kernel onto the instrumented subclass; a bare
    kernel pays nothing for instrumentation it does not carry.
    """

    __slots__ = ("clock", "_now", "_queue", "_running", "events_executed",
                 "_detsan", "_observer")

    def __init__(self, start: int = 0,
                 detsan: Optional["DetSanRecorder"] = None,
                 observer: Optional[KernelObserver] = None) -> None:
        self.clock = SimClock(start)
        #: Mirror of ``clock._now``: the schedule fast path reads it
        #: with one attribute hop. The kernel is the only writer of the
        #: clock, so the two stay in lock-step.
        self._now = self.clock._now
        self._queue = EventQueue()
        self._running = False
        self.events_executed = 0
        self._detsan = detsan
        self._observer = observer
        if detsan is not None or observer is not None:
            # Same slot layout, instrumentation-aware method bodies.
            self.__class__ = _InstrumentedKernel

    @property
    def now(self) -> int:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire."""
        return len(self._queue)

    def schedule(self, time: int, callback: Callback,
                 label: Label = "") -> Event:
        """Schedule ``callback`` at absolute time ``time``.

        ``label`` may be a string or a zero-argument callable resolved
        lazily — hot-path callers avoid formatting strings per event.
        """
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule '{label}' at {time}, now is {now}")
        if time.__class__ is not int:
            time = int(time)
        queue = self._queue
        sequence = queue._seq
        queue._seq = sequence + 1
        event = Event(time, sequence, callback, label, queue)
        buckets = queue._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [event]
            heappush(queue._times, time)
        else:
            bucket.append(event)
        return event

    def schedule_after(self, delay: int, callback: Callback,
                       label: Label = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for '{label}'")
        time = self._now + delay
        if time.__class__ is not int:
            time = int(time)
        queue = self._queue
        sequence = queue._seq
        queue._seq = sequence + 1
        event = Event(time, sequence, callback, label, queue)
        buckets = queue._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [event]
            heappush(queue._times, time)
        else:
            bucket.append(event)
        return event

    def schedule_oneshot(self, time: int, callback: Callback,
                          label: Label = "") -> None:
        """Schedule a fire-and-forget callback at absolute ``time``.

        Semantically :meth:`schedule` with the handle thrown away —
        use it when the caller never cancels. The callback is stored
        in the calendar bucket *directly*, skipping the per-event
        handle allocation that dominates scheduling cost; ordering
        relative to handle-bearing events is unchanged (bucket
        position is the sequence). ``label`` is accepted for API
        symmetry; only instrumented kernels materialize it.
        """
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule '{label}' at {time}, now is {now}")
        if time.__class__ is not int:
            time = int(time)
        queue = self._queue
        queue._seq += 1
        buckets = queue._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [callback]
            heappush(queue._times, time)
        else:
            bucket.append(callback)

    def schedule_oneshot_after(self, delay: int, callback: Callback,
                               label: Label = "") -> None:
        """Schedule a fire-and-forget callback ``delay`` s from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for '{label}'")
        time = self._now + delay
        if time.__class__ is not int:
            time = int(time)
        queue = self._queue
        queue._seq += 1
        buckets = queue._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [callback]
            heappush(queue._times, time)
        else:
            bucket.append(callback)

    def run_until(self, end_time: int) -> None:
        """Execute events in order until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are *not* executed, so
        consecutive ``run_until`` calls partition time into half-open
        intervals ``[start, end)``. The clock always finishes at
        ``end_time`` even if the queue drains early.
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        clock = self.clock
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time} is before now {self._now}")
        self._running = True
        # Bind hot attributes once; the queue internals (buckets, times
        # heap, accounting counters) are deliberately mutated in-line
        # rather than through per-event method calls.
        queue = self._queue
        times = queue._times
        buckets = queue._buckets
        executed = 0
        try:
            while times:
                time = times[0]
                if time >= end_time:
                    break
                bucket = buckets[time]
                # Direct store: the heap front is never in the past
                # (schedule validates against now), so the backwards
                # check in advance_to is redundant here.
                clock._now = self._now = time
                if queue._front:
                    # Rare: pops consumed a prefix of this bucket before
                    # the run loop got here; drop it so the iterator
                    # starts at the live tail.
                    del bucket[:queue._front]
                    queue._front = 0
                dead = 0
                queue._locked = True
                try:
                    for entry in bucket:
                        if entry.__class__ is Event:
                            callback = entry.callback
                            if callback is None:
                                dead += 1
                                continue
                            callback()
                        else:
                            # Handle-free one-shot: the entry IS the
                            # callback (see schedule_oneshot).
                            entry()
                except BaseException:
                    # Recover the position of the failing event so a
                    # subsequent run resumes from the unfired tail; the
                    # failing event itself is consumed but not counted
                    # as executed (matching the old per-pop loop). With
                    # handle-free entries index() matches by identity;
                    # if the *same* callback object was one-shot
                    # scheduled twice at this instant the resume point
                    # is the first occurrence — exactness is only
                    # guaranteed for handle-bearing events.
                    consumed = bucket.index(entry) + 1
                    executed += consumed - dead - 1
                    queue._popped += consumed
                    queue._cancelled -= dead
                    del bucket[:consumed]
                    queue._locked = False
                    if queue._compact_pending:
                        queue._release()
                    raise
                consumed = len(bucket)
                executed += consumed - dead
                queue._popped += consumed
                queue._cancelled -= dead
                del buckets[time]
                # The firing bucket is always the heap front: callbacks
                # can only schedule at >= the current instant, so
                # times[0] still equals ``time``.
                heappop(times)
                queue._locked = False
                if queue._compact_pending:
                    queue._release()
            clock.advance_to(end_time)
            self._now = end_time
        finally:
            self.events_executed += executed
            self._running = False

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        """Execute every pending event (bounded by ``max_events``)."""
        if self._running:
            raise SimulationError("run_to_completion is not re-entrant")
        self._running = True
        observer = self._observer
        try:
            executed = 0
            while True:
                event = self._queue.pop()
                if event is None:
                    break
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a scheduling loop")
                self.clock.advance_to(event.time)
                self._now = event.time
                if observer is None:
                    event.callback()
                else:
                    observer.event_begin(event)
                    try:
                        event.callback()
                    finally:
                        observer.event_end(event)
                self.events_executed += 1
        finally:
            self._running = False


class _InstrumentedKernel(SimulationKernel):
    """Kernel variant carrying detsan and/or observer instrumentation.

    Selected automatically by :class:`SimulationKernel.__init__`; never
    instantiated directly. Method bodies match the fast class except
    for the detsan ledger appends and observer hooks. Keeping the two
    apart lets the bare kernel's schedule/run loop skip even the
    ``is None`` tests — instrumented runs (golden replays, observed
    runs) accept the small overhead by definition.
    """

    __slots__ = ()

    def schedule(self, time: int, callback: Callback,
                 label: Label = "") -> Event:
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule '{label}' at {time}, now is {now}")
        if time.__class__ is not int:
            time = int(time)
        if self._detsan is not None:
            self._detsan.record_event(time, label)
        queue = self._queue
        sequence = queue._seq
        queue._seq = sequence + 1
        event = Event(time, sequence, callback, label, queue)
        buckets = queue._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [event]
            heappush(queue._times, time)
        else:
            bucket.append(event)
        if self._observer is not None:
            self._observer.event_scheduled(event, now)
        return event

    def schedule_after(self, delay: int, callback: Callback,
                       label: Label = "") -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for '{label}'")
        now = self._now
        time = now + delay
        if time.__class__ is not int:
            time = int(time)
        if self._detsan is not None:
            self._detsan.record_event(time, label)
        queue = self._queue
        sequence = queue._seq
        queue._seq = sequence + 1
        event = Event(time, sequence, callback, label, queue)
        buckets = queue._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [event]
            heappush(queue._times, time)
        else:
            bucket.append(event)
        if self._observer is not None:
            self._observer.event_scheduled(event, now)
        return event

    def schedule_oneshot(self, time: int, callback: Callback,
                          label: Label = "") -> None:
        # Instrumented runs keep the full Event path so detsan records,
        # observer hooks, and labels are preserved verbatim.
        self.schedule(time, callback, label)

    def schedule_oneshot_after(self, delay: int, callback: Callback,
                               label: Label = "") -> None:
        self.schedule_after(delay, callback, label)

    def run_until(self, end_time: int) -> None:
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        clock = self.clock
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time} is before now {self._now}")
        self._running = True
        queue = self._queue
        times = queue._times
        buckets = queue._buckets
        observer = self._observer
        executed = 0
        try:
            while times:
                time = times[0]
                if time >= end_time:
                    break
                bucket = buckets[time]
                clock._now = self._now = time
                if queue._front:
                    del bucket[:queue._front]
                    queue._front = 0
                dead = 0
                queue._locked = True
                try:
                    if observer is None:
                        for entry in bucket:
                            if entry.__class__ is Event:
                                callback = entry.callback
                                if callback is None:
                                    dead += 1
                                    continue
                                callback()
                            else:
                                entry()
                    else:
                        for entry in bucket:
                            if entry.__class__ is not Event:
                                entry()
                                continue
                            if entry.callback is None:
                                dead += 1
                                continue
                            observer.event_begin(entry)
                            try:
                                entry.callback()
                            finally:
                                observer.event_end(entry)
                except BaseException:
                    consumed = bucket.index(entry) + 1
                    executed += consumed - dead - 1
                    queue._popped += consumed
                    queue._cancelled -= dead
                    del bucket[:consumed]
                    queue._locked = False
                    if queue._compact_pending:
                        queue._release()
                    raise
                consumed = len(bucket)
                executed += consumed - dead
                queue._popped += consumed
                queue._cancelled -= dead
                del buckets[time]
                heappop(times)
                queue._locked = False
                if queue._compact_pending:
                    queue._release()
            clock.advance_to(end_time)
            self._now = end_time
        finally:
            self.events_executed += executed
            self._running = False
