"""The simulation kernel: clock + event queue + run loop."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

from repro.errors import SimulationError
from repro.simkernel.clock import SimClock
from repro.simkernel.event import Callback, Event, EventQueue, Label

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.analysis.detsan import DetSanRecorder


class KernelObserver(Protocol):
    """Passive instrumentation hooks for the kernel's run loop.

    An observer (e.g. :class:`repro.obs.session.ObsSession`) watches
    events flow through the kernel: ``event_scheduled`` fires at each
    schedule site (after the queue push), ``event_begin``/``event_end``
    bracket each callback execution. Observers must be pure — they may
    not schedule events, draw RNG, or mutate simulation state; the
    kernel's event count and ordering are identical with or without
    one attached.
    """

    def event_scheduled(self, event: Event, now: int) -> None:
        """Called after ``event`` is pushed, with the scheduling time."""

    def event_begin(self, event: Event) -> None:
        """Called immediately before ``event.callback()`` runs."""

    def event_end(self, event: Event) -> None:
        """Called after ``event.callback()`` returns (or raises)."""


class SimulationKernel:
    """Drives a discrete-event simulation to completion.

    Components schedule callbacks with :meth:`schedule` (absolute time)
    or :meth:`schedule_after` (relative delay); :meth:`run_until`
    executes events in timestamp order, advancing the shared clock.

    ``detsan`` optionally attaches the runtime determinism sanitizer
    (:mod:`repro.analysis.detsan`): every scheduling is then appended
    to its ordered ledger.  Off by default and costs one ``is None``
    test per scheduling when off.

    ``observer`` optionally attaches a :class:`KernelObserver` (run
    observability, docs/OBSERVABILITY.md). The run loop keeps a
    separate observed variant so the unobserved hot path is unchanged.
    """

    __slots__ = ("clock", "_queue", "_running", "events_executed",
                 "_detsan", "_observer")

    def __init__(self, start: int = 0,
                 detsan: Optional["DetSanRecorder"] = None,
                 observer: Optional[KernelObserver] = None) -> None:
        self.clock = SimClock(start)
        self._queue = EventQueue()
        self._running = False
        self.events_executed = 0
        self._detsan = detsan
        self._observer = observer

    @property
    def now(self) -> int:
        """Current simulation time in seconds."""
        return self.clock.now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire."""
        return len(self._queue)

    def schedule(self, time: int, callback: Callback,
                 label: Label = "") -> Event:
        """Schedule ``callback`` at absolute time ``time``.

        ``label`` may be a string or a zero-argument callable resolved
        lazily — hot-path callers avoid formatting strings per event.
        """
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule '{label}' at {time}, now is {self.clock.now}")
        if self._detsan is not None:
            self._detsan.record_event(time, label)
        event = self._queue.push(time, callback, label)
        if self._observer is not None:
            self._observer.event_scheduled(event, self.clock.now)
        return event

    def schedule_after(self, delay: int, callback: Callback,
                       label: Label = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for '{label}'")
        if self._detsan is not None:
            self._detsan.record_event(self.clock.now + delay, label)
        event = self._queue.push(self.clock.now + delay, callback, label)
        if self._observer is not None:
            self._observer.event_scheduled(event, self.clock.now)
        return event

    def run_until(self, end_time: int) -> None:
        """Execute events in order until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are *not* executed, so
        consecutive ``run_until`` calls partition time into half-open
        intervals ``[start, end)``. The clock always finishes at
        ``end_time`` even if the queue drains early.
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        if end_time < self.clock.now:
            raise SimulationError(
                f"end_time {end_time} is before now {self.clock.now}")
        self._running = True
        # Bind hot attributes once: the loop below runs for every event
        # of a multi-day benchmark.
        queue_pop_before = self._queue.pop_before
        clock_advance = self.clock.advance_to
        observer = self._observer
        executed = 0
        try:
            if observer is None:
                while True:
                    event = queue_pop_before(end_time)
                    if event is None:
                        break
                    clock_advance(event.time)
                    event.callback()
                    executed += 1
            else:
                while True:
                    event = queue_pop_before(end_time)
                    if event is None:
                        break
                    clock_advance(event.time)
                    observer.event_begin(event)
                    try:
                        event.callback()
                    finally:
                        observer.event_end(event)
                    executed += 1
            clock_advance(end_time)
        finally:
            self.events_executed += executed
            self._running = False

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        """Execute every pending event (bounded by ``max_events``)."""
        if self._running:
            raise SimulationError("run_to_completion is not re-entrant")
        self._running = True
        observer = self._observer
        try:
            executed = 0
            while True:
                event = self._queue.pop()
                if event is None:
                    break
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a scheduling loop")
                self.clock.advance_to(event.time)
                if observer is None:
                    event.callback()
                else:
                    observer.event_begin(event)
                    try:
                        event.callback()
                    finally:
                        observer.event_end(event)
                self.events_executed += 1
        finally:
            self._running = False
