"""Toto's orchestrator component (paper §3.3.1).

Serializes the model document into XML, writes it into the Naming
Service, and runs the per-node refresh loop: every RgManager re-reads
the blob every 15 minutes, parses it, and constructs fresh model
objects. Overwriting the XML is how an experiment "officially begins"
(§5.2) and how behaviour is re-tuned mid-run ("grow disk usage of
Premium/BC replicas 2x faster is easily configurable simply by
changing XML properties", §3.3.1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.model_base import TotoModelSet
from repro.errors import NamingUnavailableError
from repro.fabric.naming import NamingService
from repro.core.model_xml import (
    TotoModelDocument,
    parse_model_xml,
    serialize_model_xml,
)
from repro.simkernel import PeriodicProcess, SimulationKernel
from repro.sqldb.tenant_ring import TenantRing
from repro.units import MODEL_REFRESH_INTERVAL

#: Naming-Service key under which the serialized models live.
MODEL_XML_KEY = "toto/models/xml"


class TotoOrchestrator:
    """Injects behaviour models into every node's RgManager."""

    def __init__(self, kernel: SimulationKernel, ring: TenantRing,
                 refresh_interval: int = MODEL_REFRESH_INTERVAL) -> None:
        self._kernel = kernel
        self._ring = ring
        self.refresh_interval = refresh_interval
        self._refreshers: List[PeriodicProcess] = [
            PeriodicProcess(kernel, refresh_interval,
                            self._make_refresh(rgmanager),
                            label=f"model-refresh-node-{rgmanager.node_id}")
            for rgmanager in ring.rgmanagers
        ]
        self.documents_published = 0
        #: Blob-version-keyed parse cache: every node refreshing against
        #: the same published version installs one shared (stateless,
        #: see :mod:`repro.core.model_base`) model set instead of
        #: re-reading and re-parsing the identical XML N times.
        self._parsed_version = 0
        self._parsed_model_set: Optional[TotoModelSet] = None
        #: How many times the orchestrator actually parsed the blob.
        self.parses = 0
        #: Refreshes skipped because the Naming Service stayed
        #: unreachable past the retry budget; the node keeps running
        #: its last-known-good models (graceful degradation).
        self.refreshes_degraded = 0

    # ------------------------------------------------------------------

    @property
    def naming(self) -> NamingService:
        return self._ring.cluster.naming

    def start(self) -> None:
        """Begin the 15-minute refresh loops on every node."""
        for refresher in self._refreshers:
            if not refresher.running:
                refresher.start()

    def stop(self) -> None:
        for refresher in self._refreshers:
            refresher.stop()

    # ------------------------------------------------------------------

    def publish_models(self, document: TotoModelDocument,
                       propagate_now: bool = False) -> int:
        """Write the serialized model XML into the Naming Service.

        Nodes pick the change up on their next 15-minute refresh; pass
        ``propagate_now=True`` to force an immediate refresh on every
        node (used at experiment start so all nodes begin the benchmark
        with identical models).
        Returns the new blob version.
        """
        xml = serialize_model_xml(document)
        version = self.naming.put(MODEL_XML_KEY, xml)
        self.documents_published += 1
        if propagate_now:
            self.refresh_all_nodes()
        return version

    def clear_models(self, propagate_now: bool = False) -> None:
        """Remove the blob; RgManagers fall back to actual loads."""
        self.naming.delete_if_exists(MODEL_XML_KEY)
        if propagate_now:
            self.refresh_all_nodes()

    def current_document(self) -> Optional[TotoModelDocument]:
        """Parse and return the currently published document, if any."""
        xml = self.naming.get_or_default(MODEL_XML_KEY)
        if xml is None:
            return None
        return parse_model_xml(xml)

    def refresh_all_nodes(self) -> None:
        """Force every RgManager to re-read the XML immediately."""
        for rgmanager in self._ring.rgmanagers:
            self._refresh_one(rgmanager)

    # ------------------------------------------------------------------

    def _make_refresh(self, rgmanager):
        def refresh(now: int) -> None:
            self._refresh_one(rgmanager)
        return refresh

    def _refresh_one(self, rgmanager) -> None:
        """One node's refresh: skip the parse when the blob is unchanged.

        A metastore outage that outlasts the retry budget leaves the
        node on its last-known-good model blob — the refresh simply
        happens 15 minutes later.
        """
        try:
            version = self.naming.version(MODEL_XML_KEY)
            if version == rgmanager.model_version:
                return
            if version == 0:
                rgmanager.install_models(None, 0)
                return
            rgmanager.install_models(self._model_set_for(version), version)
        except NamingUnavailableError:
            self.refreshes_degraded += 1

    def _model_set_for(self, version: int) -> TotoModelSet:
        """Parse the published blob once per version (cached).

        Versions are strictly monotonic per key (the Naming Service
        never reuses them, even across delete/re-publish), so a single
        latest-version slot is a complete cache.
        """
        if version != self._parsed_version or self._parsed_model_set is None:
            xml = self.naming.get(MODEL_XML_KEY)
            document = parse_model_xml(xml)
            self._parsed_model_set = TotoModelSet(document.resource_models)
            self._parsed_version = version
            self.parses += 1
        return self._parsed_model_set
