"""Toto — the paper's primary contribution.

Two cooperating components (paper §3.3):

* the **orchestrator** (:mod:`repro.core.orchestrator`) — injects
  behaviour models into every node's RgManager by writing a serialized
  model XML blob into the Naming Service; RgManagers re-read it every
  15 minutes and answer metric-report RPCs by *sampling the models*
  instead of returning real utilization;
* the **Population Manager** (:mod:`repro.core.population_manager`) —
  a stateless daemon that wakes at the top of each hour, samples the
  Create-DB/Drop-DB models, and schedules control-plane CRUD calls for
  the next hour.

Model implementations live beside them: hourly-normal create/drop
rates (§4.1), the steady-state / initial-creation / predictable-rapid
disk growth patterns (§4.2), and the memory/CPU models the paper lists
as future work (§5.5). Scenarios are declared with
:class:`repro.core.scenario.BenchmarkScenario` and executed by
:class:`repro.core.runner.BenchmarkRunner`.
"""

from repro.core.create_drop import CreateDropModel
from repro.core.disk_models import (
    DiskUsageModel,
    InitialGrowthSpec,
    RapidGrowthSpec,
)
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.model_base import (
    BinnedUniform,
    ModelContext,
    ResourceModel,
    TotoModelSet,
)
from repro.core.model_xml import (
    TotoModelDocument,
    parse_model_xml,
    serialize_model_xml,
)
from repro.core.memory_model import MemoryUsageModel
from repro.core.cpu_model import CpuUsageModel
from repro.core.orchestrator import MODEL_XML_KEY, TotoOrchestrator
from repro.core.population_manager import CreateRequest, PopulationManager
from repro.core.population_models import (
    InitialDataSpec,
    PopulationModels,
    SloMix,
)
from repro.core.runner import BenchmarkResult, BenchmarkRunner, run_scenario
from repro.core.scenario import BenchmarkScenario, ScriptedCreate
from repro.core.selectors import DatabaseSelector

__all__ = [
    "BenchmarkResult",
    "BenchmarkRunner",
    "BenchmarkScenario",
    "BinnedUniform",
    "CpuUsageModel",
    "CreateDropModel",
    "CreateRequest",
    "DatabaseSelector",
    "DayType",
    "DiskUsageModel",
    "HourlyNormalSchedule",
    "InitialDataSpec",
    "InitialGrowthSpec",
    "MODEL_XML_KEY",
    "MemoryUsageModel",
    "ModelContext",
    "PopulationManager",
    "PopulationModels",
    "RapidGrowthSpec",
    "ResourceModel",
    "ScriptedCreate",
    "SloMix",
    "TotoModelDocument",
    "TotoOrchestrator",
    "TotoModelSet",
    "parse_model_xml",
    "run_scenario",
    "serialize_model_xml",
]
