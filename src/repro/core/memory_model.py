"""Memory-usage model (paper §3.3.2 and §5.5).

The paper implements disk modeling and leaves memory/CPU "as future
work", but it is explicit about the required semantics: memory is a
*non-persisted* metric — "in production after a failover the memory
load of a newly promoted primary will be smaller than the memory load
of the previous primary (because the new primary wasn't servicing
queries before)", so the model samples "using a default memory load
value that describes a cold buffer pool". Models for local-store
databases must also "be distinct for the primary and secondary
replicas" (§3.3.2).

We implement that future-work model: an exponential warm-up from a
cold buffer pool toward a target fraction of the SLO's memory grant,
with secondaries warming to a lower target than primaries.
"""

from __future__ import annotations

import math

from repro.errors import ModelSpecError
from repro.core.model_base import ModelContext, ResourceModel
from repro.core.selectors import DatabaseSelector
from repro.fabric.metrics import MEMORY_GB
from repro.sqldb.editions import COLD_BUFFER_POOL_GB
from repro.units import HOUR


class MemoryUsageModel(ResourceModel):
    """Cold-start exponential warm-up of buffer-pool memory.

    Args:
        selector: databases governed by the model.
        primary_target_fraction: steady-state memory as a fraction of
            the SLO grant for primary replicas.
        secondary_target_fraction: same for secondaries (lower — they
            serve no queries, only replication).
        warmup_hours: time constant of the exponential approach.
        jitter_fraction: relative Gaussian jitter applied per report.
    """

    metric = MEMORY_GB
    persisted = False  # resets on failover by design (§3.3.2)

    def __init__(self, selector: DatabaseSelector,
                 primary_target_fraction: float = 0.75,
                 secondary_target_fraction: float = 0.35,
                 warmup_hours: float = 2.0,
                 jitter_fraction: float = 0.02,
                 cold_start_gb: float = COLD_BUFFER_POOL_GB) -> None:
        for name, value in (("primary_target_fraction",
                             primary_target_fraction),
                            ("secondary_target_fraction",
                             secondary_target_fraction)):
            if not 0.0 < value <= 1.0:
                raise ModelSpecError(f"{name} must be in (0, 1], got {value}")
        if warmup_hours <= 0:
            raise ModelSpecError("warmup_hours must be positive")
        self.selector = selector
        self.primary_target_fraction = primary_target_fraction
        self.secondary_target_fraction = secondary_target_fraction
        self.warmup_hours = warmup_hours
        self.jitter_fraction = jitter_fraction
        self.cold_start_gb = cold_start_gb

    def kind(self) -> str:
        return "MemoryUsageModel"

    def _target(self, context: ModelContext) -> float:
        fraction = (self.primary_target_fraction if context.is_primary
                    else self.secondary_target_fraction)
        return fraction * context.database.slo.memory_gb

    def initial_value(self, context: ModelContext) -> float:
        """A cold buffer pool, bounded by the SLO grant."""
        return min(self.cold_start_gb, context.database.slo.memory_gb)

    def next_value(self, context: ModelContext) -> float:
        if context.previous_value is None:
            return self.initial_value(context)
        target = self._target(context)
        tau = self.warmup_hours * HOUR
        decay = math.exp(-context.interval_seconds / tau)
        value = target + (context.previous_value - target) * decay
        if self.jitter_fraction > 0:
            value *= 1.0 + float(
                context.rng.normal(0.0, self.jitter_fraction))
        return float(min(max(value, 0.0), context.database.slo.memory_gb))
