"""Hourly-normal parameter schedules.

Paper §4.1.3: three features drive the models — weekday vs. weekend,
hour of the day, and edition — yielding "96 (2 x 24 x 2) different
Create DB models". An :class:`HourlyNormalSchedule` holds the
(mu, sigma) pair per (day type, hour) for *one* edition and one model
kind, i.e. one 2 x 24 slice of that grid; the edition dimension is the
selector on the enclosing model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.errors import ModelSpecError
from repro.units import HOUR, is_weekend

HOURS = tuple(range(24))


class DayType(enum.Enum):
    """Weekday vs. weekend, the paper's first temporal feature."""

    WEEKDAY = "weekday"
    WEEKEND = "weekend"

    @classmethod
    def of(cls, timestamp: int, start_weekday: int = 0) -> "DayType":
        """Day type at a simulation timestamp."""
        return cls.WEEKEND if is_weekend(timestamp, start_weekday) \
            else cls.WEEKDAY


Key = Tuple[DayType, int]


@dataclass
class HourlyNormalSchedule:
    """(mu, sigma) per (day type, hour-of-day).

    A schedule is *complete* when all 48 cells are present; partial
    schedules are permitted during training but :meth:`validate`
    enforces completeness before a model ships into the XML.
    """

    cells: Dict[Key, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Hot-path caches, invalidated by :meth:`set`: ``params_at`` is
        # called once per replica per report sweep, and the batched
        # samplers want whole-day parameter arrays.
        self._slot_cache: Optional[Tuple[int, int, float, float]] = None
        self._array_cache: Dict[DayType, Tuple[np.ndarray, np.ndarray]] = {}

    @classmethod
    def constant(cls, mu: float, sigma: float) -> "HourlyNormalSchedule":
        """Schedule with the same parameters in every cell."""
        cells = {(daytype, hour): (mu, sigma)
                 for daytype in DayType for hour in HOURS}
        return cls(cells=cells)

    @classmethod
    def from_cells(cls, entries: Iterable[Tuple[DayType, int, float, float]]
                   ) -> "HourlyNormalSchedule":
        """Build from (daytype, hour, mu, sigma) tuples."""
        schedule = cls()
        for daytype, hour, mu, sigma in entries:
            schedule.set(daytype, hour, mu, sigma)
        return schedule

    def set(self, daytype: DayType, hour: int, mu: float,
            sigma: float) -> None:
        if hour not in range(24):
            raise ModelSpecError(f"hour must be 0-23, got {hour}")
        if sigma < 0:
            raise ModelSpecError(f"sigma must be >= 0, got {sigma}")
        self.cells[(daytype, hour)] = (float(mu), float(sigma))
        self._slot_cache = None
        self._array_cache.clear()

    def params(self, daytype: DayType, hour: int) -> Tuple[float, float]:
        """(mu, sigma) for a cell; raises when the cell is missing."""
        key = (daytype, hour % 24)
        try:
            return self.cells[key]
        except KeyError:
            raise ModelSpecError(
                f"schedule has no cell for {daytype.value} hour {hour}") \
                from None

    def params_at(self, timestamp: int,
                  start_weekday: int = 0) -> Tuple[float, float]:
        """(mu, sigma) at a simulation timestamp.

        Memoized per hour slot: every replica's report in a sweep asks
        for the same cell, so the day-type/hour derivation and the dict
        lookup are done once per simulated hour instead of per draw.
        """
        slot = timestamp // HOUR
        cached = self._slot_cache
        if cached is not None and cached[0] == slot \
                and cached[1] == start_weekday:
            return cached[2], cached[3]
        mu, sigma = self.params(DayType.of(timestamp, start_weekday),
                                (timestamp % (24 * HOUR)) // HOUR)
        self._slot_cache = (slot, start_weekday, mu, sigma)
        return mu, sigma

    def params_arrays(self, daytype: DayType) -> Tuple[np.ndarray,
                                                       np.ndarray]:
        """``(mu[24], sigma[24])`` arrays for one day type, cached.

        The batched samplers assemble their single numpy draw from
        these instead of 24 dict lookups; requires a complete schedule.
        """
        cached = self._array_cache.get(daytype)
        if cached is None:
            self.validate()
            mus = np.array([self.cells[(daytype, hour)][0]
                            for hour in HOURS], dtype=float)
            sigmas = np.array([self.cells[(daytype, hour)][1]
                               for hour in HOURS], dtype=float)
            cached = (mus, sigmas)
            self._array_cache[daytype] = cached
        return cached

    def scaled(self, factor: float) -> "HourlyNormalSchedule":
        """Scale every cell's mu and sigma by ``factor``.

        Used to convert region-level rates to ring-level rates: the
        paper "scaled the values of the model parameters by the total
        number of tenant rings within that region" (§4.1.1).
        """
        if factor < 0:
            raise ModelSpecError(f"scale factor must be >= 0, got {factor}")
        return HourlyNormalSchedule(cells={
            key: (mu * factor, sigma * factor)
            for key, (mu, sigma) in self.cells.items()
        })

    @property
    def is_complete(self) -> bool:
        return len(self.cells) == 48

    def validate(self) -> None:
        """Raise unless all 48 (day type, hour) cells are present."""
        if not self.is_complete:
            missing = [(d.value, h) for d in DayType for h in HOURS
                       if (d, h) not in self.cells]
            raise ModelSpecError(
                f"schedule incomplete; missing {len(missing)} cells, "
                f"first: {missing[:3]}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HourlyNormalSchedule):
            return NotImplemented
        return self.cells == other.cells
