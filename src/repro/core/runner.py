"""Benchmark execution: wires a scenario into a full run.

The run proceeds exactly as §5.2 describes:

1. **Bootstrap** — the initial population is created through the
   control plane with "growth fixed to 0" (no models published, so
   RgManager reports the static initial loads) and the PLB places and
   balances it during the settle window.
2. **Official start** — the model XML is written into the Naming
   Service and propagated, the Population Manager starts waking at the
   top of each hour, and the telemetry collector begins its hourly
   snapshots.
3. **Run** — the kernel executes the scenario's duration.
4. **Scoring** — final KPIs and the modeled adjusted-revenue report
   are assembled into a :class:`BenchmarkResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.analysis.detsan import DetSanRecorder

from repro.chaos.injector import FaultInjector
from repro.errors import AdmissionRejected, ScenarioError
from repro.core.orchestrator import TotoOrchestrator
from repro.core.population_manager import PopulationManager
from repro.core.scenario import BenchmarkScenario
from repro.fabric.failover import FailoverRecord
from repro.fabric.metrics import CPU_CORES, DISK_GB
from repro.obs.export import ObsExport
from repro.obs.session import ObsSession
from repro.revenue.adjusted import AdjustedRevenueReport, adjusted_revenue_report
from repro.rng import RngRegistry
from repro.simkernel import SimulationKernel
from repro.sqldb.control_plane import CreationRedirect
from repro.sqldb.population import generate_initial_population
from repro.sqldb.tenant_ring import TenantRing
from repro.telemetry.collector import TelemetryCollector, TelemetryFrame
from repro.telemetry.kpis import FailoverKpis, RunKpis


@dataclass
class BenchmarkResult:
    """Everything one benchmark run produced."""

    scenario: BenchmarkScenario
    frames: List[TelemetryFrame]
    failovers: List[FailoverRecord]
    redirects: List[CreationRedirect]
    databases: List
    kpis: RunKpis
    revenue: AdjustedRevenueReport
    bootstrap_free_cores: float
    bootstrap_disk_utilization: float
    events_executed: int
    #: Rendered observability artifacts (docs/OBSERVABILITY.md); None
    #: when the scenario carried no enabled ObsConfig. Strings rather
    #: than file paths so pooled workers ship them through the pickle
    #: boundary byte-intact.
    obs: Optional[ObsExport] = None

    @property
    def density(self) -> float:
        return self.scenario.ring.density

    def redirect_series(self) -> List[int]:
        """Cumulative creation redirects per hour (Figure 10)."""
        return [frame.redirects_cumulative for frame in self.frames]

    def first_redirect_hour(self) -> Optional[int]:
        """Hour of the first creation redirect, None if none occurred."""
        for frame in self.frames:
            if frame.redirects_cumulative > 0:
                return frame.hour_index
        return None

    def cores_vs_disk(self) -> List[tuple]:
        """(reserved cores, disk GB) per hour (Figure 11)."""
        return [(frame.reserved_cores, frame.disk_gb)
                for frame in self.frames]


class BenchmarkRunner:
    """Executes one :class:`BenchmarkScenario` end to end."""

    def __init__(self, scenario: BenchmarkScenario,
                 detsan: Optional["DetSanRecorder"] = None) -> None:
        self.scenario = scenario
        self.obs_session: Optional[ObsSession] = None
        if scenario.obs is not None and scenario.obs.enabled:
            self.obs_session = ObsSession(scenario.obs)
        self.kernel = SimulationKernel(
            detsan=detsan,
            observer=(self.obs_session.kernel_observer
                      if self.obs_session is not None else None))
        self.rng = RngRegistry(scenario.seed, recorder=detsan)
        self.ring = TenantRing(
            self.kernel, scenario.ring, self.rng,
            plb_rng_name=f"plb-{scenario.plb_salt}")
        self.orchestrator = TotoOrchestrator(self.kernel, self.ring)
        self.collector = TelemetryCollector(
            self.kernel, self.ring, interval=scenario.telemetry_interval)
        self.population_manager: Optional[PopulationManager] = None
        if scenario.run_population_manager:
            document = scenario.model_document
            if document.population is None:
                raise ScenarioError(
                    f"scenario '{scenario.name}' runs the Population "
                    "Manager but the model document has no population models")
            self.population_manager = PopulationManager(
                kernel=self.kernel,
                control_plane=self.ring.control_plane,
                models=document.population,
                rng=self.rng.stream("population-manager"),
                model_document=document,
                start_weekday=scenario.ring.start_weekday,
            )
        self.injector: Optional[FaultInjector] = None
        if scenario.chaos is not None and scenario.chaos.total_faults > 0:
            schedule = scenario.chaos.materialize(
                duration=scenario.duration,
                node_count=scenario.ring.node_count,
                rng_registry=self.rng)
            self.injector = FaultInjector(
                kernel=self.kernel, ring=self.ring, schedule=schedule,
                rng_registry=self.rng, backoff=scenario.chaos.backoff,
                population_manager=self.population_manager)
            self.injector.install()
        if self.obs_session is not None:
            self.obs_session.wire(self.kernel, self.ring, self.collector,
                                  self.injector)
        self._bootstrap_free_cores = 0.0
        self._bootstrap_disk_utilization = 0.0

    # ------------------------------------------------------------------

    def run(self) -> BenchmarkResult:
        """Execute the full benchmark and return its result."""
        scenario = self.scenario
        self._bootstrap()
        self.ring.start()
        self.orchestrator.start()
        # Settle: growth frozen (no models yet), PLB balances placement.
        self.kernel.run_until(self.kernel.now + scenario.bootstrap_settle)

        self._bootstrap_free_cores = self.ring.free_cores()
        self._bootstrap_disk_utilization = (
            self.ring.disk_usage_gb()
            / self.ring.cluster.total_capacity(DISK_GB))

        # The experiment "officially begins": publish the models and
        # start the churn and the telemetry.
        self.orchestrator.publish_models(scenario.model_document,
                                         propagate_now=True)
        self.collector.start()
        if self.population_manager is not None:
            self.population_manager.start()
        if self.injector is not None:
            self.injector.start()
        self._schedule_scripted_creates()

        self.kernel.run_until(self.kernel.now + scenario.duration)
        if self.injector is not None:
            # Disarm the gates so final scoring reads an undisturbed
            # metastore (faults whose windows outlast the run stop).
            self.injector.finish()
        self.collector.capture_final()
        self.ring.cluster.validate_invariants()
        return self._assemble_result()

    # ------------------------------------------------------------------

    def _bootstrap(self) -> None:
        """Create the initial population (growth frozen, §5.2)."""
        spec = self.scenario.initial_population
        if spec is None:
            return
        cluster = self.ring.cluster
        cores_at_100pct = (self.scenario.ring.base_capacities.cpu_cores
                           * self.scenario.ring.node_count)
        orders = generate_initial_population(
            spec,
            cluster_cores_at_100pct=cores_at_100pct,
            cluster_disk_gb=cluster.total_capacity(DISK_GB),
            rng=self.rng.stream("bootstrap"),
        )
        for order in orders:
            try:
                self.ring.control_plane.create_database(
                    slo_name=order.slo_name,
                    now=self.kernel.now,
                    initial_data_gb=order.initial_data_gb,
                    rapid_growth=order.rapid_growth,
                    from_bootstrap=True,
                )
            except AdmissionRejected as exc:
                raise ScenarioError(
                    f"bootstrap population does not fit the ring: {exc}"
                ) from exc
        # Bootstrap rejections would poison Figure 10; assert clean.
        if self.ring.control_plane.redirects:
            raise ScenarioError("bootstrap recorded creation redirects")

    def _schedule_scripted_creates(self) -> None:
        """Queue the scenario's incident-replay creates (use case (c)).

        A scripted create that the ring redirects is recorded like any
        other redirect — whether the incident database is admitted at a
        given density is part of what the repro reveals.
        """
        start = self.kernel.now
        for scripted in self.scenario.scripted_creates:
            def execute(spec=scripted) -> None:
                try:
                    self.ring.control_plane.create_database(
                        slo_name=spec.slo_name,
                        now=self.kernel.now,
                        initial_data_gb=spec.initial_data_gb,
                        high_initial_growth=spec.high_initial_growth,
                        initial_growth_total_gb=spec.initial_growth_total_gb,
                        rapid_growth=spec.rapid_growth,
                    )
                except AdmissionRejected:
                    pass  # recorded as a creation redirect
            self.kernel.schedule_oneshot(
                start + scripted.at_offset, execute,
                label=f"scripted-create-{scripted.slo_name}")

    def _assemble_result(self) -> BenchmarkResult:
        now = self.kernel.now
        cluster = self.ring.cluster
        control_plane = self.ring.control_plane
        failover_kpis = FailoverKpis.from_records(cluster.failovers,
                                                  control_plane)
        reserved_cores = cluster.reserved_cores()
        disk_gb = cluster.disk_usage_gb()
        kpis = RunKpis(
            final_reserved_cores=reserved_cores,
            final_disk_gb=disk_gb,
            core_utilization=(reserved_cores
                              / cluster.total_capacity(CPU_CORES)),
            disk_utilization=(disk_gb
                              / cluster.total_capacity(DISK_GB)),
            creation_redirects=control_plane.redirect_count(),
            active_databases=control_plane.active_count(),
            failovers=failover_kpis,
            chaos=(self.injector.telemetry.snapshot()
                   if self.injector is not None else None),
        )
        revenue = adjusted_revenue_report(
            control_plane.all_databases(), now, naming=cluster.naming)
        return BenchmarkResult(
            scenario=self.scenario,
            frames=list(self.collector.frames),
            failovers=list(cluster.failovers),
            redirects=list(control_plane.redirects),
            databases=control_plane.all_databases(),
            kpis=kpis,
            revenue=revenue,
            bootstrap_free_cores=self._bootstrap_free_cores,
            bootstrap_disk_utilization=self._bootstrap_disk_utilization,
            events_executed=self.kernel.events_executed,
            obs=(self.obs_session.render()
                 if self.obs_session is not None else None),
        )


def run_scenario(scenario: BenchmarkScenario,
                 detsan: Optional["DetSanRecorder"] = None
                 ) -> BenchmarkResult:
    """Convenience one-shot runner (``detsan`` attaches the sanitizer)."""
    return BenchmarkRunner(scenario, detsan=detsan).run()
