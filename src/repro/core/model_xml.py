"""Model XML (de)serialization.

Paper §3.3.1: "the models and respective parameters that were trained
on the production telemetry are serialized into XML format and written
into Service Fabric's Naming Service [...] RgManager reads the model
XML every 15 minutes from Naming Service, parses them, and constructs
internal model objects."

The document carries both the resource models RgManager executes and
the population models the Population Manager samples. The round trip
``parse_model_xml(serialize_model_xml(doc))`` is exact up to float
representation and is covered by property-based tests.

Schema sketch::

    <TotoModels version="1" seedSalt="exp-100" startWeekday="0">
      <ResourceModels>
        <DiskUsageModel persisted="true" floorGb="0.5">
          <Selector edition="Premium/BC"/>
          <SteadyState> <Hourly .../> x48 </SteadyState>
          <InitialCreationGrowth probability="0.02" durationSeconds="1800">
            <Bin low="12" high="60"/> ...
          </InitialCreationGrowth>
          <PredictableRapidGrowth probability="0.01" steadySeconds="..."
              increaseSeconds="..." betweenSeconds="..." decreaseSeconds="...">
            <IncreaseBins> <Bin .../> ... </IncreaseBins>
            <DecreaseBins> <Bin .../> ... </DecreaseBins>
          </PredictableRapidGrowth>
        </DiskUsageModel>
        <MemoryUsageModel .../>  <CpuUsageModel .../>
      </ResourceModels>
      <PopulationModels>
        <EditionPopulation edition="Standard/GP">
          <CreateModel> <Hourly .../> x48 </CreateModel>
          <DropModel> ... </DropModel>
          <SloMix> <Slo name="GP_Gen5_2" weight="0.45"/> ... </SloMix>
          <InitialDataSize mu="2.3" sigma="1.1" minGb="0.1" capGb="2048"/>
        </EditionPopulation>
      </PopulationModels>
    </TotoModels>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ModelSpecError
from repro.core.cpu_model import CpuUsageModel
from repro.core.create_drop import CreateDropModel
from repro.core.disk_models import (
    DiskUsageModel,
    InitialGrowthSpec,
    RapidGrowthSpec,
)
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.core.memory_model import MemoryUsageModel
from repro.core.model_base import BinnedUniform, ResourceModel
from repro.core.population_models import (
    InitialDataSpec,
    PopulationModels,
    SloMix,
)
from repro.core.selectors import DatabaseSelector
from repro.sqldb.editions import Edition

XML_VERSION = "1"


@dataclass
class TotoModelDocument:
    """The deserialized content of the Naming-Service model blob."""

    resource_models: List[ResourceModel] = field(default_factory=list)
    population: Optional[PopulationModels] = None
    seed_salt: str = "toto"
    start_weekday: int = 0


# ---------------------------------------------------------------------------
# Serialization helpers
# ---------------------------------------------------------------------------

def _schedule_to_element(parent: ET.Element, tag: str,
                         schedule: HourlyNormalSchedule) -> None:
    element = ET.SubElement(parent, tag)
    for (daytype, hour), (mu, sigma) in sorted(
            schedule.cells.items(), key=lambda kv: (kv[0][0].value, kv[0][1])):
        ET.SubElement(element, "Hourly", {
            "daytype": daytype.value,
            "hour": str(hour),
            "mu": repr(mu),
            "sigma": repr(sigma),
        })


def _schedule_from_element(element: ET.Element) -> HourlyNormalSchedule:
    schedule = HourlyNormalSchedule()
    for hourly in element.findall("Hourly"):
        daytype = DayType(hourly.get("daytype", ""))
        schedule.set(daytype, int(hourly.get("hour", "-1")),
                     float(hourly.get("mu", "nan")),
                     float(hourly.get("sigma", "nan")))
    return schedule


def _bins_to_element(parent: ET.Element, bins: BinnedUniform) -> None:
    for low, high in bins.bins:
        ET.SubElement(parent, "Bin", {"low": repr(low), "high": repr(high)})


def _bins_from_element(element: ET.Element) -> BinnedUniform:
    bins = tuple((float(b.get("low", "nan")), float(b.get("high", "nan")))
                 for b in element.findall("Bin"))
    if not bins:
        raise ModelSpecError(f"<{element.tag}> has no <Bin> children")
    return BinnedUniform(bins=bins)


def _selector_element(parent: ET.Element,
                      selector: DatabaseSelector) -> None:
    ET.SubElement(parent, "Selector", selector.to_attributes())


def _parse_selector(element: ET.Element) -> DatabaseSelector:
    selector_el = element.find("Selector")
    if selector_el is None:
        return DatabaseSelector()
    return DatabaseSelector.from_attributes(dict(selector_el.attrib))


def _bool(value: str) -> bool:
    if value.lower() in ("true", "1"):
        return True
    if value.lower() in ("false", "0"):
        return False
    raise ModelSpecError(f"bad boolean '{value}' in model XML")


# ---------------------------------------------------------------------------
# Resource models
# ---------------------------------------------------------------------------

def _disk_model_to_element(parent: ET.Element,
                           model: DiskUsageModel) -> None:
    element = ET.SubElement(parent, "DiskUsageModel", {
        "persisted": str(model.persisted).lower(),
        "floorGb": repr(model.floor_gb),
        "rateHeterogeneity": repr(model.rate_heterogeneity),
    })
    _selector_element(element, model.selector)
    _schedule_to_element(element, "SteadyState", model.steady)
    if model.initial_growth is not None:
        spec = model.initial_growth
        initial = ET.SubElement(element, "InitialCreationGrowth", {
            "probability": repr(spec.probability),
            "durationSeconds": str(spec.duration_seconds),
        })
        _bins_to_element(initial, spec.totals)
    if model.rapid_growth is not None:
        spec = model.rapid_growth
        rapid = ET.SubElement(element, "PredictableRapidGrowth", {
            "probability": repr(spec.probability),
            "steadySeconds": str(spec.steady_duration),
            "increaseSeconds": str(spec.increase_duration),
            "betweenSeconds": str(spec.between_duration),
            "decreaseSeconds": str(spec.decrease_duration),
        })
        _bins_to_element(ET.SubElement(rapid, "IncreaseBins"),
                         spec.increase_totals)
        _bins_to_element(ET.SubElement(rapid, "DecreaseBins"),
                         spec.decrease_totals)


def _disk_model_from_element(element: ET.Element,
                             start_weekday: int) -> DiskUsageModel:
    steady_el = element.find("SteadyState")
    if steady_el is None:
        raise ModelSpecError("DiskUsageModel missing <SteadyState>")
    initial_growth = None
    initial_el = element.find("InitialCreationGrowth")
    if initial_el is not None:
        initial_growth = InitialGrowthSpec(
            probability=float(initial_el.get("probability", "nan")),
            totals=_bins_from_element(initial_el),
            duration_seconds=int(initial_el.get("durationSeconds", "1800")),
        )
    rapid_growth = None
    rapid_el = element.find("PredictableRapidGrowth")
    if rapid_el is not None:
        increase_el = rapid_el.find("IncreaseBins")
        decrease_el = rapid_el.find("DecreaseBins")
        if increase_el is None or decrease_el is None:
            raise ModelSpecError(
                "PredictableRapidGrowth needs IncreaseBins and DecreaseBins")
        rapid_growth = RapidGrowthSpec(
            probability=float(rapid_el.get("probability", "nan")),
            steady_duration=int(rapid_el.get("steadySeconds", "0")),
            increase_duration=int(rapid_el.get("increaseSeconds", "0")),
            between_duration=int(rapid_el.get("betweenSeconds", "0")),
            decrease_duration=int(rapid_el.get("decreaseSeconds", "0")),
            increase_totals=_bins_from_element(increase_el),
            decrease_totals=_bins_from_element(decrease_el),
        )
    return DiskUsageModel(
        selector=_parse_selector(element),
        steady=_schedule_from_element(steady_el),
        initial_growth=initial_growth,
        rapid_growth=rapid_growth,
        persisted=_bool(element.get("persisted", "true")),
        floor_gb=float(element.get("floorGb", "0.5")),
        rate_heterogeneity=float(element.get("rateHeterogeneity", "0.8")),
        start_weekday=start_weekday,
    )


def _memory_model_to_element(parent: ET.Element,
                             model: MemoryUsageModel) -> None:
    element = ET.SubElement(parent, "MemoryUsageModel", {
        "primaryTarget": repr(model.primary_target_fraction),
        "secondaryTarget": repr(model.secondary_target_fraction),
        "warmupHours": repr(model.warmup_hours),
        "jitter": repr(model.jitter_fraction),
        "coldStartGb": repr(model.cold_start_gb),
    })
    _selector_element(element, model.selector)


def _memory_model_from_element(element: ET.Element) -> MemoryUsageModel:
    return MemoryUsageModel(
        selector=_parse_selector(element),
        primary_target_fraction=float(element.get("primaryTarget", "0.75")),
        secondary_target_fraction=float(element.get("secondaryTarget", "0.35")),
        warmup_hours=float(element.get("warmupHours", "2.0")),
        jitter_fraction=float(element.get("jitter", "0.02")),
        cold_start_gb=float(element.get("coldStartGb", "2.0")),
    )


def _cpu_model_to_element(parent: ET.Element, model: CpuUsageModel) -> None:
    element = ET.SubElement(parent, "CpuUsageModel", {
        "secondaryFraction": repr(model.secondary_fraction),
    })
    _selector_element(element, model.selector)
    _schedule_to_element(element, "Utilization", model.utilization)


def _cpu_model_from_element(element: ET.Element,
                            start_weekday: int) -> CpuUsageModel:
    utilization_el = element.find("Utilization")
    if utilization_el is None:
        raise ModelSpecError("CpuUsageModel missing <Utilization>")
    return CpuUsageModel(
        selector=_parse_selector(element),
        utilization=_schedule_from_element(utilization_el),
        secondary_fraction=float(element.get("secondaryFraction", "0.3")),
        start_weekday=start_weekday,
    )


# ---------------------------------------------------------------------------
# Population models
# ---------------------------------------------------------------------------

def _population_to_element(parent: ET.Element,
                           population: PopulationModels) -> None:
    population.validate()
    container = ET.SubElement(parent, "PopulationModels")
    for edition in population.editions:
        edition_el = ET.SubElement(container, "EditionPopulation",
                                   {"edition": edition.value})
        model = population.create_drop[edition]
        _schedule_to_element(edition_el, "CreateModel", model.creates)
        _schedule_to_element(edition_el, "DropModel", model.drops)
        mix_el = ET.SubElement(edition_el, "SloMix")
        for name, weight in population.slo_mix[edition].weights:
            ET.SubElement(mix_el, "Slo", {"name": name, "weight": repr(weight)})
        spec = population.initial_data[edition]
        ET.SubElement(edition_el, "InitialDataSize", {
            "mu": repr(spec.mu), "sigma": repr(spec.sigma),
            "minGb": repr(spec.min_gb), "capGb": repr(spec.cap_gb),
            "coreExponent": repr(spec.core_exponent),
        })


def _population_from_element(container: ET.Element) -> PopulationModels:
    population = PopulationModels()
    for edition_el in container.findall("EditionPopulation"):
        edition = Edition(edition_el.get("edition", ""))
        create_el = edition_el.find("CreateModel")
        drop_el = edition_el.find("DropModel")
        mix_el = edition_el.find("SloMix")
        data_el = edition_el.find("InitialDataSize")
        if None in (create_el, drop_el, mix_el, data_el):
            raise ModelSpecError(
                f"EditionPopulation for {edition.value} is incomplete")
        population.create_drop[edition] = CreateDropModel(
            edition=edition,
            creates=_schedule_from_element(create_el),
            drops=_schedule_from_element(drop_el),
        )
        weights = {slo.get("name", ""): float(slo.get("weight", "nan"))
                   for slo in mix_el.findall("Slo")}
        population.slo_mix[edition] = SloMix.from_dict(edition, weights)
        population.initial_data[edition] = InitialDataSpec(
            edition=edition,
            mu=float(data_el.get("mu", "nan")),
            sigma=float(data_el.get("sigma", "nan")),
            min_gb=float(data_el.get("minGb", "0.1")),
            cap_gb=float(data_el.get("capGb", "2048.0")),
            core_exponent=float(data_el.get("coreExponent", "0.0")),
        )
    population.validate()
    return population


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def serialize_model_xml(document: TotoModelDocument) -> str:
    """Serialize a model document to the XML blob Toto stores."""
    root = ET.Element("TotoModels", {
        "version": XML_VERSION,
        "seedSalt": document.seed_salt,
        "startWeekday": str(document.start_weekday),
    })
    resources = ET.SubElement(root, "ResourceModels")
    for model in document.resource_models:
        if isinstance(model, DiskUsageModel):
            _disk_model_to_element(resources, model)
        elif isinstance(model, MemoryUsageModel):
            _memory_model_to_element(resources, model)
        elif isinstance(model, CpuUsageModel):
            _cpu_model_to_element(resources, model)
        else:
            raise ModelSpecError(
                f"cannot serialize model kind {type(model).__name__}")
    if document.population is not None:
        _population_to_element(root, document.population)
    return ET.tostring(root, encoding="unicode")


def parse_model_xml(text: str) -> TotoModelDocument:
    """Parse an XML blob back into a model document."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ModelSpecError(f"malformed model XML: {exc}") from exc
    if root.tag != "TotoModels":
        raise ModelSpecError(f"expected <TotoModels>, got <{root.tag}>")
    version = root.get("version", "")
    if version != XML_VERSION:
        raise ModelSpecError(f"unsupported model XML version '{version}'")
    document = TotoModelDocument(
        seed_salt=root.get("seedSalt", "toto"),
        start_weekday=int(root.get("startWeekday", "0")),
    )
    resources = root.find("ResourceModels")
    if resources is not None:
        for element in resources:
            if element.tag == "DiskUsageModel":
                document.resource_models.append(
                    _disk_model_from_element(element, document.start_weekday))
            elif element.tag == "MemoryUsageModel":
                document.resource_models.append(
                    _memory_model_from_element(element))
            elif element.tag == "CpuUsageModel":
                document.resource_models.append(
                    _cpu_model_from_element(element, document.start_weekday))
            else:
                raise ModelSpecError(
                    f"unknown resource model element <{element.tag}>")
    population_el = root.find("PopulationModels")
    if population_el is not None:
        document.population = _population_from_element(population_el)
    return document
