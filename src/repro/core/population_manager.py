"""The Population Manager (paper §3.3.3).

"The Population Manager runs as a stateless daemon — it wakes up at
the top of each hour to execute, samples from the provided models,
then schedules create or drop requests for the next hour. Each create
and drop request will then call the corresponding control plane API
with the provided metadata (e.g., Create a 4-core local store database
at 5:37pm)."

Determinism (§5.2): the Population Manager uses a *single seed* "which
fixed the order and the SLO of the databases that were created".
Everything that defines a creation — its within-hour offset, SLO,
initial data size, and growth-pattern flags — is sampled at the top of
the hour from that one stream, so the request sequence is bit-identical
across density experiments; only admission outcomes differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional

import numpy as np

from repro.errors import AdmissionRejected, RetryBudgetExceeded
from repro.core.create_drop import CreateDropModel
from repro.core.disk_models import DiskUsageModel
from repro.core.hourly_schedule import DayType
from repro.core.model_xml import TotoModelDocument
from repro.core.population_models import PopulationModels
from repro.rng import BatchedStream
from repro.simkernel import PeriodicProcess, SimulationKernel
from repro.sqldb.control_plane import ControlPlane
from repro.sqldb.editions import Edition
from repro.sqldb.slo import get_slo
from repro.units import HOUR, hour_of_day


@dataclass(frozen=True)
class CreateRequest:
    """A fully specified create scheduled for a specific instant."""

    at: int
    edition: Edition
    slo_name: str
    initial_data_gb: float
    high_initial_growth: bool
    initial_growth_total_gb: float
    rapid_growth: bool


@dataclass
class PopulationManagerStats:
    """Counters for tests and reports."""

    hours_ticked: int = 0
    hours_stalled: int = 0
    creates_requested: int = 0
    creates_admitted: int = 0
    creates_redirected: int = 0
    drops_requested: int = 0
    drops_executed: int = 0
    drops_skipped_empty: int = 0
    drops_deferred: int = 0


class PopulationManager:
    """Hourly churn daemon driving the control plane."""

    def __init__(self, kernel: SimulationKernel, control_plane: ControlPlane,
                 models: PopulationModels,
                 rng: np.random.Generator,
                 model_document: Optional[TotoModelDocument] = None,
                 start_weekday: int = 0) -> None:
        models.validate()
        self._kernel = kernel
        self._control_plane = control_plane
        self._models = models
        self._rng = rng
        # Batched view of the same stream: hourly counts and drop
        # offsets are drawn as whole arrays, byte-identical to the
        # scalar loop (see repro.rng.BatchedStream).
        self._batch = BatchedStream(rng)
        self._document = model_document
        self.start_weekday = start_weekday
        self.stats = PopulationManagerStats()
        #: Optional fault injector (set by its ``install()``); a stall
        #: window makes the hourly tick a no-op.
        self.chaos = None
        self._process = PeriodicProcess(kernel, HOUR, self._tick,
                                        label="population-manager",
                                        align_to_period=True)
        # Event labels, precomputed: thousands of creates/drops are
        # scheduled per simulated week and per-event f-strings showed
        # up on the scheduling fast path.
        self._create_labels = {edition: f"create-{edition.short_name}"
                               for edition in models.editions}
        self._drop_labels = {edition: f"drop-{edition.short_name}"
                             for edition in models.editions}
        #: Request log, kept for determinism assertions across runs.
        self.request_log: List[CreateRequest] = []  # totolint: fleet-scale

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin waking at the top of each hour."""
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    @property
    def running(self) -> bool:
        return self._process.running

    # ------------------------------------------------------------------

    def _disk_model_for(self, edition: Edition) -> Optional[DiskUsageModel]:
        """The published disk model whose selector owns ``edition``."""
        if self._document is None:
            return None
        for model in self._document.resource_models:
            if (isinstance(model, DiskUsageModel)
                    and model.selector.edition is edition):
                return model
        return None

    def _tick(self, now: int) -> None:
        """Top-of-hour: sample counts, then schedule this hour's requests."""
        if self.chaos is not None and self.chaos.population_gate(now):
            # The stateless daemon is wedged for this hour; the churn
            # it would have scheduled simply never happens.
            self.stats.hours_stalled += 1
            return
        self.stats.hours_ticked += 1
        daytype = DayType.of(now, self.start_weekday)
        hour = hour_of_day(now)
        for edition in self._models.editions:
            model: CreateDropModel = self._models.create_drop[edition]
            n_creates, n_drops = model.sample_counts(daytype, hour,
                                                     self._batch)
            for _ in range(n_creates):
                request = self._sample_create(now, edition)
                self.request_log.append(request)
                self._kernel.schedule_oneshot(
                    request.at, partial(self._execute_create, request),
                    label=self._create_labels[edition])
            if n_drops:
                # All of this hour's drop offsets in one draw; the
                # scalar path drew them back-to-back, so the sequence
                # is unchanged.
                offsets = self._batch.integers(0, HOUR, n_drops)
                for offset in offsets:
                    self._kernel.schedule_oneshot(
                        now + int(offset),
                        partial(self._execute_drop, edition),
                        label=self._drop_labels[edition])

    def _sample_create(self, now: int, edition: Edition) -> CreateRequest:
        """Draw everything defining one create, in fixed draw order."""
        offset = int(self._rng.integers(0, HOUR))
        slo_name = self._models.slo_mix[edition].sample(self._rng)
        data_gb = self._models.initial_data[edition].sample(
            self._rng, cores=get_slo(slo_name).cores)
        disk_model = self._disk_model_for(edition)
        if disk_model is not None:
            high_initial, total_gb, rapid = \
                disk_model.sample_creation_flags(self._rng)
        else:
            high_initial, total_gb, rapid = False, 0.0, False
        return CreateRequest(
            at=now + offset, edition=edition, slo_name=slo_name,
            initial_data_gb=data_gb, high_initial_growth=high_initial,
            initial_growth_total_gb=total_gb, rapid_growth=rapid)

    # ------------------------------------------------------------------

    def _execute_create(self, request: CreateRequest) -> None:
        self.stats.creates_requested += 1
        try:
            self._control_plane.create_database(
                slo_name=request.slo_name,
                now=self._kernel.now,
                initial_data_gb=request.initial_data_gb,
                high_initial_growth=request.high_initial_growth,
                initial_growth_total_gb=request.initial_growth_total_gb,
                rapid_growth=request.rapid_growth,
            )
        except AdmissionRejected:
            # The ring redirected the create to another tenant ring;
            # the control plane already recorded it (Figure 10).
            self.stats.creates_redirected += 1
        else:
            self.stats.creates_admitted += 1

    #: Databases older than this are not drop candidates: drop traffic
    #: is dominated by short-lived dev/test churn, and a ring whose
    #: population is all long-lived simply receives fewer of the
    #: region's drops.
    DROP_CANDIDATE_MAX_AGE = 48 * HOUR

    def _execute_drop(self, edition: Edition) -> None:
        self.stats.drops_requested += 1
        now = self._kernel.now
        candidates = [db for db in
                      self._control_plane.active_databases(edition)
                      if now - db.created_at <= self.DROP_CANDIDATE_MAX_AGE]
        if not candidates:
            self.stats.drops_skipped_empty += 1
            return
        victim = self._choose_drop_victim(candidates)
        try:
            self._control_plane.drop_database(victim.db_id, now)
        except RetryBudgetExceeded:
            # Injected control-plane outage outlasted the retry budget;
            # the database stays active and a later drop request will
            # get it (created − dropped == active still holds).
            self.stats.drops_deferred += 1
            return
        self.stats.drops_executed += 1

    def _choose_drop_victim(self, candidates):
        """Pick the drop victim, weighted toward the youngest databases.

        Short-lived databases dominate drop traffic while long-lived
        databases persist and grow — that skew is what keeps cluster
        disk ratcheting upward. The weight halves for every six hours
        of age.
        """
        now = self._kernel.now
        weights = np.array(
            [0.5 ** min((now - db.created_at) / (6.0 * HOUR), 60.0)
             for db in candidates], dtype=float)
        total = weights.sum()
        if total <= 0:
            return candidates[int(self._rng.integers(len(candidates)))]
        index = int(self._rng.choice(len(candidates), p=weights / total))
        return candidates[index]
