"""Population models consumed by the Population Manager.

Paper §3.3.3: "The Population Manager's models describe how many
databases to create/drop per hour, the service tier/edition and the
Service Level Objective (SLO) of the databases to create, and the
initial metric load for each database."

That is three model families per edition:

* :class:`repro.core.create_drop.CreateDropModel` — hourly counts;
* :class:`SloMix` — which SLO a new database purchases;
* :class:`InitialDataSpec` — the initial data size (lognormal, which
  matches the heavy-tailed sizes production exhibits: most databases
  are small, a few are very large).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.errors import ModelSpecError
from repro.core.create_drop import CreateDropModel
from repro.sqldb.editions import Edition
from repro.sqldb.slo import get_slo


@dataclass(frozen=True)
class SloMix:
    """Categorical distribution over SLO names for one edition."""

    edition: Edition
    weights: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ModelSpecError("SloMix needs at least one SLO")
        total = 0.0
        for name, weight in self.weights:
            slo = get_slo(name)  # raises on unknown names
            if slo.edition is not self.edition:
                raise ModelSpecError(
                    f"SLO {name} is {slo.edition.value}, mix is "
                    f"{self.edition.value}")
            if weight < 0:
                raise ModelSpecError(f"negative weight for {name}")
            total += weight
        if total <= 0:
            raise ModelSpecError("SloMix weights sum to zero")

    @classmethod
    def from_dict(cls, edition: Edition,
                  weights: Dict[str, float]) -> "SloMix":
        """Build from a name→weight mapping (sorted for determinism)."""
        return cls(edition=edition,
                   weights=tuple(sorted(weights.items())))

    def sample(self, rng: np.random.Generator) -> str:
        """Draw an SLO name."""
        names = [name for name, _ in self.weights]
        raw = np.array([weight for _, weight in self.weights], dtype=float)
        return str(names[int(rng.choice(len(names), p=raw / raw.sum()))])

    def expected_cores(self) -> float:
        """Expected reserved cores (across replicas) of one creation."""
        raw = np.array([w for _, w in self.weights], dtype=float)
        probs = raw / raw.sum()
        cores = np.array([get_slo(name).total_reserved_cores
                          for name, _ in self.weights], dtype=float)
        return float(np.dot(probs, cores))


@dataclass(frozen=True)
class InitialDataSpec:
    """Lognormal initial data size for new databases of one edition.

    ``mu``/``sigma`` parameterize the underlying normal of
    ``log(size_gb)`` for a reference 4-core database; samples are
    clipped to ``[min_gb, cap_gb]``. ``core_exponent`` scales sizes by
    ``(cores / 4) ** core_exponent`` — customers buy big SLOs because
    they have big databases, so size correlates with compute.
    """

    edition: Edition
    mu: float
    sigma: float
    min_gb: float = 0.1
    cap_gb: float = 2048.0
    core_exponent: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ModelSpecError(f"sigma must be >= 0, got {self.sigma}")
        if self.min_gb <= 0 or self.cap_gb < self.min_gb:
            raise ModelSpecError(
                f"bad clip range [{self.min_gb}, {self.cap_gb}]")
        if self.core_exponent < 0:
            raise ModelSpecError(
                f"core_exponent must be >= 0, got {self.core_exponent}")

    def sample(self, rng: np.random.Generator, cores: int = 4) -> float:
        """Draw an initial data size in GB for a ``cores``-core SLO."""
        value = float(rng.lognormal(self.mu, self.sigma))
        if self.core_exponent > 0 and cores != 4:
            value *= (cores / 4.0) ** self.core_exponent
        return float(min(max(value, self.min_gb), self.cap_gb))

    def median_gb(self) -> float:
        """Median of the (unclipped) lognormal."""
        return float(np.exp(self.mu))


@dataclass
class PopulationModels:
    """Everything the Population Manager samples from, per edition."""

    create_drop: Dict[Edition, CreateDropModel] = field(default_factory=dict)
    slo_mix: Dict[Edition, SloMix] = field(default_factory=dict)
    initial_data: Dict[Edition, InitialDataSpec] = field(default_factory=dict)

    def validate(self) -> None:
        """Every edition present must have all three model families."""
        editions = set(self.create_drop)
        if editions != set(self.slo_mix) or editions != set(self.initial_data):
            raise ModelSpecError(
                "population models incomplete: create_drop for "
                f"{sorted(e.value for e in self.create_drop)}, slo_mix for "
                f"{sorted(e.value for e in self.slo_mix)}, initial_data for "
                f"{sorted(e.value for e in self.initial_data)}")
        if not editions:
            raise ModelSpecError("population models are empty")

    @property
    def editions(self) -> Tuple[Edition, ...]:
        """Editions with population churn, in enum declaration order."""
        return tuple(edition for edition in Edition
                     if edition in self.create_drop)
