"""Base classes for Toto's resource-behaviour models.

Paper §3.3.1-3.3.2: model objects are **stateless** — they describe how
a metric's load changes but never store the previously reported value
themselves. The previous value is supplied by the caller: RgManager
keeps it in node-local memory for non-persisted metrics (so it resets
on failover, like memory or GP tempdb) and in the Naming Service for
persisted metrics (so a BC database's disk usage survives failovers).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelSpecError
from repro.core.selectors import DatabaseSelector
from repro.sqldb.database import DatabaseInstance


@dataclass(frozen=True)
class ModelContext:
    """Everything a stateless model may consult to produce one value.

    Attributes:
        now: current simulation time (seconds).
        interval_seconds: time since this replica's previous report.
        database: the database the replica belongs to.
        is_primary: replica role (models may differ per role, §3.3.2).
        previous_value: last reported value for this metric, or ``None``
            when there is no history on this node (fresh replica, or a
            non-persisted metric right after a failover).
        rng: the node's seeded random stream for this model.
        start_weekday: weekday of simulation time zero (0 = Monday).
    """

    now: int
    interval_seconds: int
    database: DatabaseInstance
    is_primary: bool
    previous_value: Optional[float]
    rng: np.random.Generator
    start_weekday: int = 0


class ResourceModel(abc.ABC):
    """A declarative model for one metric over one database subset."""

    #: Metric name this model governs (a :mod:`repro.fabric.metrics` name).
    metric: str
    #: Whether the previous value is durably stored in the Naming
    #: Service (True) or only in RgManager memory (False). §3.3.2.
    persisted: bool
    #: Which databases the model applies to.
    selector: DatabaseSelector

    def applies_to(self, database: DatabaseInstance) -> bool:
        """True when this model governs ``database``."""
        return self.selector.matches(database)

    @abc.abstractmethod
    def initial_value(self, context: ModelContext) -> float:
        """Value to report when there is no previous value.

        For non-persisted metrics this is also the post-failover reset
        value (cold buffer pool, fresh tempdb).
        """

    @abc.abstractmethod
    def next_value(self, context: ModelContext) -> float:
        """Value to report given ``context.previous_value``.

        Must tolerate ``previous_value is None`` by delegating to
        :meth:`initial_value`.
        """

    def kind(self) -> str:
        """XML element name for this model (stable wire identifier)."""
        raise NotImplementedError


class TotoModelSet:
    """The parsed collection of resource models one RgManager holds.

    Lookup picks the *first* model whose metric matches and whose
    selector accepts the database, so more specific models should be
    listed before broad ones in the XML (documented contract).
    """

    def __init__(self, models: Sequence[ResourceModel] = ()) -> None:
        self._models: List[ResourceModel] = list(models)

    @property
    def models(self) -> List[ResourceModel]:
        return list(self._models)

    def __len__(self) -> int:
        return len(self._models)

    def find(self, metric: str,
             database: DatabaseInstance) -> Optional[ResourceModel]:
        """First model governing ``metric`` for ``database``, if any."""
        for model in self._models:
            if model.metric == metric and model.applies_to(database):
                return model
        return None

    def metrics_modeled(self) -> List[str]:
        """Distinct metric names any model governs."""
        seen: List[str] = []
        for model in self._models:
            if model.metric not in seen:
                seen.append(model.metric)
        return seen


@dataclass(frozen=True)
class BinnedUniform:
    """Equal-probability bins, uniform within each bin.

    Paper §4.2.3: "The probability distribution was then created by
    partitioning the 'High Initial Growth' Delta Disk Usage values into
    five uniform bins, each with equal probability of being selected."
    """

    bins: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.bins:
            raise ModelSpecError("BinnedUniform needs at least one bin")
        for low, high in self.bins:
            if high < low:
                raise ModelSpecError(f"bin [{low}, {high}] is inverted")

    @classmethod
    def from_sample(cls, sample: Sequence[float],
                    n_bins: int = 5) -> "BinnedUniform":
        """Partition ``sample`` into ``n_bins`` equal-probability bins."""
        data = np.sort(np.asarray(sample, dtype=float))
        if data.size == 0:
            raise ModelSpecError("cannot bin an empty sample")
        edges = np.quantile(data, np.linspace(0.0, 1.0, n_bins + 1))
        bins = tuple((float(edges[i]), float(edges[i + 1]))
                     for i in range(n_bins))
        return cls(bins=bins)

    def sample(self, rng: np.random.Generator) -> float:
        """Pick a bin uniformly, then a value uniformly within it."""
        low, high = self.bins[int(rng.integers(len(self.bins)))]
        if high == low:
            return low
        return float(rng.uniform(low, high))

    def mean(self) -> float:
        """Expected value (bins are equiprobable)."""
        return float(np.mean([(low + high) / 2.0 for low, high in self.bins]))
