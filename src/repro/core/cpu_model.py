"""CPU-usage model (paper §5.5 future work).

CPU *reservations* (the SLO core count) are what the density experiment
governs; CPU *usage* is listed as future modeling work. We implement an
hourly-normal utilization model — most cloud databases idle at low
utilization with business-hour peaks (paper Figure 3b) — reporting
used cores as ``utilization x SLO cores``. Like memory, CPU usage is
non-persisted: it resets when a replica moves.

The model reports under a dedicated advisory metric name so it never
interferes with the reservation metric the PLB enforces.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.hourly_schedule import HourlyNormalSchedule
from repro.core.model_base import ModelContext, ResourceModel
from repro.core.selectors import DatabaseSelector
from repro.fabric.metrics import CPU_USED_CORES
from repro.sqldb.database import DatabaseInstance

__all__ = ["CPU_USED_CORES", "CpuUsageModel"]


class CpuUsageModel(ResourceModel):
    """Hourly-normal CPU utilization sampled per report."""

    metric = CPU_USED_CORES
    persisted = False

    def __init__(self, selector: DatabaseSelector,
                 utilization: HourlyNormalSchedule,
                 secondary_fraction: float = 0.3,
                 start_weekday: int = 0) -> None:
        utilization.validate()
        self.selector = selector
        self.utilization = utilization
        self.secondary_fraction = secondary_fraction
        self.start_weekday = start_weekday

    def kind(self) -> str:
        return "CpuUsageModel"

    def utilization_params(self, now: int) -> Tuple[float, float]:
        """(mu, sigma) of the utilization draw at ``now``.

        Split out so a sweep can assemble one batched draw for every
        replica on a node (RgManager's vectorized CPU observation);
        the value derivation from the raw draw lives in
        :meth:`value_from_utilization`.
        """
        return self.utilization.params_at(now, self.start_weekday)

    def value_from_utilization(self, draw: float, is_primary: bool,
                               database: DatabaseInstance) -> float:
        """Used cores from one raw utilization draw."""
        utilization = min(max(draw, 0.0), 1.0)
        if not is_primary:
            utilization *= self.secondary_fraction
        return utilization * database.slo.cores

    def initial_value(self, context: ModelContext) -> float:
        """Fresh replicas start effectively idle."""
        return 0.0

    def next_value(self, context: ModelContext) -> float:
        mu, sigma = self.utilization_params(context.now)
        draw = float(context.rng.normal(mu, sigma)) if sigma > 0 else mu
        return self.value_from_utilization(draw, context.is_primary,
                                           context.database)
