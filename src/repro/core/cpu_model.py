"""CPU-usage model (paper §5.5 future work).

CPU *reservations* (the SLO core count) are what the density experiment
governs; CPU *usage* is listed as future modeling work. We implement an
hourly-normal utilization model — most cloud databases idle at low
utilization with business-hour peaks (paper Figure 3b) — reporting
used cores as ``utilization x SLO cores``. Like memory, CPU usage is
non-persisted: it resets when a replica moves.

The model reports under a dedicated advisory metric name so it never
interferes with the reservation metric the PLB enforces.
"""

from __future__ import annotations

from repro.core.hourly_schedule import HourlyNormalSchedule
from repro.core.model_base import ModelContext, ResourceModel
from repro.core.selectors import DatabaseSelector
from repro.fabric.metrics import CPU_USED_CORES

__all__ = ["CPU_USED_CORES", "CpuUsageModel"]


class CpuUsageModel(ResourceModel):
    """Hourly-normal CPU utilization sampled per report."""

    metric = CPU_USED_CORES
    persisted = False

    def __init__(self, selector: DatabaseSelector,
                 utilization: HourlyNormalSchedule,
                 secondary_fraction: float = 0.3,
                 start_weekday: int = 0) -> None:
        utilization.validate()
        self.selector = selector
        self.utilization = utilization
        self.secondary_fraction = secondary_fraction
        self.start_weekday = start_weekday

    def kind(self) -> str:
        return "CpuUsageModel"

    def _sample_utilization(self, context: ModelContext) -> float:
        mu, sigma = self.utilization.params_at(context.now,
                                               self.start_weekday)
        draw = float(context.rng.normal(mu, sigma)) if sigma > 0 else mu
        return min(max(draw, 0.0), 1.0)

    def initial_value(self, context: ModelContext) -> float:
        """Fresh replicas start effectively idle."""
        return 0.0

    def next_value(self, context: ModelContext) -> float:
        utilization = self._sample_utilization(context)
        if not context.is_primary:
            utilization *= self.secondary_fraction
        return utilization * context.database.slo.cores
