"""Disk-usage models (paper §4.2).

One :class:`DiskUsageModel` composes the paper's three growth patterns:

* **Steady-State Growth** (§4.2.2) — an hourly-normal schedule over the
  20-minute Delta Disk Usage; applies to *all* databases the model
  selects.
* **Initial Creation Growth** (§4.2.3) — with a trained probability a
  new database grows by a binned-uniform total during its first 30
  minutes (restore-from-mdf / bulk load behaviour).
* **Predictable Rapid Growth** (§4.2.4) — with a trained probability a
  database follows a four-state machine (steady → rapid increase →
  steady between spikes → rapid decrease), e.g. an ETL pipeline that
  loads new data and ages old data out.

Whether a database exhibits the optional patterns is decided once at
creation time (:meth:`DiskUsageModel.sample_creation_flags`) and stored
as flags on the database, so the sequence of decisions is fixed by the
Population Manager's single seed (§5.2) and identical across density
experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ModelSpecError
from repro.core.hourly_schedule import HourlyNormalSchedule
from repro.core.model_base import (
    BinnedUniform,
    ModelContext,
    ResourceModel,
)
from repro.core.selectors import DatabaseSelector
from repro.fabric.metrics import DISK_GB
from repro.units import DELTA_DISK_PERIOD, MINUTE

#: §4.2.3: databases growing more than 12 GB within the first five
#: minutes are labeled "High Initial Growth" during training.
HIGH_INITIAL_GROWTH_LABEL_GB = 12.0
#: §4.2.3: "This model assumes that the high growth period will last
#: for 30 minutes".
INITIAL_GROWTH_DURATION = 30 * MINUTE


@dataclass(frozen=True)
class InitialGrowthSpec:
    """Initial Creation Growth parameters.

    Attributes:
        probability: chance a new database exhibits the pattern.
        totals: binned-uniform distribution of the 30-minute total
            growth (GB).
        duration_seconds: length of the high-growth window.
    """

    probability: float
    totals: BinnedUniform
    duration_seconds: int = INITIAL_GROWTH_DURATION

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ModelSpecError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.duration_seconds <= 0:
            raise ModelSpecError("duration must be positive")


@dataclass(frozen=True)
class RapidGrowthSpec:
    """Predictable Rapid Growth state machine parameters.

    The four states execute in the paper's order; ``*_duration`` values
    are the trained average time in each state, and spike magnitudes
    come from equal-probability bins with uniform intra-bin draws.
    The decrease bins hold *positive* magnitudes; the model subtracts.
    """

    probability: float
    steady_duration: int
    increase_duration: int
    between_duration: int
    decrease_duration: int
    increase_totals: BinnedUniform
    decrease_totals: BinnedUniform

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ModelSpecError(
                f"probability must be in [0, 1], got {self.probability}")
        for name in ("steady_duration", "increase_duration",
                     "between_duration", "decrease_duration"):
            if getattr(self, name) <= 0:
                raise ModelSpecError(f"{name} must be positive")

    @property
    def cycle_seconds(self) -> int:
        """Length of one full steady/spike cycle."""
        return (self.steady_duration + self.increase_duration
                + self.between_duration + self.decrease_duration)

    def phase_at(self, seconds_since_creation: int) -> str:
        """State name at an age: steady | increase | between | decrease."""
        offset = seconds_since_creation % self.cycle_seconds
        if offset < self.steady_duration:
            return "steady"
        offset -= self.steady_duration
        if offset < self.increase_duration:
            return "increase"
        offset -= self.increase_duration
        if offset < self.between_duration:
            return "between"
        return "decrease"


class DiskUsageModel(ResourceModel):
    """The composite disk model executed inside RgManager.

    Args:
        selector: databases this model governs (the paper configures
            distinct models for Standard/GP and Premium/BC).
        steady: hourly-normal schedule of Delta Disk Usage per 20-minute
            period (GB).
        initial_growth: optional Initial Creation Growth spec.
        rapid_growth: optional Predictable Rapid Growth spec.
        persisted: True for local-store disk (survives failovers via the
            Naming Service), False for remote-store tempdb (§3.3.2).
        floor_gb: reported disk never falls below this.
        start_weekday: weekday of simulation time zero.
    """

    metric = DISK_GB

    def __init__(self, selector: DatabaseSelector,
                 steady: HourlyNormalSchedule,
                 initial_growth: Optional[InitialGrowthSpec] = None,
                 rapid_growth: Optional[RapidGrowthSpec] = None,
                 persisted: bool = True,
                 floor_gb: float = 0.5,
                 rate_heterogeneity: float = 0.8,
                 start_weekday: int = 0) -> None:
        steady.validate()
        if rate_heterogeneity < 0:
            raise ModelSpecError(
                f"rate_heterogeneity must be >= 0, got {rate_heterogeneity}")
        self.selector = selector
        self.steady = steady
        self.initial_growth = initial_growth
        self.rapid_growth = rapid_growth
        self.persisted = persisted
        self.floor_gb = floor_gb
        #: Sigma of the per-database lognormal growth-rate factor.
        #: Databases do not all grow at the aggregate trained rate:
        #: most barely grow while a few grow fast, which is what builds
        #: node-level disk imbalance. The factor is a pure function of
        #: the database id (mean 1.0, so the trained aggregate growth
        #: is preserved), keeping the model stateless per §3.3.1.
        self.rate_heterogeneity = rate_heterogeneity
        self.start_weekday = start_weekday
        self._rate_factor_cache: Dict[str, float] = {}

    def kind(self) -> str:
        return "DiskUsageModel"

    # -- creation-time decisions ----------------------------------------

    def sample_creation_flags(self, rng: np.random.Generator
                              ) -> Tuple[bool, float, bool]:
        """Decide a new database's growth patterns.

        Returns ``(high_initial_growth, initial_total_gb, rapid_growth)``.
        Draws are always consumed in the same order regardless of the
        outcome, so a fixed seed yields the same flag sequence even when
        admission outcomes differ between experiments.
        """
        initial_roll = float(rng.random())
        rapid_roll = float(rng.random())
        high_initial = False
        total = 0.0
        if self.initial_growth is not None:
            total_draw = self.initial_growth.totals.sample(rng)
            if initial_roll < self.initial_growth.probability:
                high_initial = True
                total = total_draw
        rapid = (self.rapid_growth is not None
                 and rapid_roll < self.rapid_growth.probability)
        return high_initial, total, rapid

    # -- ResourceModel ----------------------------------------------------

    def initial_value(self, context: ModelContext) -> float:
        """Starting disk for a replica with no history on this node."""
        return max(context.database.initial_local_disk_gb(), self.floor_gb)

    def next_value(self, context: ModelContext) -> float:
        """Previous value plus this interval's sampled growth."""
        if context.previous_value is None:
            return self.initial_value(context)
        delta = self._sample_delta(context)
        value = context.previous_value + delta
        cap = context.database.slo.max_data_gb
        return float(min(max(value, self.floor_gb), cap))

    # -- growth composition ----------------------------------------------

    def _sample_delta(self, context: ModelContext) -> float:
        """Growth (GB) over ``context.interval_seconds``."""
        database = context.database
        age = context.now - database.created_at

        delta = self._steady_delta(context)

        if (database.high_initial_growth and self.initial_growth is not None
                and age <= self.initial_growth.duration_seconds):
            duration = self.initial_growth.duration_seconds
            rate = database.initial_growth_total_gb / duration
            window = min(context.interval_seconds, max(duration - (age - context.interval_seconds), 0))
            delta += rate * window

        if database.rapid_growth and self.rapid_growth is not None:
            delta += self._rapid_delta(context, age)
        return delta

    def _steady_delta(self, context: ModelContext) -> float:
        mu, sigma = self.steady.params_at(context.now, self.start_weekday)
        factor = self.rate_factor(context.database.db_id)
        scale = context.interval_seconds / DELTA_DISK_PERIOD
        draw = float(context.rng.normal(mu, sigma)) if sigma > 0 else mu
        return draw * factor * scale

    def rate_factor(self, db_id: str) -> float:
        """Per-database growth-rate multiplier (deterministic, mean 1)."""
        if self.rate_heterogeneity == 0:
            return 1.0
        factor = self._rate_factor_cache.get(db_id)
        if factor is None:
            acc = 0x811C9DC5
            for byte in db_id.encode("utf-8"):
                acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
            uniform = (acc + 0.5) / 2 ** 32
            z = NormalDist().inv_cdf(uniform)
            sigma = self.rate_heterogeneity
            # exp(sigma * z - sigma^2 / 2) has mean exactly 1.
            factor = math.exp(sigma * z - 0.5 * sigma * sigma)
            self._rate_factor_cache[db_id] = factor
        return factor

    def _rapid_delta(self, context: ModelContext, age: int) -> float:
        spec = self.rapid_growth
        assert spec is not None
        phase = spec.phase_at(age)
        if phase == "increase":
            total = spec.increase_totals.sample(context.rng)
            return total * context.interval_seconds / spec.increase_duration
        if phase == "decrease":
            total = spec.decrease_totals.sample(context.rng)
            return -total * context.interval_seconds / spec.decrease_duration
        return 0.0
