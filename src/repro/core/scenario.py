"""Declarative benchmark scenarios.

Paper §1: "Toto consumes declaratively specified models and
parameters, allowing us to easily (re)specify a benchmark scenario of
arbitrary scale, complexity, and time-length and target any SQL DB
cluster." A :class:`BenchmarkScenario` is that declaration: the ring
shape (with the density knob), the initial population, the model
document, the duration, and the seeds.

Seeding follows §5.2: one root seed fixes the Population Manager and
the per-node model streams; the PLB stream is salted separately
(``plb_salt``) because production could not pin the PLB seed across
repeated runs — the non-determinism study varies only this salt.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.chaos.faults import ChaosConfig
from repro.errors import ScenarioError
from repro.core.model_xml import TotoModelDocument
from repro.obs.config import ObsConfig
from repro.sqldb.population import InitialPopulationSpec
from repro.sqldb.tenant_ring import TenantRingConfig
from repro.units import DAY, HOUR


@dataclass(frozen=True)
class ScriptedCreate:
    """A hand-written create injected at a fixed offset into the run.

    This is the paper's use case (c): "debug ('repro') problems from
    the production clusters". A production incident — say, a 6-core
    Business Critical database restoring 1.3 TB at hour 30 — is
    replayed exactly, on top of the statistical churn.

    Attributes:
        at_offset: seconds after the experiment's official start.
        slo_name: the SLO to create.
        initial_data_gb: data size at creation.
        high_initial_growth / initial_growth_total_gb: Initial Creation
            Growth override (§4.2.3).
        rapid_growth: Predictable Rapid Growth flag (§4.2.4).
    """

    at_offset: int
    slo_name: str
    initial_data_gb: float
    high_initial_growth: bool = False
    initial_growth_total_gb: float = 0.0
    rapid_growth: bool = False

    def __post_init__(self) -> None:
        if self.at_offset < 0:
            raise ScenarioError("scripted create offset must be >= 0")
        if self.initial_data_gb < 0:
            raise ScenarioError("scripted create size must be >= 0")


@dataclass(frozen=True)
class BenchmarkScenario:
    """Everything needed to run one benchmark, declaratively."""

    name: str
    model_document: TotoModelDocument
    seed: int = 42
    plb_salt: int = 0
    duration: int = 6 * DAY
    ring: TenantRingConfig = field(default_factory=TenantRingConfig)
    initial_population: Optional[InitialPopulationSpec] = None
    #: Time between bootstrap placement and the official experiment
    #: start; growth is frozen and the PLB balances the initial
    #: population ("This also allows the PLB to properly place and
    #: balance the databases throughout the cluster", §5.2).
    bootstrap_settle: int = 2 * HOUR
    telemetry_interval: int = HOUR
    run_population_manager: bool = True
    #: Hand-scripted creates replayed on top of the churn (use case (c):
    #: reproducing production incidents).
    scripted_creates: Tuple[ScriptedCreate, ...] = ()
    #: Optional fault-injection profile (docs/CHAOS.md); None runs the
    #: benchmark undisturbed.
    chaos: Optional[ChaosConfig] = None
    #: Optional observability flags (docs/OBSERVABILITY.md); None (or an
    #: all-off config) runs without any instrumentation attached.
    obs: Optional[ObsConfig] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario needs a name")
        if self.duration <= 0:
            raise ScenarioError(f"duration must be > 0, got {self.duration}")
        if self.bootstrap_settle < 0:
            raise ScenarioError("bootstrap_settle must be >= 0")
        if self.telemetry_interval <= 0:
            raise ScenarioError("telemetry_interval must be > 0")

    @property
    def duration_hours(self) -> float:
        return self.duration / HOUR

    def with_density(self, density: float) -> "BenchmarkScenario":
        """Copy with a different density knob (the §5 sweep)."""
        pct = int(round(density * 100))
        return replace(self,
                       name=f"{self.name}@{pct}%",
                       ring=replace(self.ring, density=density))

    def with_plb_salt(self, salt: int) -> "BenchmarkScenario":
        """Copy varying only the PLB randomness (repeatability study)."""
        return replace(self, name=f"{self.name}#plb{salt}", plb_salt=salt)

    def with_duration(self, duration: int) -> "BenchmarkScenario":
        """Copy with a different run length."""
        return replace(self, duration=duration)

    def with_chaos(self, chaos: Optional[ChaosConfig]) -> "BenchmarkScenario":
        """Copy with a fault-injection profile attached (or removed)."""
        if chaos is None:
            return replace(self, chaos=None)
        return replace(self, name=f"{self.name}+chaos:{chaos.profile}",
                       chaos=chaos)

    def with_obs(self, obs: Optional[ObsConfig]) -> "BenchmarkScenario":
        """Copy with observability flags attached (or removed).

        Deliberately leaves ``name`` unchanged: an observed run is the
        *same* experiment — exports must be byte-comparable against the
        unobserved run of the same scenario.
        """
        return replace(self, obs=obs)
