"""Database subset selectors.

Paper §3.3.1: model objects "contain a description of the resource they
are modeling, the set of databases it applies to (e.g., all remote
store databases), and the periodicity of reporting". A selector is the
"set of databases" part — declarative, XML-serializable, and cheap to
evaluate on every metric-report RPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.errors import ModelSpecError
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import Edition


@dataclass(frozen=True)
class DatabaseSelector:
    """Predicate over databases.

    All specified conditions must hold (conjunction). An empty selector
    matches every database.
    """

    edition: Optional[Edition] = None
    slo_names: Optional[FrozenSet[str]] = None
    db_ids: Optional[FrozenSet[str]] = None
    min_cores: Optional[int] = None
    max_cores: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.min_cores is not None and self.max_cores is not None
                and self.min_cores > self.max_cores):
            raise ModelSpecError(
                f"min_cores {self.min_cores} > max_cores {self.max_cores}")

    def matches(self, database: DatabaseInstance) -> bool:
        """True when ``database`` satisfies every condition."""
        if self.edition is not None and database.edition is not self.edition:
            return False
        if self.slo_names is not None and database.slo.name not in self.slo_names:
            return False
        if self.db_ids is not None and database.db_id not in self.db_ids:
            return False
        if self.min_cores is not None and database.slo.cores < self.min_cores:
            return False
        if self.max_cores is not None and database.slo.cores > self.max_cores:
            return False
        return True

    # -- XML attribute (de)serialization --------------------------------

    def to_attributes(self) -> Dict[str, str]:
        """Flatten to XML attributes."""
        attributes: Dict[str, str] = {}
        if self.edition is not None:
            attributes["edition"] = self.edition.value
        if self.slo_names is not None:
            attributes["slos"] = ",".join(sorted(self.slo_names))
        if self.db_ids is not None:
            attributes["dbIds"] = ",".join(sorted(self.db_ids))
        if self.min_cores is not None:
            attributes["minCores"] = str(self.min_cores)
        if self.max_cores is not None:
            attributes["maxCores"] = str(self.max_cores)
        return attributes

    @classmethod
    def from_attributes(cls, attributes: Dict[str, str]) -> "DatabaseSelector":
        """Parse from XML attributes (inverse of :meth:`to_attributes`)."""
        edition: Optional[Edition] = None
        if "edition" in attributes:
            value = attributes["edition"]
            try:
                edition = Edition(value)
            except ValueError:
                raise ModelSpecError(f"unknown edition '{value}'") from None
        slo_names = (frozenset(attributes["slos"].split(","))
                     if "slos" in attributes else None)
        db_ids = (frozenset(attributes["dbIds"].split(","))
                  if "dbIds" in attributes else None)
        min_cores = (int(attributes["minCores"])
                     if "minCores" in attributes else None)
        max_cores = (int(attributes["maxCores"])
                     if "maxCores" in attributes else None)
        return cls(edition=edition, slo_names=slo_names, db_ids=db_ids,
                   min_cores=min_cores, max_cores=max_cores)


#: Selector matching all remote-store databases.
ALL_STANDARD_GP = DatabaseSelector(edition=Edition.STANDARD_GP)
#: Selector matching all local-store databases.
ALL_PREMIUM_BC = DatabaseSelector(edition=Edition.PREMIUM_BC)
#: Selector matching every database.
ALL_DATABASES = DatabaseSelector()
