"""Create-DB / Drop-DB models (paper §4.1).

The paper models the number of creates and drops per hour as separate
"hourly normal" distributions per (weekday/weekend, hour, edition) —
96 Create models and 96 Drop models in total. A
:class:`CreateDropModel` holds both 2 x 24 schedules for one edition;
the Population Manager owns one per edition.

Region-level parameters are scaled down to one tenant ring with
:meth:`CreateDropModel.scaled_to_ring`, matching the paper's
equal-probability ring-selection assumption (§4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ModelSpecError
from repro.core.hourly_schedule import DayType, HourlyNormalSchedule
from repro.rng import BatchedStream
from repro.sqldb.editions import Edition


@dataclass
class CreateDropModel:
    """Hourly-normal create and drop rate model for one edition."""

    edition: Edition
    creates: HourlyNormalSchedule
    drops: HourlyNormalSchedule

    def __post_init__(self) -> None:
        self.creates.validate()
        self.drops.validate()

    def sample_creates(self, daytype: DayType, hour: int,
                       rng: np.random.Generator) -> int:
        """Number of databases to create this hour (never negative)."""
        return self._sample(self.creates, daytype, hour, rng)

    def sample_drops(self, daytype: DayType, hour: int,
                     rng: np.random.Generator) -> int:
        """Number of databases to drop this hour (never negative)."""
        return self._sample(self.drops, daytype, hour, rng)

    @staticmethod
    def _sample(schedule: HourlyNormalSchedule, daytype: DayType, hour: int,
                rng: np.random.Generator) -> int:
        mu, sigma = schedule.params(daytype, hour)
        draw = rng.normal(mu, sigma) if sigma > 0 else mu
        return max(0, int(round(draw)))

    def sample_counts(self, daytype: DayType, hour: int,
                      batch: BatchedStream) -> Tuple[int, int]:
        """Draw ``(n_creates, n_drops)`` for the hour in one numpy call.

        Draw-for-draw identical to :meth:`sample_creates` followed by
        :meth:`sample_drops` on the wrapped stream — the two hourly
        cells go through one masked array-parameter normal draw (a
        zero-sigma cell consumes no randomness, as in the scalar path).
        """
        mu_c, sigma_c = self.creates.params(daytype, hour)
        mu_d, sigma_d = self.drops.params(daytype, hour)
        draws = batch.normals((mu_c, mu_d), (sigma_c, sigma_d))
        return (max(0, int(round(float(draws[0])))),
                max(0, int(round(float(draws[1])))))

    def expected_creates(self, daytype: DayType, hour: int) -> float:
        """Mean creates for a cell (used in reports and calibration)."""
        return self.creates.params(daytype, hour)[0]

    def expected_drops(self, daytype: DayType, hour: int) -> float:
        """Mean drops for a cell."""
        return self.drops.params(daytype, hour)[0]

    def expected_net_per_day(self, daytype: DayType) -> float:
        """Expected net creates over one day of ``daytype``.

        The truncation-at-zero bias of sampling is ignored; this is a
        planning aid, not the sampler.
        """
        net = 0.0
        for hour in range(24):
            net += (self.expected_creates(daytype, hour)
                    - self.expected_drops(daytype, hour))
        return net

    def scaled_to_ring(self, ring_count: int) -> "CreateDropModel":
        """Scale region-level rates down to a single tenant ring."""
        if ring_count < 1:
            raise ModelSpecError(f"ring_count must be >= 1, got {ring_count}")
        factor = 1.0 / ring_count
        return CreateDropModel(edition=self.edition,
                               creates=self.creates.scaled(factor),
                               drops=self.drops.scaled(factor))
