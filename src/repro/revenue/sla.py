"""SLA service credits (paper §5.1, ref [55]).

"The service-level agreement (SLA) for Azure SQL DB is 99.99%. To
compute modeled adjusted revenue, we assumed that if a database was
down 0.01% or more of its lifetime, service credits based on the SLA
would be paid back to the customer and subtracted from the revenue."

The tier structure follows the public Azure SQL DB SLA: uptime below
99.99% refunds 10% of the bill, below 99% refunds 25%, and below 95%
refunds 100%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ReproError

#: The Azure SQL DB availability target.
SLA_UPTIME_TARGET = 0.9999


@dataclass(frozen=True)
class ServiceCreditSchedule:
    """Mapping from uptime fraction to refunded fraction of the bill.

    ``tiers`` are (uptime_below, credit_fraction) pairs ordered from
    the loosest threshold to the tightest; the first matching tier
    applies (evaluation walks from the most severe).
    """

    tiers: Tuple[Tuple[float, float], ...] = (
        (0.95, 1.00),
        (0.99, 0.25),
        (SLA_UPTIME_TARGET, 0.10),
    )

    def __post_init__(self) -> None:
        previous = -1.0
        for uptime_below, credit in self.tiers:
            if not 0.0 < uptime_below <= 1.0:
                raise ReproError(f"bad uptime threshold {uptime_below}")
            if not 0.0 <= credit <= 1.0:
                raise ReproError(f"bad credit fraction {credit}")
            if uptime_below <= previous:
                raise ReproError("tiers must be strictly increasing")
            previous = uptime_below

    def credit_fraction(self, uptime_fraction: float) -> float:
        """Refunded fraction of the bill for an observed uptime."""
        if not 0.0 <= uptime_fraction <= 1.0 + 1e-12:
            raise ReproError(f"uptime fraction {uptime_fraction} out of range")
        for uptime_below, credit in self.tiers:
            if uptime_fraction < uptime_below:
                return credit
        return 0.0


#: The default schedule used by all experiments.
DEFAULT_CREDITS = ServiceCreditSchedule()
