"""Price catalog (paper §5.1, ref [9]: the public Azure pricing page).

"The modeled revenue of each database (the price the customer paid)
was determined by its SLO. For a single database, the compute revenue
was calculated by multiplying the price of database instance by the
lifetime of the database. The storage revenue was calculated by
multiplying the size of the data by the price of storage and the
lifetime of the database."

The constants approximate the public vCore pricing shape: BC compute
costs roughly 2x GP per core (local SSD + 4x replication), and BC
storage is roughly 2x GP storage per GB-month.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ReproError
from repro.sqldb.editions import Edition
from repro.sqldb.slo import ServiceLevelObjective
from repro.units import HOURS_PER_MONTH


@dataclass(frozen=True)
class PriceCatalog:
    """Hourly compute and monthly storage prices per edition (USD)."""

    compute_per_core_hour: Dict[Edition, float]
    storage_per_gb_month: Dict[Edition, float]

    def __post_init__(self) -> None:
        for edition in Edition:
            if edition not in self.compute_per_core_hour:
                raise ReproError(f"no compute price for {edition.value}")
            if edition not in self.storage_per_gb_month:
                raise ReproError(f"no storage price for {edition.value}")

    def compute_hourly(self, slo: ServiceLevelObjective) -> float:
        """Hourly compute price for an SLO (customers pay per database,
        not per replica — replication cost is folded into the BC rate)."""
        return self.compute_per_core_hour[slo.edition] * slo.cores

    def storage_hourly_per_gb(self, edition: Edition) -> float:
        """Hourly storage price per GB."""
        return self.storage_per_gb_month[edition] / HOURS_PER_MONTH


#: Default catalog modeled on public gen5 vCore pricing.
STANDARD_PRICES = PriceCatalog(
    compute_per_core_hour={
        Edition.STANDARD_GP: 0.2529,
        Edition.PREMIUM_BC: 0.5491,
    },
    storage_per_gb_month={
        Edition.STANDARD_GP: 0.115,
        Edition.PREMIUM_BC: 0.25,
    },
)
