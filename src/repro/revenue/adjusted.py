"""Adjusted-revenue computation over a run's database population.

Per database: ``adjusted = compute + storage - penalty`` where the
penalty is the SLA service credit applied to the bill when the
database's downtime fraction reaches 0.01% of its lifetime (§5.1).
Storage is billed on the database's *data* size — for local-store
databases that is the primary replica's disk usage; for remote-store
databases it is the (remote) data size, which we approximate with the
initial data size since GP data never touches the governed local disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.fabric.naming import NamingService
from repro.fabric.metrics import DISK_GB
from repro.revenue.pricing import PriceCatalog, STANDARD_PRICES
from repro.revenue.sla import DEFAULT_CREDITS, ServiceCreditSchedule
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import Edition
from repro.sqldb.rgmanager import persisted_load_key
from repro.units import HOUR, HOURS_PER_MONTH


@dataclass(frozen=True)
class DatabaseRevenue:
    """Revenue decomposition for one database."""

    db_id: str
    edition: Edition
    lifetime_hours: float
    compute_revenue: float
    storage_revenue: float
    penalty: float
    downtime_fraction: float

    @property
    def gross(self) -> float:
        return self.compute_revenue + self.storage_revenue

    @property
    def adjusted(self) -> float:
        return self.gross - self.penalty

    @property
    def penalized(self) -> bool:
        return self.penalty > 0


@dataclass(frozen=True)
class AdjustedRevenueReport:
    """Population-level roll-up (Figure 14)."""

    per_database: tuple
    total_gross: float
    total_penalty: float
    total_adjusted: float
    penalized_databases: int
    gp_adjusted: float
    bc_adjusted: float

    @property
    def penalty_share(self) -> float:
        """Penalty as a fraction of gross revenue."""
        if self.total_gross == 0:
            return 0.0
        return self.total_penalty / self.total_gross


def _billed_data_gb(database: DatabaseInstance,
                    naming: Optional[NamingService]) -> float:
    """Data size the storage bill is based on."""
    if database.is_local_store and naming is not None:
        persisted = naming.get_or_default(
            persisted_load_key(database.db_id, DISK_GB))
        if persisted is not None:
            return float(persisted)
    return database.initial_data_gb


def database_revenue(database: DatabaseInstance, now: int,
                     prices: PriceCatalog = STANDARD_PRICES,
                     credits: ServiceCreditSchedule = DEFAULT_CREDITS,
                     naming: Optional[NamingService] = None
                     ) -> DatabaseRevenue:
    """Compute one database's modeled adjusted revenue at time ``now``."""
    lifetime_hours = database.lifetime_seconds(now) / HOUR
    hourly_rate = prices.compute_hourly(database.slo)
    compute = hourly_rate * lifetime_hours
    data_gb = _billed_data_gb(database, naming)
    storage_rate = prices.storage_hourly_per_gb(database.edition) * data_gb
    storage = storage_rate * lifetime_hours

    downtime_fraction = database.downtime_fraction(now)
    uptime_fraction = 1.0 - downtime_fraction
    penalty = 0.0
    credit = credits.credit_fraction(uptime_fraction)
    if credit > 0:
        # Per the public SLA, a service credit is a percentage of the
        # *monthly* bill, regardless of how far into the month the
        # breach occurred. Capped at the revenue actually accrued so a
        # single database never scores negative.
        monthly_bill = (hourly_rate + storage_rate) * HOURS_PER_MONTH
        penalty = min(credit * monthly_bill, compute + storage)

    return DatabaseRevenue(
        db_id=database.db_id,
        edition=database.edition,
        lifetime_hours=lifetime_hours,
        compute_revenue=compute,
        storage_revenue=storage,
        penalty=penalty,
        downtime_fraction=downtime_fraction,
    )


# totolint: merge-fn
def adjusted_revenue_report(databases: List[DatabaseInstance], now: int,
                            prices: PriceCatalog = STANDARD_PRICES,
                            credits: ServiceCreditSchedule = DEFAULT_CREDITS,
                            naming: Optional[NamingService] = None
                            ) -> AdjustedRevenueReport:
    """Roll up adjusted revenue over every database a run ever hosted.

    Registered merge helper (``merge-fn``): the roll-up is a strict
    left-to-right fold over ``databases`` in creation (``db_id``)
    order, so the report's float totals are bit-reproducible for a
    given population — the single-cluster anchor of the fleet-level
    determinism contract in :mod:`repro.fleet.summary`.
    """
    rows = [database_revenue(db, now, prices, credits, naming)
            for db in databases]
    gross = 0.0
    penalty = 0.0
    adjusted = 0.0
    gp_adjusted = 0.0
    bc_adjusted = 0.0
    penalized = 0
    for row in rows:
        gross += row.gross
        penalty += row.penalty
        adjusted += row.adjusted
        if row.penalized:
            penalized += 1
        if row.edition is Edition.STANDARD_GP:
            gp_adjusted += row.adjusted
        elif row.edition is Edition.PREMIUM_BC:
            bc_adjusted += row.adjusted
    return AdjustedRevenueReport(
        per_database=tuple(rows),
        total_gross=gross,
        total_penalty=penalty,
        total_adjusted=adjusted,
        penalized_databases=penalized,
        gp_adjusted=gp_adjusted,
        bc_adjusted=bc_adjusted,
    )
