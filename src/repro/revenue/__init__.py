"""Modeled adjusted revenue (paper §5.1).

Revenue = compute (SLO price x lifetime) + storage (data size x GB
price x lifetime); the penalty subtracts SLA service credits whenever a
database was down 0.01% or more of its lifetime. Adjusted revenue "is
a means to normalize density and failovers" — it is what turns the
density/QoS trade-off into a single score (Figures 2 and 14).
"""

from repro.revenue.adjusted import (
    AdjustedRevenueReport,
    DatabaseRevenue,
    adjusted_revenue_report,
    database_revenue,
)
from repro.revenue.pricing import PriceCatalog, STANDARD_PRICES
from repro.revenue.sla import SLA_UPTIME_TARGET, ServiceCreditSchedule

__all__ = [
    "AdjustedRevenueReport",
    "DatabaseRevenue",
    "PriceCatalog",
    "STANDARD_PRICES",
    "SLA_UPTIME_TARGET",
    "ServiceCreditSchedule",
    "adjusted_revenue_report",
    "database_revenue",
]
