"""The fleet/region scale layer (ROADMAP item 1, docs/FLEET.md).

Scales the single-cluster benchmark to a production-like region:
:class:`FleetTopology` stamps N clusters from one
:class:`ClusterTemplate`, :func:`run_fleet` shards them across the
warm process pool with worker-side reduction to bounded-memory
:class:`ClusterSummary` values, and the spec-ordered merge plus
:func:`fleet_digest` keep serial and sharded runs byte-identical.
"""

from repro.fleet.runner import (
    FleetResult,
    fleet_metric_registry,
    fleet_obs_export,
    run_fleet,
)
from repro.fleet.summary import (
    ClusterSummary,
    FleetFrame,
    FleetKpis,
    fleet_digest,
    merge_frames,
    merge_summaries,
    summarize_result,
)
from repro.fleet.topology import ClusterTemplate, FleetTopology

__all__ = [
    "ClusterSummary",
    "ClusterTemplate",
    "FleetFrame",
    "FleetKpis",
    "FleetResult",
    "FleetTopology",
    "fleet_digest",
    "fleet_metric_registry",
    "fleet_obs_export",
    "merge_frames",
    "merge_summaries",
    "run_fleet",
    "summarize_result",
]
