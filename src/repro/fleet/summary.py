"""Per-cluster summaries and the deterministic fleet merge.

Bounded memory is the point: a full
:class:`~repro.core.runner.BenchmarkResult` holds every telemetry
frame, failover record, and database of its run — at 100 clusters the
parent process would hold ~1M database objects. Instead the sweep
executor applies :func:`summarize_result` *inside each worker* (its
``reducer`` hook), so only a compact :class:`ClusterSummary` — scalars
plus an hourly :class:`FleetFrame` series — ever crosses the process
boundary or accumulates in the parent.

Determinism contract (docs/FLEET.md, pinned by
tests/test_fleet_merge.py):

* summaries are merged in spec order (ascending cluster index), with
  plain sequential Python float accumulation — never pairwise/numpy
  summation — so the merged KPIs are bit-identical no matter how the
  clusters were sharded across workers;
* :func:`fleet_digest` hashes the canonical JSON rendering (sorted
  keys, shortest-round-trip float repr) rather than pickle bytes, so
  pinned golden digests survive pickle-protocol and Python-version
  drift.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.runner import BenchmarkResult


@dataclass(frozen=True)
class FleetFrame:
    """One cluster-hour of telemetry, compacted for the fleet merge."""

    hour_index: int
    reserved_cores: float
    disk_gb: float
    active_databases: int
    redirects_cumulative: int
    failover_count_cumulative: int


@dataclass(frozen=True)
class ClusterSummary:
    """Everything the fleet layer keeps of one cluster's run."""

    name: str
    seed: int
    density: float
    node_count: int
    final_reserved_cores: float
    final_disk_gb: float
    core_utilization: float
    disk_utilization: float
    creation_redirects: int
    databases_created: int
    active_databases: int
    failover_count: int
    failover_downtime_seconds: float
    revenue_gross: float
    revenue_penalty: float
    revenue_adjusted: float
    penalized_databases: int
    faults_injected: int
    events_executed: int
    frames: Tuple[FleetFrame, ...]


def summarize_result(result: BenchmarkResult) -> ClusterSummary:
    """Reduce one cluster's full result to its fleet summary.

    Module-level on purpose: it is the sweep executor's ``reducer`` and
    must pickle to the pooled workers (TL023's pickle-purity rule).
    """
    kpis = result.kpis
    revenue = result.revenue
    frames = tuple(
        FleetFrame(
            hour_index=frame.hour_index,
            reserved_cores=frame.reserved_cores,
            disk_gb=frame.disk_gb,
            active_databases=frame.active_total,
            redirects_cumulative=frame.redirects_cumulative,
            failover_count_cumulative=frame.failover_count_cumulative,
        )
        for frame in result.frames)
    return ClusterSummary(
        name=result.scenario.name,
        seed=result.scenario.seed,
        density=result.scenario.ring.density,
        node_count=result.scenario.ring.node_count,
        final_reserved_cores=kpis.final_reserved_cores,
        final_disk_gb=kpis.final_disk_gb,
        core_utilization=kpis.core_utilization,
        disk_utilization=kpis.disk_utilization,
        creation_redirects=kpis.creation_redirects,
        databases_created=len(result.databases),
        active_databases=kpis.active_databases,
        failover_count=kpis.failovers.count,
        failover_downtime_seconds=kpis.failovers.total_downtime_seconds,
        revenue_gross=revenue.total_gross,
        revenue_penalty=revenue.total_penalty,
        revenue_adjusted=revenue.total_adjusted,
        penalized_databases=revenue.penalized_databases,
        faults_injected=(kpis.chaos.faults_injected
                         if kpis.chaos is not None else 0),
        events_executed=result.events_executed,
        frames=frames,
    )


@dataclass(frozen=True)
class FleetKpis:
    """Region-level roll-up across every cluster, in spec order."""

    clusters: int
    nodes: int
    databases_created: int
    active_databases: int
    reserved_cores: float
    disk_gb: float
    creation_redirects: int
    failover_count: int
    failover_downtime_seconds: float
    revenue_gross: float
    revenue_penalty: float
    revenue_adjusted: float
    penalized_databases: int
    faults_injected: int
    events_executed: int


# totolint: merge-fn
def merge_summaries(summaries: Sequence[ClusterSummary]) -> FleetKpis:
    """Fold cluster summaries into region KPIs, strictly in spec order.

    Sequential left-to-right float accumulation: the one summation
    order every execution mode (serial, 2-worker, N-worker) reproduces
    exactly, because the input list is index-aligned with the topology
    regardless of completion order.
    """
    nodes = 0
    created = 0
    active = 0
    cores = 0.0
    disk = 0.0
    redirects = 0
    failovers = 0
    downtime = 0.0
    gross = 0.0
    penalty = 0.0
    adjusted = 0.0
    penalized = 0
    faults = 0
    events = 0
    for summary in summaries:
        nodes += summary.node_count
        created += summary.databases_created
        active += summary.active_databases
        cores += summary.final_reserved_cores
        disk += summary.final_disk_gb
        redirects += summary.creation_redirects
        failovers += summary.failover_count
        downtime += summary.failover_downtime_seconds
        gross += summary.revenue_gross
        penalty += summary.revenue_penalty
        adjusted += summary.revenue_adjusted
        penalized += summary.penalized_databases
        faults += summary.faults_injected
        events += summary.events_executed
    return FleetKpis(
        clusters=len(summaries),
        nodes=nodes,
        databases_created=created,
        active_databases=active,
        reserved_cores=cores,
        disk_gb=disk,
        creation_redirects=redirects,
        failover_count=failovers,
        failover_downtime_seconds=downtime,
        revenue_gross=gross,
        revenue_penalty=penalty,
        revenue_adjusted=adjusted,
        penalized_databases=penalized,
        faults_injected=faults,
        events_executed=events,
    )


# totolint: merge-fn
def merge_frames(summaries: Sequence[ClusterSummary]) -> List[FleetFrame]:
    """Region-wide hourly series: per-hour sums across all clusters.

    Hours are merged in ascending order; within one hour, clusters
    accumulate in spec order. Clusters missing an hour (shorter runs)
    simply contribute nothing to it.
    """
    hours: Dict[int, List[float]] = {}  # totolint: fleet-scale
    for summary in summaries:
        for frame in summary.frames:
            bucket = hours.get(frame.hour_index)
            if bucket is None:
                bucket = [0.0, 0.0, 0.0, 0.0, 0.0]
                hours[frame.hour_index] = bucket
            bucket[0] += frame.reserved_cores
            bucket[1] += frame.disk_gb
            bucket[2] += frame.active_databases
            bucket[3] += frame.redirects_cumulative
            bucket[4] += frame.failover_count_cumulative
    return [FleetFrame(hour_index=hour,
                       reserved_cores=bucket[0],
                       disk_gb=bucket[1],
                       active_databases=int(bucket[2]),
                       redirects_cumulative=int(bucket[3]),
                       failover_count_cumulative=int(bucket[4]))
            for hour, bucket in sorted(hours.items())]


# totolint: canonical-json
def fleet_digest(summaries: Sequence[ClusterSummary]) -> str:
    """Canonical content hash of a fleet's summaries.

    JSON (sorted keys, compact separators) rather than pickle: float
    repr is the shortest round trip on every supported Python, so the
    digest is stable across interpreter versions — safe to pin as a
    golden value in tests.
    """
    payload = json.dumps([asdict(summary) for summary in summaries],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
