"""Fleet topology templates: N clusters stamped from one blueprint.

Ditto-style scaling (PAPERS.md): a production region is not N
hand-built clusters but one cluster *template* cloned N times with
per-clone identity — here a spec-ordered name (``fleet-<prefix>-0042``)
and a derived seed (``base_seed + index``). Every clone shares the same
trained model document, so the
:class:`~repro.parallel.executor.SweepExecutor` ships exactly one
document blob to each pooled worker no matter how many clusters run.

The spec order (ascending cluster index) is the fleet determinism
anchor: scenario lists, summary lists, KPI merges, and digests all
follow it, which is what makes serial and sharded fleet runs
byte-identical (docs/FLEET.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.scenario import BenchmarkScenario
from repro.errors import ScenarioError
from repro.experiments.scenarios import (
    DEFAULT_SCENARIO_SEED,
    DEFAULT_TRAINING_SEED,
    chaos_profile,
    trained_artifacts,
)
from repro.sqldb.population import InitialPopulationSpec
from repro.telemetry.region import US_EAST_LIKE
from repro.sqldb.tenant_ring import TenantRingConfig
from repro.units import DAY, DEFAULT_REPORT_INTERVAL, HOUR


@dataclass(frozen=True)
class ClusterTemplate:
    """The per-cluster blueprint every fleet member is stamped from.

    Defaults are tuned for fleet-scale studies: annealing and
    maintenance off (both are per-cluster refinements that only add
    wall-clock at region scale), a sparse report interval, and a short
    settle.
    """

    node_count: int = 14
    density: float = 1.0
    days: float = 0.125
    report_interval: int = DEFAULT_REPORT_INTERVAL
    use_annealing: bool = False
    maintenance: bool = False
    bootstrap_settle: int = HOUR
    population: Optional[InitialPopulationSpec] = None
    #: Named fault-injection profile (docs/CHAOS.md) applied to every
    #: cluster; ``None`` runs the fleet undisturbed.
    chaos: Optional[str] = None
    #: Orchestrator backend every cluster runs under
    #: (:mod:`repro.fabric.backend`): ``"annealing"`` or ``"k8s"``.
    backend: str = "annealing"

    def ring(self, density: Optional[float] = None) -> TenantRingConfig:
        return TenantRingConfig(
            node_count=self.node_count,
            density=self.density if density is None else density,
            report_interval=self.report_interval,
            use_annealing=self.use_annealing,
            maintenance_interval_hours=40.0 if self.maintenance else 0.0,
            backend=self.backend,
        )

    def resolved_population(self) -> InitialPopulationSpec:
        """The bootstrap population, scaled to this template's ring.

        The paper's Table 2 counts (187 GP + 33 BC) fill a 14-node
        ring; a template with more or fewer nodes scales both counts
        proportionally. Rings scaled *up* bootstrap to a 90% core
        target rather than the paper's 94%: big-first packing of ~10k
        databases across hundreds of nodes fragments more than a
        14-node ring does, and 90% is where the bootstrap spill
        (:meth:`repro.fabric.backend.OrchestratorBackend.bootstrap_spill`)
        reliably unwedges the 2-core tail on every seed. Small rings
        keep the paper's target — the retune tolerance (±8 cores)
        dwarfs the difference there anyway.
        """
        if self.population is not None:
            return self.population
        default = InitialPopulationSpec()
        if self.node_count == 14:
            return default
        scale = self.node_count / 14.0
        if self.node_count < 14:
            return InitialPopulationSpec(
                gp_count=max(1, int(default.gp_count * scale)),
                bc_count=max(1, int(default.bc_count * scale)),
            )
        return InitialPopulationSpec(
            gp_count=max(1, int(default.gp_count * scale)),
            bc_count=max(1, int(default.bc_count * scale)),
            target_core_fraction=0.90,
        )


@dataclass(frozen=True)
class FleetTopology:
    """N clusters cloned from one :class:`ClusterTemplate`.

    Args:
        cluster_count: fleet size (clusters).
        template: the shared per-cluster blueprint.
        base_seed: cluster ``i`` runs with seed ``base_seed + i``, so
            clusters are statistically independent yet the whole fleet
            is a pure function of one number.
        prefix: name stem; cluster names are ``fleet-<prefix>-<i:04d>``.
    """

    cluster_count: int = 100
    template: ClusterTemplate = field(default_factory=ClusterTemplate)
    base_seed: int = DEFAULT_SCENARIO_SEED
    prefix: str = "region"
    training_seed: int = DEFAULT_TRAINING_SEED
    #: Optional per-cluster density cycle: cluster ``i`` runs at
    #: ``densities[i % len(densities)]`` (a heterogeneous fleet in one
    #: sweep); empty means every cluster uses the template's density.
    densities: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.cluster_count < 1:
            raise ScenarioError(
                f"cluster_count must be >= 1, got {self.cluster_count}")
        for density in self.densities:
            if density <= 0:
                raise ScenarioError(
                    f"densities must be > 0, got {density}")

    def cluster_name(self, index: int) -> str:
        return f"fleet-{self.prefix}-{index:04d}"

    def cluster_density(self, index: int) -> float:
        if not self.densities:
            return self.template.density
        return self.densities[index % len(self.densities)]

    def scenarios(self) -> List[BenchmarkScenario]:
        """One scenario per cluster, in spec (index) order.

        All scenarios share one trained model document object, so the
        sweep executor deduplicates it to a single blob per worker.
        """
        template = self.template
        artifacts = trained_artifacts(US_EAST_LIKE, self.training_seed)
        # One ring config per distinct density; identical clusters
        # share the object so pickling the sweep stays compact.
        rings: Dict[float, TenantRingConfig] = {}
        chaos = (chaos_profile(template.chaos)
                 if template.chaos is not None else None)
        population = template.resolved_population()
        duration = int(template.days * DAY)
        out: List[BenchmarkScenario] = []  # totolint: fleet-scale
        for index in range(self.cluster_count):
            density = self.cluster_density(index)
            ring = rings.get(density)
            if ring is None:
                ring = template.ring(density)
                rings[density] = ring
            out.append(BenchmarkScenario(
                name=self.cluster_name(index),
                model_document=artifacts.document,
                seed=self.base_seed + index,
                duration=duration,
                ring=ring,
                initial_population=population,
                bootstrap_settle=template.bootstrap_settle,
                chaos=chaos,
            ))
        return out
