"""Run a fleet topology across the warm process pool and merge it.

One :func:`run_fleet` call is the region-scale analogue of one
:class:`~repro.core.runner.BenchmarkRunner` run: clusters fan out over
the :class:`~repro.parallel.executor.SweepExecutor` (inheriting its
document dedup, warm-pool reuse, and broken-pool serial-finish
fallback), each worker reduces its cluster to a
:class:`~repro.fleet.summary.ClusterSummary` before anything crosses
the pickle boundary, and the parent folds the spec-ordered summary
list into :class:`~repro.fleet.summary.FleetKpis` plus a pinnable
content digest. Serial and sharded runs of the same topology are
byte-identical (tests/test_fleet_merge.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.fleet.summary import (
    ClusterSummary,
    FleetFrame,
    FleetKpis,
    fleet_digest,
    merge_frames,
    merge_summaries,
    summarize_result,
)
from repro.fleet.topology import FleetTopology
from repro.obs.export import ObsExport
from repro.obs.metrics import MetricRegistry
from repro.obs.sink import ListSink
from repro.parallel.executor import ProgressCallback, SweepExecutor
from repro.units import HOUR


@dataclass(frozen=True)
class FleetResult:
    """The merged outcome of one fleet run."""

    topology: FleetTopology
    summaries: Tuple[ClusterSummary, ...]
    frames: Tuple[FleetFrame, ...]
    kpis: FleetKpis
    #: Canonical content hash of ``summaries`` — the value the
    #: serial-vs-sharded identity tests and the BENCH gate compare.
    digest: str
    #: How the sweep actually executed ("serial" | "parallel").
    mode: str


def run_fleet(topology: FleetTopology,
              max_workers: Optional[int] = None,
              progress: Optional[ProgressCallback] = None) -> FleetResult:
    """Execute every cluster of ``topology`` and merge deterministically.

    ``max_workers=1`` forces the serial path; anything else shards the
    clusters across the process pool. Either way the summary list is
    spec-ordered and the merge is byte-identical.
    """
    scenarios = topology.scenarios()
    executor = SweepExecutor(max_workers=max_workers, progress=progress,
                             reducer=summarize_result)
    try:
        summaries = tuple(  # totolint: fleet-scale
            executor.run(scenarios))
        mode = executor.last_mode or "serial"
    finally:
        executor.shutdown()
    return FleetResult(
        topology=topology,
        summaries=summaries,
        frames=tuple(merge_frames(summaries)),
        kpis=merge_summaries(summaries),
        digest=fleet_digest(summaries),
        mode=mode,
    )


def fleet_metric_registry(kpis: FleetKpis) -> MetricRegistry:
    """Region-level metric catalogue over merged fleet KPIs."""
    registry = MetricRegistry()
    gauges = (
        ("toto_fleet_clusters", "Clusters in the fleet topology.",
         float(kpis.clusters)),
        ("toto_fleet_nodes", "Data-plane nodes across all clusters.",
         float(kpis.nodes)),
        ("toto_fleet_reserved_cores",
         "Reserved CPU cores across the region at run end.",
         kpis.reserved_cores),
        ("toto_fleet_disk_usage_gb",
         "Disk usage across the region at run end (GB).",
         kpis.disk_gb),
        ("toto_fleet_active_databases",
         "Databases still active across the region at run end.",
         float(kpis.active_databases)),
        ("toto_fleet_adjusted_revenue",
         "Region adjusted revenue (gross minus SLA penalties).",
         kpis.revenue_adjusted),
    )
    for name, help_text, value in gauges:
        registry.gauge(name, help_text,
                       lambda value=value: value)
    counters = (
        ("toto_fleet_databases_created_total",
         "Databases created across the region (incl. bootstrap).",
         float(kpis.databases_created)),
        ("toto_fleet_redirects_total",
         "Creation redirects across the region.",
         float(kpis.creation_redirects)),
        ("toto_fleet_capacity_failovers_total",
         "Capacity failovers across the region.",
         float(kpis.failover_count)),
        ("toto_fleet_faults_injected_total",
         "Chaos faults injected across the region (0 without chaos).",
         float(kpis.faults_injected)),
        ("toto_fleet_events_executed_total",
         "Simulation kernel events executed across all clusters.",
         float(kpis.events_executed)),
    )
    for name, help_text, value in counters:
        registry.counter(name, help_text,
                         lambda value=value: value)
    return registry


def fleet_obs_export(result: FleetResult) -> ObsExport:
    """Render the fleet run's observability artifacts (strings only).

    ``metrics.jsonl`` carries one sample per merged fleet hour — the
    region-wide resource series — and ``metrics.prom`` the final
    region KPIs; both use the standard obs-layer sinks and naming, so
    downstream tooling cannot tell a fleet export from a cluster one.
    """
    sink = ListSink()
    for frame in result.frames:
        sink.emit({
            "type": "sample",
            "hour": frame.hour_index,
            "time": frame.hour_index * HOUR,
            "metrics": {
                "toto_fleet_reserved_cores": frame.reserved_cores,
                "toto_fleet_disk_usage_gb": frame.disk_gb,
                "toto_fleet_active_databases":
                    float(frame.active_databases),
                "toto_fleet_redirects_total":
                    float(frame.redirects_cumulative),
                "toto_fleet_capacity_failovers_total":
                    float(frame.failover_count_cumulative),
            },
        })
    registry = fleet_metric_registry(result.kpis)
    return ObsExport(metrics_jsonl=sink.render(),
                     metrics_prom=registry.to_prometheus())
