"""Parallel sweep execution.

The paper's headline workflows are *sweeps* — four back-to-back density
runs (§5.2), repeated multi-seed nondeterminism studies (§5.5), and
configuration-review grids. Each run is an independent, fully seeded
simulation, so they parallelize perfectly: :class:`SweepExecutor` fans
scenarios out over a process pool while preserving the exact results
(and result *order*) of the serial path.
"""

from repro.parallel.executor import (
    SweepExecutor,
    SweepProgress,
    run_scenarios,
)

__all__ = ["SweepExecutor", "SweepProgress", "run_scenarios"]
