"""Fan independent benchmark scenarios out over a process pool.

Design contract (what makes parallel sweeps safe to use anywhere the
serial loop was used):

* **Picklable specs** — workers receive the declarative
  :class:`~repro.core.scenario.BenchmarkScenario` itself (frozen
  dataclasses all the way down), never live simulation objects.
  Picklability is probed up front; an unpicklable scenario degrades the
  whole sweep to the serial path instead of failing.
* **Model documents ship once per worker** — the trained
  ``model_document`` dominates a pickled scenario's size and is shared
  by every density variant in a sweep. The pool's *initializer*
  delivers each distinct document (deduplicated by content fingerprint)
  to every worker exactly once; per-task payloads carry the stripped
  scenario plus the fingerprint, and the worker re-attaches its cached
  document before running. N scenarios over one document pickle the
  document ``workers`` times, not ``N`` times.
* **Chunked dispatch** — scenarios are submitted as strided chunks
  (several per worker, so uneven runtimes still balance) instead of one
  future each, amortizing submit/result IPC over the chunk.
* **Warm pool reuse** — the executor keeps its process pool alive
  across :meth:`SweepExecutor.run` calls and reuses it while the worker
  count and document set are unchanged, so consecutive sweep batches
  skip interpreter spawn and document delivery entirely. Call
  :meth:`shutdown` (or drop the executor) to release the workers.
* **Deterministic results** — every run seeds its own
  :class:`~repro.rng.RngRegistry` from ``scenario.seed`` inside the
  worker process, exactly as :class:`~repro.core.runner.BenchmarkRunner`
  does serially, so no RNG state crosses process boundaries. Results
  are keyed by scenario position, never by completion order: the
  returned list is index-aligned with the input and byte-identical to
  what the serial loop produces.
* **Graceful serial fallback** — ``max_workers=1``, a single-scenario
  sweep, pickling failures, and pool startup failures (sandboxes
  without working semaphores, missing ``fork``/``spawn`` support) all
  fall back to in-process execution; a broken pool mid-sweep reruns the
  missing scenarios serially.
* **Progress callbacks** — an optional callback observes completions
  (in completion order, the one place ordering is nondeterministic) so
  CLIs can narrate long sweeps.
* **Observability exports cross intact** — a scenario carrying an
  :class:`~repro.obs.config.ObsConfig` produces its rendered trace,
  metric, and profile artifacts as *strings* inside
  ``BenchmarkResult.obs``, so pooled workers ship them through the
  pickle boundary byte-identical to a serial run; files only ever
  reach disk in the parent (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, FrozenSet, List, Optional, \
    Sequence, Tuple

from repro.core.runner import BenchmarkResult, run_scenario
from repro.core.scenario import BenchmarkScenario


@dataclass(frozen=True)
class SweepProgress:
    """One completed run inside a sweep."""

    completed: int
    total: int
    scenario_name: str
    parallel: bool


ProgressCallback = Callable[[SweepProgress], None]

#: Worker-side result reduction: applied to each
#: :class:`BenchmarkResult` *inside the worker process*, so only the
#: (typically small) reduced value crosses the pickle boundary. The
#: fleet layer uses this to keep a 100-cluster sweep's parent memory
#: bounded by per-cluster summaries instead of full frame sets. Must be
#: a module-level function (it is pickled to the workers); the serial
#: path applies the same reducer before its normalizing round trip, so
#: serial and pooled sweeps stay byte-identical.
Reducer = Callable[[BenchmarkResult], Any]

#: One task as shipped to a worker: (input index, scenario with its
#: model document stripped, fingerprint of that document or None).
_Task = Tuple[int, BenchmarkScenario, Optional[str]]

#: Per-worker-process cache of unpickled model documents, populated by
#: the pool initializer before any task runs.
_WORKER_DOCS: Dict[str, Any] = {}


def _init_worker(doc_blobs: Dict[str, bytes]) -> None:
    """Pool initializer: unpickle each distinct document exactly once."""
    _WORKER_DOCS.clear()
    for key, blob in doc_blobs.items():
        _WORKER_DOCS[key] = pickle.loads(blob)


def _execute(scenario: BenchmarkScenario) -> BenchmarkResult:
    """Worker entry point: one full benchmark run in this process."""
    return run_scenario(scenario)


def _execute_chunk(tasks: List[_Task],
                   reducer: Optional[Reducer] = None
                   ) -> List[Tuple[int, Any]]:
    """Worker entry point: run a chunk of document-stripped scenarios."""
    out: List[Tuple[int, Any]] = []
    for index, scenario, doc_key in tasks:
        if doc_key is not None:
            scenario = replace(scenario,
                               model_document=_WORKER_DOCS[doc_key])
        result = run_scenario(scenario)
        out.append((index,
                    reducer(result) if reducer is not None else result))
    return out


class SweepExecutor:
    """Runs a batch of independent scenarios, in parallel when possible.

    Args:
        max_workers: process count. ``None`` picks ``os.cpu_count()``
            (capped at the sweep size); ``1`` forces the serial path.
        progress: optional callback invoked after every completed run.
        reducer: optional module-level function applied to every
            :class:`BenchmarkResult` before it leaves the worker (or,
            serially, before the normalizing round trip). With a
            reducer installed :meth:`run` returns the reduced values.
    """

    #: Target chunks per worker: more than one so uneven scenario
    #: runtimes rebalance, few enough that submit/result IPC amortizes.
    CHUNKS_PER_WORKER = 4

    def __init__(self, max_workers: Optional[int] = None,
                 progress: Optional[ProgressCallback] = None,
                 reducer: Optional[Reducer] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.progress = progress
        self.reducer = reducer
        #: How the last sweep actually executed ("serial" | "parallel");
        #: lets tests and callers observe fallback decisions.
        self.last_mode: Optional[str] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        self._pool_doc_keys: FrozenSet[str] = frozenset()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        # getattr: __init__ may have raised before _pool existed.
        if getattr(self, "_pool", None) is not None:
            self.shutdown()

    # ------------------------------------------------------------------

    def run(self, scenarios: Sequence[BenchmarkScenario]) -> List[Any]:
        """Execute every scenario; results are index-aligned with input.

        Without a reducer each entry is a full
        :class:`BenchmarkResult`; with one, its reduced value.
        """
        scenarios = list(scenarios)
        if not scenarios:
            self.last_mode = "serial"
            return []
        workers = self._effective_workers(len(scenarios))
        if workers <= 1:
            return self._run_serial(scenarios)
        prepared = self._prepare(scenarios)
        if prepared is None or not self._reducer_picklable():
            return self._run_serial(scenarios)
        return self._run_parallel(scenarios, workers, *prepared)

    def shutdown(self) -> None:
        """Release the warm worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_workers = 0
            self._pool_doc_keys = frozenset()

    # ------------------------------------------------------------------

    def _effective_workers(self, sweep_size: int) -> int:
        workers = self.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        return min(workers, sweep_size)

    @staticmethod
    def _prepare(scenarios: Sequence[BenchmarkScenario]
                 ) -> Optional[Tuple[List[_Task], Dict[str, bytes]]]:
        """Strip and fingerprint model documents; probe picklability.

        Returns ``(tasks, doc_blobs)`` where each task carries the
        scenario without its document plus the document's content
        fingerprint, and ``doc_blobs`` maps fingerprint to the pickled
        document (deduplicated across the sweep). ``None`` means some
        payload cannot cross a process boundary — use the serial path.
        """
        tasks: List[_Task] = []
        doc_blobs: Dict[str, bytes] = {}
        blob_by_id: Dict[int, str] = {}
        try:
            for index, scenario in enumerate(scenarios):
                document = scenario.model_document
                if document is None:
                    key: Optional[str] = None
                    stripped = scenario
                else:
                    # Same object -> same blob without re-pickling.
                    key = blob_by_id.get(id(document))
                    if key is None:
                        blob = pickle.dumps(
                            document, protocol=pickle.HIGHEST_PROTOCOL)
                        key = hashlib.sha256(blob).hexdigest()
                        doc_blobs.setdefault(key, blob)
                        blob_by_id[id(document)] = key
                    stripped = replace(scenario, model_document=None)
                # Probe the stripped scenario's own round trip.
                pickle.loads(pickle.dumps(stripped,
                                          protocol=pickle.HIGHEST_PROTOCOL))
                tasks.append((index, stripped, key))
        except (pickle.PickleError, TypeError, AttributeError,
                NotImplementedError, ValueError, EOFError, RecursionError):
            # Everything pickle raises for an unserializable payload;
            # a probe failure means "use the serial path", never "crash".
            return None
        return tasks, doc_blobs

    def _reducer_picklable(self) -> bool:
        """Probe the reducer's round trip (it ships with every chunk)."""
        if self.reducer is None:
            return True
        try:
            pickle.loads(pickle.dumps(self.reducer,
                                      protocol=pickle.HIGHEST_PROTOCOL))
        except (pickle.PickleError, TypeError, AttributeError,
                NotImplementedError, ValueError, EOFError, RecursionError):
            return False
        return True

    @staticmethod
    def _normalize(result: Any) -> Any:
        """Mirror the pool's pickle round trip on the serial path.

        Worker results cross a process boundary, which replaces any
        objects shared *across* results (interned strings, cached model
        documents) with per-result copies. A serial run must produce
        the same object graph, or pickling a result list would encode
        the sharing through pickle's memo and break the byte-identical
        serial/parallel contract. Unpicklable results (only possible on
        the serial-fallback path) are returned as-is.
        """
        try:
            return pickle.loads(pickle.dumps(
                result, protocol=pickle.HIGHEST_PROTOCOL))
        except (pickle.PickleError, TypeError, AttributeError,
                NotImplementedError, ValueError, EOFError, RecursionError):
            return result

    def _report(self, completed: int, total: int, name: str,
                parallel: bool) -> None:
        if self.progress is not None:
            self.progress(SweepProgress(completed=completed, total=total,
                                        scenario_name=name,
                                        parallel=parallel))

    # ------------------------------------------------------------------

    def _run_serial(self, scenarios: List[BenchmarkScenario],
                    into: Optional[Dict[int, Any]] = None
                    ) -> List[Any]:
        """The plain loop; also finishes partially-parallel sweeps."""
        self.last_mode = "serial"
        results: Dict[int, Any] = into if into is not None else {}
        total = len(scenarios)
        reducer = self.reducer
        for index, scenario in enumerate(scenarios):
            if index in results:
                continue
            value: Any = _execute(scenario)
            if reducer is not None:
                value = reducer(value)
            results[index] = self._normalize(value)
            self._report(len(results), total, scenario.name, parallel=False)
        return [results[index] for index in range(total)]

    def _pool_for(self, workers: int, doc_blobs: Dict[str, bytes]
                  ) -> Optional[ProcessPoolExecutor]:
        """A warm pool whose workers hold exactly ``doc_blobs``.

        Reuses the previous sweep's pool when the worker count and the
        document set match; otherwise tears it down and starts fresh
        (worker caches would be stale). Returns ``None`` when this host
        cannot run a process pool at all.
        """
        keys = frozenset(doc_blobs)
        if (self._pool is not None and self._pool_workers == workers
                and self._pool_doc_keys == keys):
            return self._pool
        self.shutdown()
        try:
            pool = ProcessPoolExecutor(max_workers=workers,
                                       initializer=_init_worker,
                                       initargs=(doc_blobs,))
        except (OSError, ValueError, ImportError):
            # No usable multiprocessing primitives on this host.
            return None
        self._pool = pool
        self._pool_workers = workers
        self._pool_doc_keys = keys
        return pool

    def _run_parallel(self, scenarios: List[BenchmarkScenario],
                      workers: int, tasks: List[_Task],
                      doc_blobs: Dict[str, bytes]) -> List[Any]:
        total = len(scenarios)
        results: Dict[int, Any] = {}
        pool = self._pool_for(workers, doc_blobs)
        if pool is None:
            return self._run_serial(scenarios)
        n_chunks = min(total, workers * self.CHUNKS_PER_WORKER)
        chunks = [tasks[start::n_chunks] for start in range(n_chunks)]
        try:
            futures = {pool.submit(_execute_chunk, chunk, self.reducer):
                       chunk for chunk in chunks}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    # Scenario errors propagate exactly as serially.
                    for index, result in future.result():
                        results[index] = result
                        self._report(len(results), total,
                                     scenarios[index].name, parallel=True)
        except (pickle.PicklingError, AttributeError, EOFError,
                BrokenProcessPool):
            # Pool died or a payload failed to cross the boundary:
            # whatever already finished is keyed by index; rerun the
            # rest in-process. The pool is no longer trustworthy.
            self.shutdown()
            return self._run_serial(scenarios, into=results)
        self.last_mode = "parallel"
        return [results[index] for index in range(total)]


def run_scenarios(scenarios: Sequence[BenchmarkScenario],
                  max_workers: Optional[int] = None,
                  progress: Optional[ProgressCallback] = None
                  ) -> List[BenchmarkResult]:
    """Convenience wrapper: one-shot sweep with optional parallelism."""
    executor = SweepExecutor(max_workers=max_workers, progress=progress)
    try:
        return executor.run(scenarios)
    finally:
        executor.shutdown()
