"""Fan independent benchmark scenarios out over a process pool.

Design contract (what makes parallel sweeps safe to use anywhere the
serial loop was used):

* **Picklable specs** — workers receive the declarative
  :class:`~repro.core.scenario.BenchmarkScenario` itself (frozen
  dataclasses all the way down, including the trained model document),
  never live simulation objects. Picklability is probed up front; an
  unpicklable scenario degrades the whole sweep to the serial path
  instead of failing.
* **Deterministic results** — every run seeds its own
  :class:`~repro.rng.RngRegistry` from ``scenario.seed`` inside the
  worker process, exactly as :class:`~repro.core.runner.BenchmarkRunner`
  does serially, so no RNG state crosses process boundaries. Results
  are keyed by scenario position, never by completion order: the
  returned list is index-aligned with the input and byte-identical to
  what the serial loop produces.
* **Graceful serial fallback** — ``max_workers=1``, a single-scenario
  sweep, pickling failures, and pool startup failures (sandboxes
  without working semaphores, missing ``fork``/``spawn`` support) all
  fall back to in-process execution; a broken pool mid-sweep reruns the
  missing scenarios serially.
* **Progress callbacks** — an optional callback observes completions
  (in completion order, the one place ordering is nondeterministic) so
  CLIs can narrate long sweeps.
* **Observability exports cross intact** — a scenario carrying an
  :class:`~repro.obs.config.ObsConfig` produces its rendered trace,
  metric, and profile artifacts as *strings* inside
  ``BenchmarkResult.obs``, so pooled workers ship them through the
  pickle boundary byte-identical to a serial run; files only ever
  reach disk in the parent (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.runner import BenchmarkResult, run_scenario
from repro.core.scenario import BenchmarkScenario


@dataclass(frozen=True)
class SweepProgress:
    """One completed run inside a sweep."""

    completed: int
    total: int
    scenario_name: str
    parallel: bool


ProgressCallback = Callable[[SweepProgress], None]


def _execute(scenario: BenchmarkScenario) -> BenchmarkResult:
    """Worker entry point: one full benchmark run in this process."""
    return run_scenario(scenario)


class SweepExecutor:
    """Runs a batch of independent scenarios, in parallel when possible.

    Args:
        max_workers: process count. ``None`` picks ``os.cpu_count()``
            (capped at the sweep size); ``1`` forces the serial path.
        progress: optional callback invoked after every completed run.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 progress: Optional[ProgressCallback] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.progress = progress
        #: How the last sweep actually executed ("serial" | "parallel");
        #: lets tests and callers observe fallback decisions.
        self.last_mode: Optional[str] = None

    # ------------------------------------------------------------------

    def run(self, scenarios: Sequence[BenchmarkScenario]
            ) -> List[BenchmarkResult]:
        """Execute every scenario; results are index-aligned with input."""
        scenarios = list(scenarios)
        if not scenarios:
            self.last_mode = "serial"
            return []
        workers = self._effective_workers(len(scenarios))
        if workers <= 1 or not self._picklable(scenarios):
            return self._run_serial(scenarios)
        return self._run_parallel(scenarios, workers)

    # ------------------------------------------------------------------

    def _effective_workers(self, sweep_size: int) -> int:
        workers = self.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        return min(workers, sweep_size)

    @staticmethod
    def _picklable(scenarios: Sequence[BenchmarkScenario]) -> bool:
        """Probe the round trip the pool needs; cheap vs one run."""
        try:
            for scenario in scenarios:
                pickle.loads(pickle.dumps(scenario,
                                          protocol=pickle.HIGHEST_PROTOCOL))
        except (pickle.PickleError, TypeError, AttributeError,
                NotImplementedError, ValueError, EOFError, RecursionError):
            # Everything pickle raises for an unserializable payload;
            # a probe failure means "use the serial path", never "crash".
            return False
        return True

    @staticmethod
    def _normalize(result: BenchmarkResult) -> BenchmarkResult:
        """Mirror the pool's pickle round trip on the serial path.

        Worker results cross a process boundary, which replaces any
        objects shared *across* results (interned strings, cached model
        documents) with per-result copies. A serial run must produce
        the same object graph, or pickling a result list would encode
        the sharing through pickle's memo and break the byte-identical
        serial/parallel contract. Unpicklable results (only possible on
        the serial-fallback path) are returned as-is.
        """
        try:
            return pickle.loads(pickle.dumps(
                result, protocol=pickle.HIGHEST_PROTOCOL))
        except (pickle.PickleError, TypeError, AttributeError,
                NotImplementedError, ValueError, EOFError, RecursionError):
            return result

    def _report(self, completed: int, total: int, name: str,
                parallel: bool) -> None:
        if self.progress is not None:
            self.progress(SweepProgress(completed=completed, total=total,
                                        scenario_name=name,
                                        parallel=parallel))

    # ------------------------------------------------------------------

    def _run_serial(self, scenarios: List[BenchmarkScenario],
                    into: Optional[Dict[int, BenchmarkResult]] = None
                    ) -> List[BenchmarkResult]:
        """The plain loop; also finishes partially-parallel sweeps."""
        self.last_mode = "serial"
        results: Dict[int, BenchmarkResult] = into if into is not None else {}
        total = len(scenarios)
        for index, scenario in enumerate(scenarios):
            if index in results:
                continue
            results[index] = self._normalize(_execute(scenario))
            self._report(len(results), total, scenario.name, parallel=False)
        return [results[index] for index in range(total)]

    def _run_parallel(self, scenarios: List[BenchmarkScenario],
                      workers: int) -> List[BenchmarkResult]:
        total = len(scenarios)
        results: Dict[int, BenchmarkResult] = {}
        try:
            executor = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError, ImportError):
            # No usable multiprocessing primitives on this host.
            return self._run_serial(scenarios)
        try:
            with executor:
                futures = {executor.submit(_execute, scenario): index
                           for index, scenario in enumerate(scenarios)}
                pending = set(futures)
                while pending:
                    done, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures[future]
                        # Scenario errors propagate exactly as serially.
                        results[index] = future.result()
                        self._report(len(results), total,
                                     scenarios[index].name, parallel=True)
        except (pickle.PicklingError, AttributeError, EOFError,
                BrokenProcessPool):
            # Pool died or a payload failed to cross the boundary:
            # whatever already finished is keyed by index; rerun the
            # rest in-process.
            return self._run_serial(scenarios, into=results)
        self.last_mode = "parallel"
        return [results[index] for index in range(total)]


def run_scenarios(scenarios: Sequence[BenchmarkScenario],
                  max_workers: Optional[int] = None,
                  progress: Optional[ProgressCallback] = None
                  ) -> List[BenchmarkResult]:
    """Convenience wrapper: one-shot sweep with optional parallelism."""
    return SweepExecutor(max_workers=max_workers,
                         progress=progress).run(scenarios)
