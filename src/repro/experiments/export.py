"""JSON export of benchmark results.

Turns a :class:`repro.core.BenchmarkResult` (or a whole density study)
into a plain-JSON artifact so results can be archived, diffed between
code versions, and plotted outside this package — the moral equivalent
of the telemetry extracts behind the paper's figures.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Optional, Union

from repro.core.runner import BenchmarkResult
from repro.experiments.density import DensityStudy


def result_to_dict(result: BenchmarkResult) -> Dict[str, Any]:
    """Flatten one run into JSON-serializable primitives."""
    scenario = result.scenario
    kpis = result.kpis
    failovers = kpis.failovers
    return {
        "scenario": {
            "name": scenario.name,
            "seed": scenario.seed,
            "plb_salt": scenario.plb_salt,
            "duration_hours": scenario.duration_hours,
            "density": scenario.ring.density,
            "node_count": scenario.ring.node_count,
        },
        "bootstrap": {
            "free_cores": result.bootstrap_free_cores,
            "disk_utilization": result.bootstrap_disk_utilization,
        },
        "kpis": {
            "final_reserved_cores": kpis.final_reserved_cores,
            "final_disk_gb": kpis.final_disk_gb,
            "core_utilization": kpis.core_utilization,
            "disk_utilization": kpis.disk_utilization,
            "creation_redirects": kpis.creation_redirects,
            "active_databases": kpis.active_databases,
        },
        "failovers": {
            "count": failovers.count,
            "total_cores_moved": failovers.total_cores_moved,
            "gp_cores_moved": failovers.gp_cores_moved,
            "bc_cores_moved": failovers.bc_cores_moved,
            "total_downtime_seconds": failovers.total_downtime_seconds,
            "primary_moves": failovers.primary_moves,
        },
        "revenue": {
            "gross": result.revenue.total_gross,
            "penalty": result.revenue.total_penalty,
            "adjusted": result.revenue.total_adjusted,
            "penalized_databases": result.revenue.penalized_databases,
        },
        "hourly": [
            {
                "hour": frame.hour_index,
                "reserved_cores": frame.reserved_cores,
                "disk_gb": frame.disk_gb,
                "active_gp": frame.active_gp,
                "active_bc": frame.active_bc,
                "redirects": frame.redirects_cumulative,
                "failover_cores": frame.failover_cores_cumulative,
            }
            for frame in result.frames
        ],
    }


def study_to_dict(study: DensityStudy) -> Dict[str, Any]:
    """Flatten a density study (all densities) for archival."""
    study.run()
    return {
        "days": study.days,
        "seed": study.seed,
        "densities": list(study.densities),
        "runs": {
            str(int(round(density * 100))):
                result_to_dict(study.result(density))
            for density in study.densities
        },
        "figure2": study.figure2_rows(),
        "figure12a": study.figure12a_rows(),
        "figure12b": study.figure12b_rows(),
        "figure14": study.figure14_rows(),
        "table3": study.table3_rows(),
    }


def write_json(data: Union[BenchmarkResult, DensityStudy, Dict[str, Any]],
               destination: Union[str, IO[str]],
               indent: Optional[int] = 2) -> None:
    """Serialize a result/study/dict to a path or open file handle."""
    if isinstance(data, BenchmarkResult):
        payload = result_to_dict(data)
    elif isinstance(data, DensityStudy):
        payload = study_to_dict(data)
    else:
        payload = data
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent)
    else:
        json.dump(payload, destination, indent=indent)
