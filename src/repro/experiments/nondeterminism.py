"""The §5.3.4 repeatability study (Figure 13).

Three identical 18-hour experiments differing only in the PLB's
annealing randomness (the one seed the paper could not pin in
production). The figure shows the dispersion of node-level disk and
reserved-core readings per run; Wilcoxon signed-rank tests on the
paired node-level readings quantify that the runs are statistically
indistinguishable (the paper found 5 of 6 pairwise tests
insignificant), and the failover counts stay within noise (theirs
were 1, 0, 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional

import numpy as np

from repro.core.runner import BenchmarkResult
from repro.experiments.report import format_table
from repro.experiments.scenarios import paper_scenario
from repro.parallel import SweepExecutor
from repro.stats.descriptive import BoxplotStats, boxplot_stats
from repro.stats.wilcoxon import WilcoxonResult, wilcoxon_signed_rank


@dataclass(frozen=True)
class PairwiseTest:
    """One Wilcoxon comparison between two runs on one metric."""

    metric: str
    run_a: int
    run_b: int
    result: WilcoxonResult


class NondeterminismStudy:
    """Runs N identical scenarios varying only the PLB salt."""

    def __init__(self, repeats: int = 3, hours: float = 18.0,
                 density: float = 1.1, seed: int = 42,
                 max_workers: Optional[int] = None) -> None:
        self.repeats = repeats
        self.hours = hours
        self.density = density
        self.seed = seed
        self.max_workers = max_workers
        self._results: List[BenchmarkResult] = []

    def run(self) -> List[BenchmarkResult]:
        """Execute the repeats (parallel when ``max_workers`` allows).

        Only the PLB salt differs between repeats; results stay in salt
        order whatever the completion order.
        """
        if not self._results:
            scenarios = [paper_scenario(
                density=self.density, days=self.hours / 24.0,
                seed=self.seed, plb_salt=salt, maintenance=False)
                for salt in range(self.repeats)]
            self._results = SweepExecutor(
                max_workers=self.max_workers).run(scenarios)
        return list(self._results)

    # ------------------------------------------------------------------

    def node_level_readings(self, metric: str) -> List[np.ndarray]:
        """Per run: the (hour x node) readings flattened node-major.

        ``metric`` is ``"disk"`` or ``"cores"``. Node-major flattening
        keeps readings *paired* across runs (same node, same hour).
        """
        if metric not in ("disk", "cores"):
            raise ValueError(f"metric must be disk|cores, got '{metric}'")
        attribute = "node_disk_gb" if metric == "disk" else "node_cores"
        samples = []
        for result in self.run():
            frames = result.frames
            matrix = np.array([getattr(frame, attribute)
                               for frame in frames], dtype=float)
            samples.append(matrix.T.reshape(-1))
        length = min(sample.shape[0] for sample in samples)
        return [sample[:length] for sample in samples]

    def dispersion(self, metric: str) -> List[BoxplotStats]:
        """Figure 13's box plots: one per run."""
        return [boxplot_stats(sample)
                for sample in self.node_level_readings(metric)]

    def pairwise_tests(self) -> List[PairwiseTest]:
        """All pairwise Wilcoxon tests on both metrics (2 x C(n,2))."""
        tests: List[PairwiseTest] = []
        for metric in ("disk", "cores"):
            samples = self.node_level_readings(metric)
            for a, b in combinations(range(len(samples)), 2):
                tests.append(PairwiseTest(
                    metric=metric, run_a=a, run_b=b,
                    result=wilcoxon_signed_rank(samples[a], samples[b])))
        return tests

    def insignificant_fraction(self, alpha: float = 0.05) -> float:
        """Share of pairwise tests that could NOT reject sameness."""
        tests = self.pairwise_tests()
        insignificant = sum(1 for t in tests
                            if not t.result.significant(alpha))
        return insignificant / len(tests)

    def failover_counts(self) -> List[int]:
        """Capacity failovers per repeat (the paper saw 1, 0, 1)."""
        return [result.kpis.failovers.count for result in self.run()]

    # ------------------------------------------------------------------

    def format_report(self) -> str:
        parts = []
        for metric, label in (("disk", "node disk GB"),
                              ("cores", "node reserved cores")):
            rows = [(f"run {index}", s.count, round(s.mean, 1),
                     round(s.q1, 1), round(s.median, 1), round(s.q3, 1))
                    for index, s in enumerate(self.dispersion(metric))]
            parts.append(format_table(
                ["run", "n", "mean", "q1", "median", "q3"], rows,
                title=f"Figure 13 — dispersion of {label}"))
        test_rows = [(t.metric, f"{t.run_a} vs {t.run_b}",
                      f"{t.result.p_value:.4f}",
                      "significant" if t.result.significant()
                      else "insignificant")
                     for t in self.pairwise_tests()]
        parts.append(format_table(
            ["metric", "pair", "p-value", "alpha=0.05"], test_rows,
            title="Wilcoxon signed-rank pairwise tests"))
        parts.append("capacity failovers per run: "
                     + ", ".join(str(c) for c in self.failover_counts()))
        return "\n\n".join(parts)
