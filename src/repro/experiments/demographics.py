"""The §2 telemetry views: Figures 3a, 3b, and 6.

These figures motivate Toto's design: regional demographic differences
make side-by-side cluster comparisons impractical (3a), most cloud
databases idle at low utilization so TPC-style workloads are the wrong
load model (3b), and creates/drops carry strong hourly and
weekday/weekend structure (6).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.report import format_table
from repro.rng import RngRegistry
from repro.sqldb.editions import Edition
from repro.stats.descriptive import BoxplotStats, boxplot_stats
from repro.telemetry.production import (
    HourlyEventTrace,
    ProductionTraceGenerator,
    UtilizationSample,
)
from repro.telemetry.region import EU_WEST_LIKE, US_EAST_LIKE, RegionProfile


class DemographicsStudy:
    """Generates the telemetry behind Figures 3a, 3b and 6."""

    def __init__(self, seed: int = 7,
                 region_one: RegionProfile = US_EAST_LIKE,
                 region_two: RegionProfile = EU_WEST_LIKE) -> None:
        self.rng = RngRegistry(seed)
        self.region_one = region_one
        self.region_two = region_two

    # ------------------------------------------------------------------
    # Figure 3a — local-store fraction per cluster, two regions
    # ------------------------------------------------------------------

    def figure3a_data(self, days: int = 7) -> Dict[str, List[float]]:
        """All (cluster, day) local-store fractions per region."""
        data: Dict[str, List[float]] = {}
        for profile in (self.region_one, self.region_two):
            generator = ProductionTraceGenerator(
                profile, self.rng.stream("fig3a", profile.name))  # totolint: substream=fig3a/*
            per_day = generator.local_store_fractions(days=days)
            data[profile.name] = [fraction
                                  for day in sorted(per_day)
                                  for fraction in per_day[day]]
        return data

    def figure3a_boxes(self, days: int = 7) -> Dict[str, BoxplotStats]:
        return {region: boxplot_stats(values)
                for region, values in self.figure3a_data(days).items()}

    # ------------------------------------------------------------------
    # Figure 3b — CPU vs memory utilization scatter
    # ------------------------------------------------------------------

    def figure3b_samples(self, n_databases: int = 2000
                         ) -> List[UtilizationSample]:
        """Non-idle databases' (CPU%, memory%) — idle ones removed, as
        the paper does ("we have removed all of the completely idle
        databases - a substantial number")."""
        generator = ProductionTraceGenerator(
            self.region_one, self.rng.stream("fig3b"))
        samples = generator.utilization_snapshot(n_databases)
        return [sample for sample in samples if not sample.idle]

    def figure3b_summary(self) -> dict:
        samples = self.figure3b_samples()
        cpu = np.array([s.cpu_percent for s in samples])
        memory = np.array([s.memory_percent for s in samples])
        return {
            "n": len(samples),
            "cpu_mean": float(cpu.mean()),
            "cpu_p90": float(np.percentile(cpu, 90)),
            "memory_mean": float(memory.mean()),
            "memory_p90": float(np.percentile(memory, 90)),
            "low_cpu_fraction": float((cpu < 30.0).mean()),
        }

    # ------------------------------------------------------------------
    # Figure 6 — creates/hour-of-day dispersion box plots
    # ------------------------------------------------------------------

    def figure6_boxes(self, days: int = 14
                      ) -> Dict[Tuple[Edition, str], List[BoxplotStats]]:
        """Per (edition, daytype): 24 box plots of creates per hour.

        Mirrors the four panels (a-d): Standard/GP weekday, weekend;
        Premium/BC weekday, weekend.
        """
        generator = ProductionTraceGenerator(
            self.region_one, self.rng.stream("fig6"))
        panels: Dict[Tuple[Edition, str], List[BoxplotStats]] = {}
        for edition in Edition:
            trace = generator.event_trace(edition, "create", days=days)
            groups = trace.hourly_samples()
            for daytype, weekend in (("weekday", False), ("weekend", True)):
                boxes = []
                for hour in range(24):
                    values = groups.get((weekend, hour), [0.0])
                    boxes.append(boxplot_stats([float(v) for v in values]))
                panels[(edition, daytype)] = boxes
        return panels

    # ------------------------------------------------------------------

    def format_report(self) -> str:
        parts = []
        boxes_3a = self.figure3a_boxes()
        rows = [(region, round(100 * s.mean, 1), round(100 * s.q1, 1),
                 round(100 * s.median, 1), round(100 * s.q3, 1))
                for region, s in boxes_3a.items()]
        parts.append(format_table(
            ["region", "mean %", "q1 %", "median %", "q3 %"], rows,
            title="Figure 3a — daily local-store DB fraction per cluster"))

        summary = self.figure3b_summary()
        parts.append(format_table(
            ["n", "cpu mean %", "cpu p90 %", "mem mean %", "mem p90 %",
             "cpu<30% share"],
            [(summary["n"], round(summary["cpu_mean"], 1),
              round(summary["cpu_p90"], 1), round(summary["memory_mean"], 1),
              round(summary["memory_p90"], 1),
              f"{100 * summary['low_cpu_fraction']:.0f}%")],
            title="Figure 3b — CPU/memory utilization of non-idle DBs"))

        panels = self.figure6_boxes()
        rows = []
        for (edition, daytype), boxes in panels.items():
            peak_hour = int(np.argmax([box.median for box in boxes]))
            trough_hour = int(np.argmin([box.median for box in boxes]))
            rows.append((edition.short_name, daytype,
                         f"h{peak_hour}", round(boxes[peak_hour].median, 1),
                         f"h{trough_hour}",
                         round(boxes[trough_hour].median, 1)))
        parts.append(format_table(
            ["edition", "daytype", "peak hour", "peak creates",
             "trough hour", "trough creates"],
            rows, title="Figure 6 — creates per hour-of-day (summary)"))
        return "\n\n".join(parts)
