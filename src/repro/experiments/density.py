"""The §5 density study: Figures 2, 10, 11, 12, 14 and Tables 2, 3.

Four back-to-back experiments at 100 / 110 / 120 / 140 % density, all
sharing the same trained model document, the same Population Manager
seed (so the request sequence is identical), and the same bootstrap
population — exactly the §5.2 protocol. Results are cached per study
so each figure's benchmark re-uses one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.runner import BenchmarkResult
from repro.experiments.report import format_table
from repro.experiments.scenarios import paper_scenario
from repro.parallel import SweepExecutor
from repro.parallel.executor import ProgressCallback
from repro.sqldb.population import InitialPopulationSpec

#: The paper's density levels.
PAPER_DENSITIES: Tuple[float, ...] = (1.0, 1.1, 1.2, 1.4)


@dataclass(frozen=True)
class DensitySummaryRow:
    """One density's entry in the study summary (feeds Figures 2/12/14)."""

    density: float
    final_reserved_cores: float
    final_disk_gb: float
    creation_redirects: int
    first_redirect_hour: Optional[int]
    failover_count: int
    failover_cores: float
    failover_bc_cores: float
    gross_revenue: float
    penalty: float
    adjusted_revenue: float

    @property
    def density_pct(self) -> int:
        return int(round(self.density * 100))


class DensityStudy:
    """Runs the sweep once and serves every figure from it."""

    def __init__(self, densities: Sequence[float] = PAPER_DENSITIES,
                 days: float = 6.0, seed: int = 42,
                 maintenance: bool = True,
                 population: Optional[InitialPopulationSpec] = None,
                 max_workers: Optional[int] = None,
                 progress: Optional[ProgressCallback] = None) -> None:
        self.densities = tuple(densities)
        if 1.0 not in self.densities:
            raise ValueError("the study needs the 100% baseline")
        self.days = days
        self.seed = seed
        self.maintenance = maintenance
        self.population = population
        self.max_workers = max_workers
        self.progress = progress
        self._results: Dict[float, BenchmarkResult] = {}

    # ------------------------------------------------------------------

    def run(self) -> Dict[float, BenchmarkResult]:
        """Execute (or return cached) runs for every density.

        The densities are independent experiments sharing one model
        document, so they fan out over :class:`SweepExecutor`; results
        are keyed by density regardless of completion order and are
        identical to the serial path (``max_workers=1``).
        """
        pending = [density for density in self.densities
                   if density not in self._results]
        if pending:
            scenarios = [paper_scenario(
                density=density, days=self.days, seed=self.seed,
                maintenance=self.maintenance,
                population=self.population) for density in pending]
            executor = SweepExecutor(max_workers=self.max_workers,
                                     progress=self.progress)
            for density, result in zip(pending, executor.run(scenarios)):
                self._results[density] = result
        return dict(self._results)

    def result(self, density: float) -> BenchmarkResult:
        self.run()
        return self._results[density]

    @property
    def baseline(self) -> BenchmarkResult:
        return self.result(1.0)

    # ------------------------------------------------------------------
    # Summary rows
    # ------------------------------------------------------------------

    def summary_rows(self) -> List[DensitySummaryRow]:
        rows = []
        for density in self.densities:
            result = self.result(density)
            kpis = result.kpis
            rows.append(DensitySummaryRow(
                density=density,
                final_reserved_cores=kpis.final_reserved_cores,
                final_disk_gb=kpis.final_disk_gb,
                creation_redirects=kpis.creation_redirects,
                first_redirect_hour=result.first_redirect_hour(),
                failover_count=kpis.failovers.count,
                failover_cores=kpis.failovers.total_cores_moved,
                failover_bc_cores=kpis.failovers.bc_cores_moved,
                gross_revenue=result.revenue.total_gross,
                penalty=result.revenue.total_penalty,
                adjusted_revenue=result.revenue.total_adjusted,
            ))
        return rows

    # ------------------------------------------------------------------
    # Figure 2 — density-study summary scatter
    # ------------------------------------------------------------------

    def figure2_rows(self) -> List[dict]:
        """Per non-baseline density: relative CPU-reservation change,
        relative capacity moved, relative adjusted revenue."""
        base = self.baseline
        base_cores = base.kpis.final_reserved_cores
        base_moved = max(base.kpis.failovers.total_cores_moved, 1e-9)
        base_revenue = base.revenue.total_adjusted
        rows = []
        for density in self.densities:
            if density == 1.0:
                continue
            result = self.result(density)
            rows.append({
                "density_pct": int(round(density * 100)),
                "rel_cpu_reservation":
                    result.kpis.final_reserved_cores / base_cores - 1.0,
                "rel_capacity_moved":
                    result.kpis.failovers.total_cores_moved / base_moved,
                "rel_adjusted_revenue":
                    result.revenue.total_adjusted / base_revenue,
            })
        return rows

    def format_figure2(self) -> str:
        rows = [(r["density_pct"],
                 f"{100 * r['rel_cpu_reservation']:+.1f}%",
                 f"{100 * r['rel_capacity_moved']:.0f}%",
                 f"{100 * (r['rel_adjusted_revenue'] - 1):+.1f}%")
                for r in self.figure2_rows()]
        return format_table(
            ["density %", "rel CPU reservation", "rel capacity moved",
             "rel adjusted revenue"],
            rows, title="Figure 2 — density vs QoS vs adjusted revenue")

    # ------------------------------------------------------------------
    # Figure 10 — cumulative creation redirects
    # ------------------------------------------------------------------

    def figure10_series(self) -> Dict[int, List[int]]:
        """Hourly cumulative redirect count per density."""
        return {int(round(d * 100)): self.result(d).redirect_series()
                for d in self.densities}

    def format_figure10(self, every: int = 12) -> str:
        series = self.figure10_series()
        hours = range(0, min(len(s) for s in series.values()), every)
        rows = [[f"h{h}"] + [series[pct][h] for pct in sorted(series)]
                for h in hours]
        headers = ["hour"] + [f"{pct}%" for pct in sorted(series)]
        return format_table(headers, rows,
                            title="Figure 10 — cumulative creation redirects")

    # ------------------------------------------------------------------
    # Figure 11 — reserved cores vs disk usage
    # ------------------------------------------------------------------

    def figure11_points(self) -> Dict[int, List[Tuple[float, float]]]:
        """(reserved cores, disk GB) per hour, per density."""
        return {int(round(d * 100)): self.result(d).cores_vs_disk()
                for d in self.densities}

    def format_figure11(self, every: int = 24) -> str:
        points = self.figure11_points()
        rows = []
        for pct in sorted(points):
            for index, (cores, disk) in enumerate(points[pct]):
                if index % every == 0:
                    rows.append((f"{pct}%", f"h{index}", round(cores),
                                 round(disk)))
        return format_table(["density", "hour", "reserved cores", "disk GB"],
                            rows,
                            title="Figure 11 — reserved cores vs disk usage")

    # ------------------------------------------------------------------
    # Figure 12 — relative utilization and failed-over cores
    # ------------------------------------------------------------------

    def figure12a_rows(self) -> List[dict]:
        base = self.baseline
        rows = []
        for density in self.densities:
            result = self.result(density)
            rows.append({
                "density_pct": int(round(density * 100)),
                "rel_disk": (result.kpis.final_disk_gb
                             / base.kpis.final_disk_gb),
                "rel_cores": (result.kpis.final_reserved_cores
                              / base.kpis.final_reserved_cores),
            })
        return rows

    def figure12b_rows(self) -> List[dict]:
        rows = []
        for density in self.densities:
            failovers = self.result(density).kpis.failovers
            rows.append({
                "density_pct": int(round(density * 100)),
                "gp_cores_moved": failovers.gp_cores_moved,
                "bc_cores_moved": failovers.bc_cores_moved,
                "total_cores_moved": failovers.total_cores_moved,
            })
        return rows

    def format_figure12(self) -> str:
        a_rows = [(r["density_pct"], f"{r['rel_disk']:.3f}",
                   f"{r['rel_cores']:.3f}") for r in self.figure12a_rows()]
        b_rows = [(r["density_pct"], round(r["gp_cores_moved"]),
                   round(r["bc_cores_moved"]),
                   round(r["total_cores_moved"]))
                  for r in self.figure12b_rows()]
        return (format_table(["density %", "rel disk", "rel cores"], a_rows,
                             title="Figure 12a — utilization relative to 100%")
                + "\n\n"
                + format_table(["density %", "GP cores", "BC cores", "total"],
                               b_rows,
                               title="Figure 12b — failed-over cores"))

    # ------------------------------------------------------------------
    # Figure 14 — modeled adjusted revenue
    # ------------------------------------------------------------------

    def figure14_rows(self) -> List[dict]:
        rows = []
        for density in self.densities:
            revenue = self.result(density).revenue
            rows.append({
                "density_pct": int(round(density * 100)),
                "gross": revenue.total_gross,
                "penalty": revenue.total_penalty,
                "adjusted": revenue.total_adjusted,
                "penalized_databases": revenue.penalized_databases,
            })
        return rows

    def format_figure14(self) -> str:
        rows = [(r["density_pct"], round(r["gross"]), round(r["penalty"]),
                 round(r["adjusted"]), r["penalized_databases"])
                for r in self.figure14_rows()]
        return format_table(
            ["density %", "gross $", "penalty $", "adjusted $",
             "penalized DBs"],
            rows, title="Figure 14 — total modeled adjusted revenue")

    # ------------------------------------------------------------------
    # Tables 2 and 3
    # ------------------------------------------------------------------

    def table2_row(self) -> dict:
        """Initial population breakdown (identical across densities)."""
        result = self.baseline
        first = result.frames[0]
        return {
            "premium_bc": first.active_bc,
            "standard_gp": first.active_gp,
            "total": first.active_total,
        }

    def table3_rows(self) -> List[dict]:
        """Free remaining logical cores and disk % after bootstrap."""
        rows = []
        for density in self.densities:
            result = self.result(density)
            rows.append({
                "density_pct": int(round(density * 100)),
                "free_remaining_cores": round(result.bootstrap_free_cores),
                "disk_usage_pct":
                    round(100 * result.bootstrap_disk_utilization),
            })
        return rows

    def format_tables(self) -> str:
        t2 = self.table2_row()
        table2 = format_table(
            ["Premium/BC", "Standard/GP", "Total"],
            [(t2["premium_bc"], t2["standard_gp"], t2["total"])],
            title="Table 2 — initial population")
        table3 = format_table(
            ["density %", "free remaining cores", "disk usage %"],
            [(r["density_pct"], r["free_remaining_cores"],
              r["disk_usage_pct"]) for r in self.table3_rows()],
            title="Table 3 — experiment parameters")
        return table2 + "\n\n" + table3


_STUDY_CACHE: Dict[Tuple, DensityStudy] = {}


def default_density_study(days: float = 6.0, seed: int = 42,
                          maintenance: bool = True,
                          max_workers: Optional[int] = None) -> DensityStudy:
    """Process-wide cached study so every benchmark shares one sweep.

    ``max_workers`` only controls *how* the sweep executes, never what
    it produces, so it is deliberately not part of the cache key.
    """
    key = (days, seed, maintenance)
    study = _STUDY_CACHE.get(key)
    if study is None:
        study = DensityStudy(days=days, seed=seed, maintenance=maintenance,
                             max_workers=max_workers)
        _STUDY_CACHE[key] = study
    return study
