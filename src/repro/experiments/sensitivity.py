"""Configuration-change evaluation (the paper's use case (a)).

"We are using Toto to: (a) evaluate production configuration changes
in SQL DB before they deploy (e.g., buffers, placement policies)".

A :class:`ConfigSweep` runs one base scenario under several declarative
variants — each variant is a named transformation of the scenario —
and tabulates the KPI deltas against the baseline, which is exactly
how a change review reads: *if we ship this knob, what happens to
redirects, failovers, and adjusted revenue?*
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.runner import BenchmarkResult
from repro.core.scenario import BenchmarkScenario
from repro.experiments.report import format_table
from repro.parallel import SweepExecutor

Transform = Callable[[BenchmarkScenario], BenchmarkScenario]


@dataclass(frozen=True)
class Variant:
    """One configuration candidate under evaluation."""

    label: str
    transform: Transform


@dataclass(frozen=True)
class VariantOutcome:
    """KPI snapshot of one variant run."""

    label: str
    result: BenchmarkResult

    def kpi_row(self) -> Dict[str, float]:
        kpis = self.result.kpis
        return {
            "reserved_cores": kpis.final_reserved_cores,
            "disk_utilization": kpis.disk_utilization,
            "redirects": float(kpis.creation_redirects),
            "failovers": float(kpis.failovers.count),
            "failover_cores": kpis.failovers.total_cores_moved,
            "adjusted_revenue": self.result.revenue.total_adjusted,
        }


class ConfigSweep:
    """Run a baseline plus variants and diff their KPIs."""

    def __init__(self, baseline: BenchmarkScenario,
                 variants: Sequence[Variant],
                 max_workers: Optional[int] = None) -> None:
        labels = [variant.label for variant in variants]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate variant labels in {labels}")
        if "baseline" in labels:
            raise ValueError("'baseline' is reserved")
        self.baseline = baseline
        self.variants = list(variants)
        self.max_workers = max_workers
        self._outcomes: List[VariantOutcome] = []

    def run(self) -> List[VariantOutcome]:
        """Execute the baseline and every variant (cached).

        The grid fans out over :class:`SweepExecutor`; outcome order is
        fixed (baseline first, then variants as declared) regardless of
        which run finishes first.
        """
        if not self._outcomes:
            labels = ["baseline"] + [v.label for v in self.variants]
            scenarios = [self.baseline]
            for variant in self.variants:
                scenario = variant.transform(self.baseline)
                scenarios.append(replace(
                    scenario,
                    name=f"{self.baseline.name}+{variant.label}"))
            results = SweepExecutor(
                max_workers=self.max_workers).run(scenarios)
            self._outcomes = [VariantOutcome(label=label, result=result)
                              for label, result in zip(labels, results)]
        return list(self._outcomes)

    def outcome(self, label: str) -> VariantOutcome:
        for candidate in self.run():
            if candidate.label == label:
                return candidate
        raise KeyError(f"no variant '{label}'")

    def delta_rows(self) -> List[Tuple]:
        """Per-variant KPI deltas relative to the baseline."""
        outcomes = self.run()
        base = outcomes[0].kpi_row()
        rows: List[Tuple] = []
        for outcome in outcomes:
            row = outcome.kpi_row()
            rows.append((
                outcome.label,
                round(row["reserved_cores"]),
                f"{row['disk_utilization']:.1%}",
                int(row["redirects"]),
                int(row["failovers"]),
                f"{row['adjusted_revenue'] - base['adjusted_revenue']:+,.0f}",
            ))
        return rows

    def format_report(self) -> str:
        return format_table(
            ["variant", "cores", "disk util", "redirects", "failovers",
             "Δ adjusted $"],
            self.delta_rows(),
            title=f"Config sweep — {self.baseline.name}")


# ---------------------------------------------------------------------------
# Ready-made transforms for common knobs
# ---------------------------------------------------------------------------

def with_report_interval(seconds: int) -> Variant:
    """Change how often replicas report load to the PLB."""
    def transform(scenario: BenchmarkScenario) -> BenchmarkScenario:
        return replace(scenario,
                       ring=replace(scenario.ring,
                                    report_interval=seconds))
    return Variant(label=f"report-{seconds // 60}min", transform=transform)


def with_density(density: float) -> Variant:
    """Change the density knob (the paper's §5 sweep as a variant)."""
    def transform(scenario: BenchmarkScenario) -> BenchmarkScenario:
        return replace(scenario,
                       ring=replace(scenario.ring, density=density))
    return Variant(label=f"density-{int(round(density * 100))}",
                   transform=transform)

def with_greedy_placement() -> Variant:
    """Disable the PLB's simulated annealing (greedy best-fit)."""
    def transform(scenario: BenchmarkScenario) -> BenchmarkScenario:
        return replace(scenario,
                       ring=replace(scenario.ring, use_annealing=False))
    return Variant(label="greedy-plb", transform=transform)
