"""Canonical benchmark scenarios mirroring the paper's setup (§5.2).

The headline scenario: a 14-node gen5 stage ring bootstrapped with the
Table 2 population (187 Standard/GP + 33 Premium/BC at 77% disk
utilization), churned by models trained on two weeks of synthetic
region telemetry, run for six days at a chosen density level.

Training is deterministic in the training seed and cached per process,
so the four density levels (and the repeatability runs) share exactly
the same model document — as they do in the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.chaos.faults import ChaosConfig
from repro.core.scenario import BenchmarkScenario
from repro.errors import ScenarioError
from repro.models.training import TrainingArtifacts, train_model_document
from repro.sqldb.population import InitialPopulationSpec
from repro.sqldb.tenant_ring import TenantRingConfig
from repro.telemetry.region import US_EAST_LIKE, RegionProfile
from repro.units import DAY, MINUTE

#: Seed used to synthesize + train the shared model document.
DEFAULT_TRAINING_SEED = 20210620   # SIGMOD'21 opened June 20, 2021
#: Seed driving the benchmark itself (bootstrap + Population Manager).
DEFAULT_SCENARIO_SEED = 42

_ARTIFACT_CACHE: Dict[Tuple, TrainingArtifacts] = {}


# The memo below is keyed by content (profile name, seed, days, corpus
# size) and training is a pure function of that key, so a worker-local
# cache entry can never diverge from the parent's — the TL023 hazard
# (worker state that should have propagated back) does not apply.
def trained_artifacts(profile: RegionProfile = US_EAST_LIKE,  # totolint: disable=TL023
                      training_seed: int = DEFAULT_TRAINING_SEED,
                      training_days: int = 14,
                      disk_corpus_size: int = 1200) -> TrainingArtifacts:
    """Train (or fetch cached) the paper-style model document."""
    key = (profile.name, training_seed, training_days, disk_corpus_size)
    artifacts = _ARTIFACT_CACHE.get(key)
    if artifacts is None:
        rng = np.random.default_rng(training_seed)
        artifacts = train_model_document(
            profile, rng, training_days=training_days,
            disk_corpus_size=disk_corpus_size)
        _ARTIFACT_CACHE[key] = artifacts
    return artifacts


def paper_scenario(density: float = 1.0,
                   days: float = 6.0,
                   seed: int = DEFAULT_SCENARIO_SEED,
                   plb_salt: int = 0,
                   profile: RegionProfile = US_EAST_LIKE,
                   training_seed: int = DEFAULT_TRAINING_SEED,
                   maintenance: bool = True,
                   population: Optional[InitialPopulationSpec] = None,
                   backend: str = "annealing"
                   ) -> BenchmarkScenario:
    """The §5.2 experiment at one density level.

    Args:
        density: the tuned knob — 1.0, 1.1, 1.2, 1.4 in the paper.
        days: run length (the paper uses 6-day runs and 18-hour runs
            for the repeatability study).
        seed: root scenario seed (Population Manager, bootstrap, node
            model streams).
        plb_salt: varies only the PLB's annealing randomness.
        maintenance: simulate occasional cluster maintenance upgrades
            (the Figure 11 outliers).
        population: override the Table 2 initial population.
        backend: orchestrator backend for the ring
            (:func:`repro.fabric.backend.backend_names`).
    """
    artifacts = trained_artifacts(profile, training_seed)
    ring = TenantRingConfig(
        node_count=14,
        density=density,
        maintenance_interval_hours=40.0 if maintenance else 0.0,
        backend=backend,
    )
    pct = int(round(density * 100))
    return BenchmarkScenario(
        name=f"paper-density-{pct}pct",
        model_document=artifacts.document,
        seed=seed,
        plb_salt=plb_salt,
        duration=int(days * DAY),
        ring=ring,
        initial_population=(population if population is not None
                            else InitialPopulationSpec()),
    )


#: Named fault-injection profiles (docs/CHAOS.md). Counts are per-day
#: totals scaled by the run length in :func:`chaos_profile`; durations
#: are fixed per profile.
CHAOS_PROFILES: Dict[str, ChaosConfig] = {
    # An occasional blip: the §5.2 "intermittent failures that also
    # happen in production".
    "light": ChaosConfig(
        profile="light",
        node_crashes=1, node_crash_duration=20 * MINUTE,
        naming_stale_windows=1, naming_stale_duration=15 * MINUTE,
    ),
    # A rough day in a region: crashes plus a metastore incident and
    # flaky metric-report RPCs.
    "moderate": ChaosConfig(
        profile="moderate",
        node_crashes=2, node_crash_duration=30 * MINUTE,
        naming_outages=1, naming_outage_duration=10 * MINUTE,
        naming_stale_windows=2, naming_stale_duration=20 * MINUTE,
        rpc_loss_windows=2, rpc_loss_duration=10 * MINUTE,
        control_plane_outages=1, control_plane_outage_duration=8 * MINUTE,
    ),
    # A sustained incident: everything at once, including a wedged
    # Population Manager.
    "heavy": ChaosConfig(
        profile="heavy",
        node_crashes=3, node_crash_duration=45 * MINUTE,
        naming_outages=2, naming_outage_duration=15 * MINUTE,
        naming_stale_windows=3, naming_stale_duration=30 * MINUTE,
        rpc_loss_windows=3, rpc_loss_duration=15 * MINUTE,
        rpc_latency_windows=2, rpc_latency_duration=15 * MINUTE,
        control_plane_outages=2, control_plane_outage_duration=10 * MINUTE,
        pm_stalls=1, pm_stall_duration=120 * MINUTE,
    ),
}


def chaos_profile(name: str) -> ChaosConfig:
    """Look up a named chaos profile; raises on unknown names."""
    config = CHAOS_PROFILES.get(name)
    if config is None:
        known = ", ".join(sorted(CHAOS_PROFILES))
        raise ScenarioError(f"unknown chaos profile '{name}' (known: {known})")
    return config


def chaos_scenario(profile_name: str = "moderate",
                   density: float = 1.1,
                   days: float = 1.0,
                   seed: int = DEFAULT_SCENARIO_SEED,
                   plb_salt: int = 0,
                   maintenance: bool = False) -> BenchmarkScenario:
    """The paper scenario with a named fault-injection profile attached."""
    return paper_scenario(density=density, days=days, seed=seed,
                          plb_salt=plb_salt,
                          maintenance=maintenance
                          ).with_chaos(chaos_profile(profile_name))
