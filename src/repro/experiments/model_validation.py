"""The §4 model validation: Figures 7, 8, 9 plus the model-selection
ablation behind §4.2.2.

* Figure 7 — K-S normality p-values per hourly training set;
* Figure 8 — the 100-run create/drop simulation vs the production
  trace (net creates, creates, drops);
* Figure 9 — the steady-state disk model's cumulative usage vs the
  production curve;
* ablation — hourly-normal vs KDE vs customized binning, scored with
  DTW / RMSE / cumulative-growth error.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.hourly_schedule import DayType
from repro.experiments.report import format_table
from repro.experiments.scenarios import trained_artifacts
from repro.models.baselines import (
    BinnedDeltaModel,
    HourlyNormalDeltaModel,
    KdeDeltaModel,
    ModelComparisonRow,
    compare_delta_models,
)
from repro.models.hourly import HourlyTrainingSets, ks_p_values
from repro.models.training import train_create_drop_model
from repro.models.validation import (
    CreateDropValidation,
    DiskValidation,
    validate_create_drop,
    validate_disk_model,
)
from repro.sqldb.editions import Edition
from repro.stats.descriptive import boxplot_stats


class ModelValidationStudy:
    """Reruns the §4 training + validation pipeline end to end."""

    def __init__(self, training_seed: int = 20210620,
                 validation_seed: int = 99) -> None:
        self.artifacts = trained_artifacts(training_seed=training_seed)
        self.validation_seed = validation_seed

    # ------------------------------------------------------------------
    # Figure 7 — K-S p-values
    # ------------------------------------------------------------------

    def figure7_pvalues(self) -> Dict[Tuple[Edition, str, str], List[float]]:
        """p-values per (edition, kind, daytype): 8 box plots x 24 hours."""
        result: Dict[Tuple[Edition, str, str], List[float]] = {}
        for edition in Edition:
            for kind in ("create", "drop"):
                trace = self.artifacts.event_traces[(edition, kind)]
                sets = HourlyTrainingSets.from_trace(trace)
                for daytype in DayType:
                    key = (edition, kind, daytype.value)
                    result[key] = ks_p_values(sets, daytype)
        return result

    def figure7_rejection_rate(self, alpha: float = 0.05) -> float:
        """Overall fraction of hourly sets rejecting normality.

        The paper could not reject normality for nearly every hour
        ("All the p-values (except a few...) were greater than 0.05").
        """
        all_p = [p for values in self.figure7_pvalues().values()
                 for p in values]
        if not all_p:
            return 0.0
        return float(np.mean([p < alpha for p in all_p]))

    # ------------------------------------------------------------------
    # Figure 8 — create/drop validation
    # ------------------------------------------------------------------

    def figure8_validation(self, edition: Edition = Edition.STANDARD_GP,
                           runs: int = 100) -> CreateDropValidation:
        create = self.artifacts.event_traces[(edition, "create")]
        drop = self.artifacts.event_traces[(edition, "drop")]
        model = train_create_drop_model(create, drop)
        rng = np.random.default_rng(self.validation_seed)
        return validate_create_drop(model, create, drop, runs=runs, rng=rng)

    # ------------------------------------------------------------------
    # Figure 9 — steady-state disk validation
    # ------------------------------------------------------------------

    def figure9_validation(self, edition: Edition = Edition.STANDARD_GP,
                           runs: int = 50) -> DiskValidation:
        traces = [t for t in self.artifacts.disk_traces
                  if t.edition is edition and t.pattern == "steady"]
        dataset = self.artifacts.datasets[edition]
        schedule = self._steady_schedule(edition)
        days = (len(traces[0].usage_gb) - 1) * 20 * 60 // 86400
        rng = np.random.default_rng(self.validation_seed + 1)
        return validate_disk_model(schedule,
                                   [t.usage_gb for t in traces],
                                   days=days, runs=runs, rng=rng)

    def _steady_schedule(self, edition: Edition):
        for model in self.artifacts.document.resource_models:
            if (hasattr(model, "steady")
                    and model.selector.edition is edition):
                return model.steady
        raise LookupError(f"no disk model trained for {edition.value}")

    # ------------------------------------------------------------------
    # §4.2.2 ablation — hourly-normal vs KDE vs binning
    # ------------------------------------------------------------------

    def model_selection_ablation(self, edition: Edition = Edition.STANDARD_GP,
                                 runs: int = 30) -> List[ModelComparisonRow]:
        traces = [t for t in self.artifacts.disk_traces
                  if t.edition is edition and t.pattern == "steady"]
        deltas = np.concatenate([t.deltas() for t in traces])
        production = np.asarray([t.usage_gb for t in traces], dtype=float)
        production_rebased = production - production[:, :1]
        mean_curve = production_rebased.mean(axis=0)
        days = (production.shape[1] - 1) * 20 * 60 // 86400
        models = [
            HourlyNormalDeltaModel(self._steady_schedule(edition)),
            KdeDeltaModel(deltas),
            BinnedDeltaModel(deltas),
        ]
        rng = np.random.default_rng(self.validation_seed + 2)
        return compare_delta_models(mean_curve, models, days=days,
                                    runs=runs, rng=rng)

    # ------------------------------------------------------------------

    def format_report(self) -> str:
        parts = []
        pvalue_rows = []
        for (edition, kind, daytype), values in self.figure7_pvalues().items():
            if not values:
                continue
            box = boxplot_stats(values)
            pvalue_rows.append((edition.short_name, kind, daytype,
                                len(values), f"{box.median:.3f}",
                                f"{box.minimum:.3f}"))
        parts.append(format_table(
            ["edition", "kind", "daytype", "n hours", "median p", "min p"],
            pvalue_rows, title="Figure 7 — K-S normality p-values"))
        parts.append(f"overall rejection rate at alpha=0.05: "
                     f"{100 * self.figure7_rejection_rate():.1f}%")

        for edition in Edition:
            validation = self.figure8_validation(edition, runs=100)
            parts.append(format_table(
                ["edition", "creates RMSE", "drops RMSE", "net RMSE",
                 "rel daily err"],
                [(edition.short_name, f"{validation.creates_rmse():.2f}",
                  f"{validation.drops_rmse():.2f}",
                  f"{validation.net_rmse():.2f}",
                  f"{100 * validation.relative_daily_error():.2f}%")],
                title=f"Figure 8 — create/drop validation ({edition.value})"))

        disk = self.figure9_validation()
        parts.append(format_table(
            ["DTW", "RMSE", "cumulative growth error"],
            [(f"{disk.dtw():.2f}", f"{disk.rmse():.3f}",
              f"{100 * disk.cumulative_growth_error():.2f}%")],
            title="Figure 9 — steady-state disk validation (GP)"))

        ablation = self.model_selection_ablation()
        parts.append(format_table(
            ["model", "DTW", "RMSE", "growth error"],
            [(row.model_name, f"{row.dtw:.2f}", f"{row.rmse:.3f}",
              f"{100 * row.cumulative_growth_error:.1f}%")
             for row in ablation],
            title="§4.2.2 ablation — disk-delta model selection"))
        return "\n\n".join(parts)
