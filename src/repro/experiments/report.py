"""Plain-text rendering of the paper's tables and figure series.

The benchmarks regenerate every figure as numbers; these helpers print
them as aligned tables so ``pytest benchmarks/ --benchmark-only -s``
reads like the paper's evaluation section.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    string_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    for row in string_rows:
        parts.append(line(row))
    return "\n".join(parts)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_series(label: str, values: Sequence[float],
                  every: int = 12) -> str:
    """Render a long hourly series as a compact sampled row."""
    sampled = [f"h{index}={_cell(float(value))}"
               for index, value in enumerate(values)
               if index % every == 0]
    return f"{label}: " + "  ".join(sampled)


def percent(value: float) -> str:
    """Render a ratio as a percentage string."""
    return f"{100.0 * value:+.1f}%"
