"""The fleet density study: region-scale packing in one sweep.

The single-cluster density study (§5, :mod:`repro.experiments.density`)
re-runs one 14-node ring at four density settings. At region scale the
same question — how hard can the control plane pack tenants before QoS
and revenue degrade — is asked across a *heterogeneous fleet*: clusters
are stamped from one template but cycle through the density levels, so
one 100-cluster sweep yields a per-density comparison with ~25 clusters
of statistical weight behind every level and ≥1M databases in total.

Each worker reduces its cluster to a
:class:`~repro.fleet.summary.ClusterSummary` before anything crosses
the process boundary, so the study's parent-side footprint is ~100
small summaries regardless of the million databases simulated
(docs/FLEET.md).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.runner import BenchmarkResult
from repro.experiments.report import format_table
from repro.experiments.scenarios import DEFAULT_SCENARIO_SEED
from repro.fleet import (
    ClusterTemplate,
    FleetResult,
    FleetTopology,
    fleet_obs_export,
    run_fleet,
)
from repro.obs.export import ObsExport
from repro.obs.metrics import MetricRegistry
from repro.obs.sink import ListSink
from repro.parallel.executor import ProgressCallback, SweepExecutor
from repro.units import MINUTE

#: The paper's density levels, cycled across the fleet's clusters.
FLEET_DENSITIES: Tuple[float, ...] = (1.0, 1.1, 1.2, 1.4)

#: Default per-cluster ring size. 640 gen5 nodes host the Table 2
#: population scaled ~46x — 10,057 databases — so the default
#: 100-cluster fleet simulates 1,005,700 databases.
FLEET_NODE_COUNT = 640


@dataclass(frozen=True)
class FleetDensityRow:
    """One density level's region-wide roll-up (spec-ordered clusters)."""

    density: float
    clusters: int
    databases_created: int
    active_databases: int
    reserved_cores: float
    disk_gb: float
    creation_redirects: int
    failover_count: int
    revenue_adjusted: float

    @property
    def density_pct(self) -> int:
        return int(round(self.density * 100))


class FleetDensityStudy:
    """100 clusters, ≥1M databases, one deterministic sweep.

    ``max_workers`` only controls how the sweep executes — serial and
    sharded runs produce byte-identical summaries and digests
    (tests/test_fleet_merge.py) — so CI hardware picks the wall clock,
    never the numbers.
    """

    def __init__(self, cluster_count: int = 100,
                 node_count: int = FLEET_NODE_COUNT,
                 days: float = 0.1,
                 densities: Tuple[float, ...] = FLEET_DENSITIES,
                 base_seed: int = DEFAULT_SCENARIO_SEED,
                 chaos: Optional[str] = None,
                 backend: str = "annealing",
                 max_workers: Optional[int] = None,
                 progress: Optional[ProgressCallback] = None) -> None:
        self.topology = FleetTopology(
            cluster_count=cluster_count,
            template=ClusterTemplate(
                node_count=node_count,
                days=days,
                report_interval=30 * MINUTE,
                chaos=chaos,
                backend=backend,
            ),
            base_seed=base_seed,
            prefix="density",
            densities=tuple(densities),
        )
        self.max_workers = max_workers
        self.progress = progress
        self._result: Optional[FleetResult] = None

    # ------------------------------------------------------------------

    def run(self) -> FleetResult:
        """Execute (or return) the cached fleet sweep."""
        if self._result is None:
            self._result = run_fleet(self.topology,
                                     max_workers=self.max_workers,
                                     progress=self.progress)
        return self._result

    # ------------------------------------------------------------------

    def density_rows(self) -> List[FleetDensityRow]:
        """Region KPIs per density level, ascending density.

        Within each level, clusters accumulate in spec order — the same
        sequential-float contract as the full fleet merge.
        """
        result = self.run()
        levels = sorted(set(summary.density
                            for summary in result.summaries))
        rows: List[FleetDensityRow] = []
        for level in levels:
            clusters = 0
            created = 0
            active = 0
            cores = 0.0
            disk = 0.0
            redirects = 0
            failovers = 0
            adjusted = 0.0
            for summary in result.summaries:
                if summary.density != level:
                    continue
                clusters += 1
                created += summary.databases_created
                active += summary.active_databases
                cores += summary.final_reserved_cores
                disk += summary.final_disk_gb
                redirects += summary.creation_redirects
                failovers += summary.failover_count
                adjusted += summary.revenue_adjusted
            rows.append(FleetDensityRow(
                density=level,
                clusters=clusters,
                databases_created=created,
                active_databases=active,
                reserved_cores=cores,
                disk_gb=disk,
                creation_redirects=redirects,
                failover_count=failovers,
                revenue_adjusted=adjusted,
            ))
        return rows

    def format_summary(self) -> str:
        result = self.run()
        kpis = result.kpis
        header = (f"fleet: {kpis.clusters} clusters, {kpis.nodes} nodes, "
                  f"{kpis.databases_created} databases "
                  f"({result.mode} sweep, digest {result.digest[:12]})")
        rows = [(row.density_pct, row.clusters, row.databases_created,
                 round(row.reserved_cores), round(row.disk_gb),
                 row.creation_redirects, row.failover_count,
                 round(row.revenue_adjusted))
                for row in self.density_rows()]
        table = format_table(
            ["density %", "clusters", "databases", "reserved cores",
             "disk GB", "redirects", "failovers", "adjusted $"],
            rows, title="Fleet density study — region KPIs per level")
        return header + "\n\n" + table

    def obs_export(self) -> ObsExport:
        """Region-wide observability artifacts for the merged run."""
        return fleet_obs_export(self.run())


# ----------------------------------------------------------------------
# Backend comparison
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BackendClusterSummary:
    """One cluster's KPIs as kept by the backend comparison.

    A separate reduction from :class:`~repro.fleet.summary.ClusterSummary`
    on purpose: the comparison's headline KPI — failed-over cores — is
    not a fleet-summary field, and the fleet digest pins forbid adding
    one there.
    """

    name: str
    seed: int
    density: float
    reserved_cores: float
    disk_gb: float
    databases_created: int
    active_databases: int
    creation_redirects: int
    failover_count: int
    failover_cores: float
    revenue_adjusted: float
    events_executed: int


def summarize_backend_result(result: BenchmarkResult) -> BackendClusterSummary:
    """Reduce one cluster's run for the backend comparison.

    Module-level on purpose: it is the sweep executor's ``reducer`` and
    must pickle to the pooled workers (TL023's pickle-purity rule).
    """
    kpis = result.kpis
    return BackendClusterSummary(
        name=result.scenario.name,
        seed=result.scenario.seed,
        density=result.scenario.ring.density,
        reserved_cores=kpis.final_reserved_cores,
        disk_gb=kpis.final_disk_gb,
        databases_created=len(result.databases),
        active_databases=kpis.active_databases,
        creation_redirects=kpis.creation_redirects,
        failover_count=kpis.failovers.count,
        failover_cores=kpis.failovers.total_cores_moved,
        revenue_adjusted=result.revenue.total_adjusted,
        events_executed=result.events_executed,
    )


# totolint: canonical-json
def backend_digest(summaries: Sequence[BackendClusterSummary]) -> str:
    """Canonical content hash of one backend's summaries.

    Same canonical-JSON recipe as
    :func:`~repro.fleet.summary.fleet_digest`, so per-backend digests
    are safe to pin as golden values in tests.
    """
    payload = json.dumps([asdict(summary) for summary in summaries],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class BackendKpis:
    """One backend's roll-up across its fleet, in spec order."""

    backend: str
    clusters: int
    databases_created: int
    active_databases: int
    reserved_cores: float
    disk_gb: float
    creation_redirects: int
    failover_count: int
    failover_cores: float
    revenue_adjusted: float


# totolint: merge-fn
def merge_backend_summaries(backend: str,
                            summaries: Sequence[BackendClusterSummary]
                            ) -> BackendKpis:
    """Fold one backend's summaries, strictly in spec order.

    Sequential left-to-right float accumulation — the same merge
    contract as :func:`~repro.fleet.summary.merge_summaries`, so serial
    and sharded comparison runs agree bit for bit.
    """
    created = 0
    active = 0
    cores = 0.0
    disk = 0.0
    redirects = 0
    failovers = 0
    failover_cores = 0.0
    adjusted = 0.0
    for summary in summaries:
        created += summary.databases_created
        active += summary.active_databases
        cores += summary.reserved_cores
        disk += summary.disk_gb
        redirects += summary.creation_redirects
        failovers += summary.failover_count
        failover_cores += summary.failover_cores
        adjusted += summary.revenue_adjusted
    return BackendKpis(
        backend=backend,
        clusters=len(summaries),
        databases_created=created,
        active_databases=active,
        reserved_cores=cores,
        disk_gb=disk,
        creation_redirects=redirects,
        failover_count=failovers,
        failover_cores=failover_cores,
        revenue_adjusted=adjusted,
    )


@dataclass(frozen=True)
class BackendRunResult:
    """One backend's half of the comparison."""

    backend: str
    topology: FleetTopology
    summaries: Tuple[BackendClusterSummary, ...]
    kpis: BackendKpis
    digest: str
    mode: str


class BackendComparisonStudy:
    """The same fleet run under every orchestrator backend.

    Every backend gets an *identical* workload — same base seed, same
    density cycle, same cluster names — differing only in the
    template's ``backend`` field, so any KPI delta (redirects,
    failed-over cores, adjusted revenue) is attributable to the
    scheduler alone. Backends run in tuple order; within one backend
    the sweep is the standard deterministic fleet fan-out.
    """

    def __init__(self, cluster_count: int = 8,
                 node_count: int = 14,
                 days: float = 0.1,
                 densities: Tuple[float, ...] = FLEET_DENSITIES,
                 base_seed: int = DEFAULT_SCENARIO_SEED,
                 chaos: Optional[str] = None,
                 backends: Tuple[str, ...] = ("annealing", "k8s"),
                 max_workers: Optional[int] = None,
                 progress: Optional[ProgressCallback] = None) -> None:
        self.backends = tuple(backends)
        self.topologies: Dict[str, FleetTopology] = {
            backend: FleetTopology(
                cluster_count=cluster_count,
                template=ClusterTemplate(
                    node_count=node_count,
                    days=days,
                    report_interval=30 * MINUTE,
                    chaos=chaos,
                    backend=backend,
                ),
                base_seed=base_seed,
                prefix="orch",
                densities=tuple(densities),
            )
            for backend in self.backends
        }
        self.max_workers = max_workers
        self.progress = progress
        self._results: Optional[Dict[str, BackendRunResult]] = None

    # ------------------------------------------------------------------

    def run(self) -> Dict[str, BackendRunResult]:
        """Execute (or return) the per-backend sweeps, in tuple order."""
        if self._results is None:
            results: Dict[str, BackendRunResult] = {}
            for backend in self.backends:
                topology = self.topologies[backend]
                executor = SweepExecutor(max_workers=self.max_workers,
                                         progress=self.progress,
                                         reducer=summarize_backend_result)
                try:
                    summaries = tuple(executor.run(topology.scenarios()))
                    mode = executor.last_mode or "serial"
                finally:
                    executor.shutdown()
                results[backend] = BackendRunResult(
                    backend=backend,
                    topology=topology,
                    summaries=summaries,
                    kpis=merge_backend_summaries(backend, summaries),
                    digest=backend_digest(summaries),
                    mode=mode,
                )
            self._results = results
        return self._results

    # ------------------------------------------------------------------

    def format_summary(self) -> str:
        results = self.run()
        first = next(iter(results.values()))
        topo = first.topology
        levels = sorted(set(topo.densities)) or [topo.template.density]
        header = (f"backend comparison: {topo.cluster_count} clusters x "
                  f"{topo.template.node_count} nodes per backend, "
                  f"densities {', '.join(f'{d:g}' for d in levels)}")
        rows = []
        for backend in self.backends:
            kpis = results[backend].kpis
            rows.append((backend, kpis.clusters, kpis.databases_created,
                         round(kpis.reserved_cores),
                         kpis.creation_redirects,
                         kpis.failover_count,
                         round(kpis.failover_cores),
                         round(kpis.revenue_adjusted)))
        table = format_table(
            ["backend", "clusters", "databases", "reserved cores",
             "redirects", "failovers", "failed-over cores", "adjusted $"],
            rows, title="Backend comparison — identical fleet per backend")
        digests = "\n".join(
            f"  {backend}: digest {results[backend].digest[:12]} "
            f"({results[backend].mode} sweep)"
            for backend in self.backends)
        return header + "\n\n" + table + "\n\n" + digests

    def metric_registry(self) -> MetricRegistry:
        """Per-backend KPI catalogue (``toto_backend_<name>_*``)."""
        registry = MetricRegistry()
        for backend in self.backends:
            kpis = self.run()[backend].kpis
            stem = f"toto_backend_{backend}"
            gauges = (
                (f"{stem}_reserved_cores",
                 f"Reserved cores at run end under the {backend} backend.",
                 kpis.reserved_cores),
                (f"{stem}_failover_cores",
                 f"Cores moved by failovers under the {backend} backend.",
                 kpis.failover_cores),
                (f"{stem}_adjusted_revenue",
                 f"Adjusted revenue under the {backend} backend.",
                 kpis.revenue_adjusted),
            )
            for name, help_text, value in gauges:
                registry.gauge(name, help_text, lambda value=value: value)
            counters = (
                (f"{stem}_redirects_total",
                 f"Creation redirects under the {backend} backend.",
                 float(kpis.creation_redirects)),
                (f"{stem}_capacity_failovers_total",
                 f"Capacity failovers under the {backend} backend.",
                 float(kpis.failover_count)),
            )
            for name, help_text, value in counters:
                registry.counter(name, help_text, lambda value=value: value)
        return registry

    def obs_export(self) -> ObsExport:
        """Comparison artifacts through the standard obs sinks."""
        sink = ListSink()
        for backend in self.backends:
            result = self.run()[backend]
            kpis = result.kpis
            sink.emit({
                "type": "sample",
                "backend": backend,
                "digest": result.digest,
                "metrics": {
                    f"toto_backend_{backend}_reserved_cores":
                        kpis.reserved_cores,
                    f"toto_backend_{backend}_redirects_total":
                        float(kpis.creation_redirects),
                    f"toto_backend_{backend}_capacity_failovers_total":
                        float(kpis.failover_count),
                    f"toto_backend_{backend}_failover_cores":
                        kpis.failover_cores,
                    f"toto_backend_{backend}_adjusted_revenue":
                        kpis.revenue_adjusted,
                },
            })
        return ObsExport(metrics_jsonl=sink.render(),
                         metrics_prom=self.metric_registry().to_prometheus())
