"""The fleet density study: region-scale packing in one sweep.

The single-cluster density study (§5, :mod:`repro.experiments.density`)
re-runs one 14-node ring at four density settings. At region scale the
same question — how hard can the control plane pack tenants before QoS
and revenue degrade — is asked across a *heterogeneous fleet*: clusters
are stamped from one template but cycle through the density levels, so
one 100-cluster sweep yields a per-density comparison with ~25 clusters
of statistical weight behind every level and ≥1M databases in total.

Each worker reduces its cluster to a
:class:`~repro.fleet.summary.ClusterSummary` before anything crosses
the process boundary, so the study's parent-side footprint is ~100
small summaries regardless of the million databases simulated
(docs/FLEET.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.report import format_table
from repro.experiments.scenarios import DEFAULT_SCENARIO_SEED
from repro.fleet import (
    ClusterTemplate,
    FleetResult,
    FleetTopology,
    fleet_obs_export,
    run_fleet,
)
from repro.obs.export import ObsExport
from repro.parallel.executor import ProgressCallback
from repro.units import MINUTE

#: The paper's density levels, cycled across the fleet's clusters.
FLEET_DENSITIES: Tuple[float, ...] = (1.0, 1.1, 1.2, 1.4)

#: Default per-cluster ring size. 640 gen5 nodes host the Table 2
#: population scaled ~46x — 10,057 databases — so the default
#: 100-cluster fleet simulates 1,005,700 databases.
FLEET_NODE_COUNT = 640


@dataclass(frozen=True)
class FleetDensityRow:
    """One density level's region-wide roll-up (spec-ordered clusters)."""

    density: float
    clusters: int
    databases_created: int
    active_databases: int
    reserved_cores: float
    disk_gb: float
    creation_redirects: int
    failover_count: int
    revenue_adjusted: float

    @property
    def density_pct(self) -> int:
        return int(round(self.density * 100))


class FleetDensityStudy:
    """100 clusters, ≥1M databases, one deterministic sweep.

    ``max_workers`` only controls how the sweep executes — serial and
    sharded runs produce byte-identical summaries and digests
    (tests/test_fleet_merge.py) — so CI hardware picks the wall clock,
    never the numbers.
    """

    def __init__(self, cluster_count: int = 100,
                 node_count: int = FLEET_NODE_COUNT,
                 days: float = 0.1,
                 densities: Tuple[float, ...] = FLEET_DENSITIES,
                 base_seed: int = DEFAULT_SCENARIO_SEED,
                 chaos: Optional[str] = None,
                 max_workers: Optional[int] = None,
                 progress: Optional[ProgressCallback] = None) -> None:
        self.topology = FleetTopology(
            cluster_count=cluster_count,
            template=ClusterTemplate(
                node_count=node_count,
                days=days,
                report_interval=30 * MINUTE,
                chaos=chaos,
            ),
            base_seed=base_seed,
            prefix="density",
            densities=tuple(densities),
        )
        self.max_workers = max_workers
        self.progress = progress
        self._result: Optional[FleetResult] = None

    # ------------------------------------------------------------------

    def run(self) -> FleetResult:
        """Execute (or return) the cached fleet sweep."""
        if self._result is None:
            self._result = run_fleet(self.topology,
                                     max_workers=self.max_workers,
                                     progress=self.progress)
        return self._result

    # ------------------------------------------------------------------

    def density_rows(self) -> List[FleetDensityRow]:
        """Region KPIs per density level, ascending density.

        Within each level, clusters accumulate in spec order — the same
        sequential-float contract as the full fleet merge.
        """
        result = self.run()
        levels = sorted(set(summary.density
                            for summary in result.summaries))
        rows: List[FleetDensityRow] = []
        for level in levels:
            clusters = 0
            created = 0
            active = 0
            cores = 0.0
            disk = 0.0
            redirects = 0
            failovers = 0
            adjusted = 0.0
            for summary in result.summaries:
                if summary.density != level:
                    continue
                clusters += 1
                created += summary.databases_created
                active += summary.active_databases
                cores += summary.final_reserved_cores
                disk += summary.final_disk_gb
                redirects += summary.creation_redirects
                failovers += summary.failover_count
                adjusted += summary.revenue_adjusted
            rows.append(FleetDensityRow(
                density=level,
                clusters=clusters,
                databases_created=created,
                active_databases=active,
                reserved_cores=cores,
                disk_gb=disk,
                creation_redirects=redirects,
                failover_count=failovers,
                revenue_adjusted=adjusted,
            ))
        return rows

    def format_summary(self) -> str:
        result = self.run()
        kpis = result.kpis
        header = (f"fleet: {kpis.clusters} clusters, {kpis.nodes} nodes, "
                  f"{kpis.databases_created} databases "
                  f"({result.mode} sweep, digest {result.digest[:12]})")
        rows = [(row.density_pct, row.clusters, row.databases_created,
                 round(row.reserved_cores), round(row.disk_gb),
                 row.creation_redirects, row.failover_count,
                 round(row.revenue_adjusted))
                for row in self.density_rows()]
        table = format_table(
            ["density %", "clusters", "databases", "reserved cores",
             "disk GB", "redirects", "failovers", "adjusted $"],
            rows, title="Fleet density study — region KPIs per level")
        return header + "\n\n" + table

    def obs_export(self) -> ObsExport:
        """Region-wide observability artifacts for the merged run."""
        return fleet_obs_export(self.run())
