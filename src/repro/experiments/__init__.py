"""Experiment drivers: one module per paper figure/table family.

* :mod:`repro.experiments.scenarios` — the canonical paper scenario
  (14-node gen5 ring, Table 2 population, trained models);
* :mod:`repro.experiments.density` — the §5 density study
  (Figures 2, 10, 11, 12, 14; Tables 2, 3);
* :mod:`repro.experiments.nondeterminism` — the §5.3.4 repeatability
  study (Figure 13);
* :mod:`repro.experiments.demographics` — the §2 telemetry views
  (Figures 3a, 3b, 6);
* :mod:`repro.experiments.model_validation` — the §4 validation
  (Figures 7, 8, 9) and the model-selection ablation;
* :mod:`repro.experiments.sensitivity` — configuration-change sweeps
  (the paper's use case (a));
* :mod:`repro.experiments.fleet` — the region-scale fleet density
  study (ROADMAP item 1, docs/FLEET.md);
* :mod:`repro.experiments.export` — JSON archival of runs/studies;
* :mod:`repro.experiments.report` — plain-text table rendering shared
  by the benchmarks.
"""

from repro.experiments.density import DensityStudy
from repro.experiments.scenarios import paper_scenario, trained_artifacts
from repro.experiments.sensitivity import ConfigSweep, Variant

__all__ = ["ConfigSweep", "DensityStudy", "FleetDensityStudy", "Variant",
           "paper_scenario", "trained_artifacts"]


def __getattr__(name: str):
    # Lazy: repro.fleet.topology itself imports
    # repro.experiments.scenarios, so an eager import here would be
    # circular (fleet -> experiments -> fleet).
    if name == "FleetDensityStudy":
        from repro.experiments.fleet import FleetDensityStudy
        return FleetDensityStudy
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
