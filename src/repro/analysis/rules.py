"""The repo-specific lint rules (TL001..TL014).

Each rule encodes one clause of the determinism/correctness contract
described in ``docs/STATIC_ANALYSIS.md``.  Most rules are small AST
visitors: they receive a parsed
:class:`~repro.analysis.engine.ModuleContext` and yield
:class:`~repro.analysis.engine.Violation` records; the engine handles
suppression, ordering and reporting.  The RNG substream rules
(TL010..TL012) are *program-wide*: they set ``program_wide`` and
implement :meth:`Rule.check_program` against the
:class:`~repro.analysis.registry.SubstreamRegistry` the engine builds
when linting a whole tree.

Adding a rule: subclass :class:`Rule`, set ``code``/``title``/
``rationale`` (and ``scopes`` if package-limited), implement
:meth:`Rule.check` (or :meth:`Rule.check_program`), and decorate with
:func:`register`.
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.analysis.engine import LintEngineError, ModuleContext, Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.registry import SubstreamRegistry


class Rule:
    """Base class for one lint rule."""

    #: Stable identifier, e.g. ``"TL001"``; used in reports and
    #: ``# totolint: disable=`` comments.
    code: str = "TL000"
    #: One-line summary shown by ``repro-toto lint --list-rules``.
    title: str = ""
    #: Why the rule exists (rendered into docs/STATIC_ANALYSIS.md).
    rationale: str = ""
    #: Dotted module prefixes the rule is limited to; empty = everywhere.
    scopes: Tuple[str, ...] = ()
    #: Program-wide rules run once per lint over the substream registry
    #: (:meth:`check_program`) instead of once per module.
    program_wide: bool = False
    #: SARIF severity: ``"error"`` for contract rules, ``"warning"``
    #: for advisory ones (TL024) that ratchet via the baseline.
    level: str = "error"

    def applies_to(self, context: ModuleContext) -> bool:
        return not self.scopes or context.in_package(*self.scopes)

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def check_program(self, registry: "SubstreamRegistry"
                      ) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, context: ModuleContext, node: ast.AST,
                  message: str) -> Violation:
        return context.violation(self.code, node, message)


class HotPathRule(Rule):
    """A rule whose scope is the *inferred* hot set when available.

    With a program graph in play the hand-maintained ``scopes`` package
    list is ignored: the rule applies to every module the graph covers,
    but only flags nodes inside functions reachable from simkernel
    event handlers or chaos gates.  Single-module runs (``lint_source``)
    fall back to the package scopes.
    """

    def applies_to(self, context: ModuleContext) -> bool:
        if context.program is not None:
            return True
        return super().applies_to(context)

    def in_scope(self, context: ModuleContext, node: ast.AST) -> bool:
        if context.program is None:
            return True
        return context.program.is_hot(context.path,
                                      getattr(node, "lineno", 1))


_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    rule = rule_class()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_class


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, ordered by code."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rules(codes: Optional[Iterable[str]] = None) -> Tuple[Rule, ...]:
    """Resolve a rule-code selection (``None`` = every rule)."""
    if codes is None:
        return all_rules()
    selected = []
    for code in codes:
        normalized = code.strip().upper()
        if normalized not in _REGISTRY:
            raise LintEngineError(
                f"unknown rule {code!r}; known: {', '.join(sorted(_REGISTRY))}")
        selected.append(_REGISTRY[normalized])
    return tuple(sorted(selected, key=lambda rule: rule.code))


# ---------------------------------------------------------------------------
# shared AST helpers


def _dotted(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (None if dynamic)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _public_functions(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Module-level defs plus methods of public classes.

    Functions nested inside other functions and everything under a
    ``_Private`` class are implementation detail and not yielded.
    """
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif (isinstance(node, ast.ClassDef)
              and not node.name.startswith("_")):
            yield from _public_functions(node.body)


# ---------------------------------------------------------------------------
# TL001 — wall-clock time


@register
class NoWallClock(Rule):
    code = "TL001"
    title = "no wall-clock time on simulation code paths"
    rationale = (
        "Simulated runs must depend only on the event clock; any "
        "`time.time()`/`datetime.now()` read makes results vary run to "
        "run and breaks serial/parallel byte-equality. Real timing "
        "belongs in `benchmarks/`, which is outside the linted tree.")

    #: (module-ish, attr) pairs: matches the last two components, so
    #: both ``time.monotonic()`` and ``datetime.datetime.now()`` hit.
    _BANNED_PAIRS = frozenset({
        ("time", "time"), ("time", "time_ns"),
        ("time", "monotonic"), ("time", "monotonic_ns"),
        ("time", "perf_counter"), ("time", "perf_counter_ns"),
        ("time", "process_time"), ("time", "process_time_ns"),
        ("datetime", "now"), ("datetime", "utcnow"),
        ("datetime", "today"), ("date", "today"),
    })
    #: Distinctive bare names (``from time import perf_counter``).
    _BANNED_NAMES = frozenset({
        "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
        "process_time", "process_time_ns", "time_ns", "utcnow",
    })

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is not None:
                parts = dotted.split(".")
                if (len(parts) >= 2
                        and (parts[-2], parts[-1]) in self._BANNED_PAIRS):
                    yield self.violation(
                        context, node,
                        f"wall-clock call `{dotted}()`: simulation code must "
                        "use the kernel clock (repro.simkernel.clock)")
                elif len(parts) == 1 and parts[0] in self._BANNED_NAMES:
                    yield self.violation(
                        context, node,
                        f"wall-clock call `{dotted}()`: simulation code must "
                        "use the kernel clock (repro.simkernel.clock)")


# ---------------------------------------------------------------------------
# TL002 — global RNG state


@register
class NoGlobalRng(Rule):
    code = "TL002"
    title = "no global random-number state"
    rationale = (
        "All randomness must thread through repro.rng streams (or an "
        "explicitly seeded Generator); module-level `random.*` / "
        "`np.random.*` draws share hidden state across components, so "
        "reordering any call perturbs every later one.")

    #: Constructors that create *local*, explicitly-seeded state.
    _ALLOWED = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "Random",
    })
    _MODULES = frozenset({"random", "np.random", "numpy.random"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            base = _dotted(node.func.value)
            if (base in self._MODULES
                    and node.func.attr not in self._ALLOWED):
                yield self.violation(
                    context, node,
                    f"global RNG call `{base}.{node.func.attr}()`: draw from "
                    "a repro.rng.RngRegistry stream instead")


# ---------------------------------------------------------------------------
# TL003 — unordered iteration on hot paths


@register
class NoUnorderedIteration(HotPathRule):
    code = "TL003"
    title = "no set iteration on simulation hot paths"
    rationale = (
        "Set iteration order depends on insertion history and element "
        "hashes (PYTHONHASHSEED for strings, id() for objects), so any "
        "loop over a set that schedules events or mutates state makes "
        "runs diverge. Sort first (`sorted(...)`) or keep an "
        "insertion-ordered dict/list. Sets remain fine for membership "
        "tests. dict/dict.values() iteration is allowed: insertion "
        "order is deterministic. Scope: the inferred hot set when the "
        "whole-program analyzer runs, the package list otherwise.")
    scopes = ("repro.simkernel", "repro.fabric", "repro.sqldb")

    _SET_METHODS = frozenset({"union", "intersection", "difference",
                              "symmetric_difference"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                reason = self._set_valued(candidate)
                if reason and self.in_scope(context, candidate):
                    yield self.violation(
                        context, candidate,
                        f"iteration over {reason} has nondeterministic "
                        "order on a hot path; wrap in sorted(...) or use "
                        "an insertion-ordered structure")

    def _set_valued(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")):
                return f"`{node.func.id}(...)`"
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._SET_METHODS):
                return f"a `.{node.func.attr}()` result"
        return None


# ---------------------------------------------------------------------------
# TL004 — identity as ordering key


@register
class NoIdentityKeys(HotPathRule):
    code = "TL004"
    title = "no id()/hash() values in program logic"
    rationale = (
        "`id()` is an interpreter address and `hash()` of strings is "
        "salted per process (PYTHONHASHSEED), so either one used as a "
        "sort key, dict key, or seed silently differs between the "
        "serial loop and pool workers. Use stable identifiers (database "
        "ids, node ids, sequence numbers) or repro.rng's FNV hashing. "
        "Scope: the inferred hot set when the whole-program analyzer "
        "runs, every module otherwise.")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("id", "hash")
                    and self.in_scope(context, node)):
                yield self.violation(
                    context, node,
                    f"`{node.func.id}()` is process-specific: results "
                    "differ between serial runs and pool workers; use a "
                    "stable key instead")


# ---------------------------------------------------------------------------
# TL005 — mutable default arguments


@register
class NoMutableDefaults(Rule):
    code = "TL005"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default is created once at import time and shared by "
        "every call — state leaks across scenario runs, which is both a "
        "correctness bug and a determinism hazard (results depend on "
        "call history). Default to None and construct inside the body.")

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray",
                                "defaultdict", "deque", "Counter",
                                "OrderedDict"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults
                if default is not None]
            for default in defaults:
                reason = self._mutable(default)
                if reason:
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        context, default,
                        f"mutable default {reason} in `{name}()` is shared "
                        "across calls; default to None and build inside")

    def _mutable(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.List):
            return "`[]`"
        if isinstance(node, ast.Dict):
            return "`{}`"
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return "comprehension"
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._MUTABLE_CALLS):
            return f"`{node.func.id}(...)`"
        return None


# ---------------------------------------------------------------------------
# TL006 — broad exception swallowing


@register
class NoBroadExcept(Rule):
    code = "TL006"
    title = "no bare/broad exception swallowing"
    rationale = (
        "`except Exception:` hides real faults — a typo in a callback "
        "becomes a silently skipped event and the run keeps going with "
        "wrong state. Catch the narrow repro.errors type you expect, or "
        "re-raise after adding context (a handler containing `raise` "
        "passes).")

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if any(isinstance(inner, ast.Raise)
                   for stmt in node.body
                   for inner in ast.walk(stmt)):
                continue
            label = "bare `except:`" if broad == "" else f"`except {broad}:`"
            yield self.violation(
                context, node,
                f"{label} swallows unexpected faults; catch a narrow "
                "exception type (see repro.errors) or re-raise")

    def _broad_name(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return ""
        names = node.elts if isinstance(node, ast.Tuple) else [node]
        for name in names:
            dotted = _dotted(name)
            if dotted is not None and dotted.split(".")[-1] in self._BROAD:
                return dotted
        return None


# ---------------------------------------------------------------------------
# TL007 — __slots__ on simkernel classes


@register
class KernelClassesNeedSlots(Rule):
    code = "TL007"
    title = "simkernel classes must declare __slots__"
    rationale = (
        "Every event of a multi-day benchmark allocates kernel objects; "
        "per-instance dicts dominated the scheduling cost before the "
        "PR-1 optimization pass. __slots__ also forbids ad-hoc "
        "attribute injection, which keeps worker-process state "
        "identical to serial state.")
    scopes = ("repro.simkernel",)

    _EXEMPT_BASES = frozenset({"Protocol", "NamedTuple", "TypedDict",
                               "Enum", "IntEnum", "StrEnum"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if self._exempt(node) or self._declares_slots(node):
                continue
            yield self.violation(
                context, node,
                f"class `{node.name}` in simkernel has no __slots__; "
                "kernel objects are allocated per event and must stay "
                "dict-free")

    def _exempt(self, node: ast.ClassDef) -> bool:
        for base in node.bases:
            dotted = _dotted(base) or ""
            leaf = dotted.split(".")[-1]
            if (leaf in self._EXEMPT_BASES or leaf.endswith("Error")
                    or leaf.endswith("Exception")):
                return True
        for decorator in node.decorator_list:
            # @dataclass(slots=True) generates __slots__ itself.
            if (isinstance(decorator, ast.Call)
                    and (_dotted(decorator.func) or "").endswith("dataclass")
                    and any(kw.arg == "slots"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                            for kw in decorator.keywords)):
                return True
        return False

    def _declares_slots(self, node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            if any(isinstance(target, ast.Name)
                   and target.id == "__slots__" for target in targets):
                return True
        return False


# ---------------------------------------------------------------------------
# TL008 — full annotations on public API


@register
class PublicApiFullyTyped(Rule):
    code = "TL008"
    title = "public core/simkernel/parallel functions fully annotated"
    rationale = (
        "The strict-mypy zone can only catch seed/state type confusion "
        "if public signatures are complete: every parameter and the "
        "return type. Private helpers (leading underscore) and nested "
        "closures are exempt.")
    scopes = ("repro.core", "repro.simkernel", "repro.parallel")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for function in _public_functions(context.tree.body):
            name = function.name
            if name.startswith("_") and name != "__init__":
                continue
            missing = self._missing(function)
            if missing:
                yield self.violation(
                    context, function,
                    f"public `{name}()` is missing annotations for: "
                    f"{', '.join(missing)}")

    def _missing(self, node: ast.AST) -> Tuple[str, ...]:
        args = node.args
        missing = []
        positional = list(args.posonlyargs) + list(args.args)
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in (args.vararg, args.kwarg):
            if arg is not None and arg.annotation is None:
                missing.append("*" + arg.arg)
        if node.returns is None:
            missing.append("return")
        return tuple(missing)


# ---------------------------------------------------------------------------
# TL009 — no real sleeping or unbounded retries in the chaos package


@register
class ChaosNeverSleeps(Rule):
    code = "TL009"
    title = "chaos code must not sleep or retry unboundedly"
    rationale = (
        "Fault injection models retries by walking backoff schedules in "
        "*virtual* time: a real `time.sleep()` would stall the kernel "
        "and desynchronize runs, and a `while True:` retry loop has no "
        "budget, so an injected outage could hang the simulation "
        "forever. Retry loops must be bounded `for` loops over a "
        "BackoffPolicy's max_retries.")
    scopes = ("repro.chaos",)

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is not None and dotted.split(".")[-1] == "sleep":
                    yield self.violation(
                        context, node,
                        f"`{dotted}()` sleeps in real time; chaos code must "
                        "wait in virtual time via the kernel or "
                        "probe_through_backoff")
            elif isinstance(node, ast.While) and self._unbounded(node):
                yield self.violation(
                    context, node,
                    "unbounded `while` loop in chaos code; bound retries "
                    "with `for attempt in range(policy.max_retries)`")

    def _unbounded(self, node: ast.While) -> bool:
        """A constant-truthy test with no `break` can never terminate."""
        test = node.test
        constant_true = (isinstance(test, ast.Constant) and bool(test.value))
        if not constant_true:
            return False
        return not any(isinstance(inner, ast.Break)
                       for stmt in node.body for inner in ast.walk(stmt))


# ---------------------------------------------------------------------------
# TL010 — substream collisions (whole-program)


@register
class NoSubstreamCollision(Rule):
    code = "TL010"
    title = "no two call paths may draw the same RNG substream"
    rationale = (
        "RngRegistry memoizes generators by name, so two distinct call "
        "paths drawing the same `(namespace, name)` substream interleave "
        "their draws through one shared generator — adding a draw in "
        "either path silently shifts every later draw of the other (the "
        "PR-3 failover-downtime bug). Every substream must have exactly "
        "one owning call path; derive a sibling name instead of sharing.")
    program_wide = True

    def check_program(self, registry: "SubstreamRegistry"
                      ) -> Iterator[Violation]:
        for key, sites in registry.collisions():
            anchor = sites[-1]
            paths = "; ".join(site.where() for site in sites)
            yield Violation(
                path=anchor.path, line=anchor.line, col=anchor.col,
                rule=self.code,
                message=f"substream `{key}` is drawn from "
                        f"{len(sites)} distinct call paths: {paths}; "
                        "each substream must have one owner")


# ---------------------------------------------------------------------------
# TL011 — root-stream draws outside repro.rng (whole-program)


@register
class NoRootStreamDraws(Rule):
    code = "TL011"
    title = "no root-stream draws or root_seed reuse outside repro.rng"
    rationale = (
        "A zero-token `stream()`/`derive_seed()` call or a raw "
        "`root_seed` read bypasses the named-substream scheme: it "
        "aliases the registry root, so any component using it contends "
        "with every other. Name the substream; only repro.rng itself "
        "may touch the root entropy.")
    program_wide = True

    def check_program(self, registry: "SubstreamRegistry"
                      ) -> Iterator[Violation]:
        for site in registry.root_draws():
            yield Violation(
                path=site.path, line=site.line, col=site.col,
                rule=self.code,
                message=f"`{site.method}()` with no name tokens draws the "
                        "registry root stream; name the substream")
        for path, module, line in registry.root_seed_reads():
            yield Violation(
                path=path, line=line, col=0, rule=self.code,
                message=f"`root_seed` read in {module}: root entropy is "
                        "owned by repro.rng; derive a named seed with "
                        "`derive_seed(...)` instead")


# ---------------------------------------------------------------------------
# TL012 — unauditable (non-literal) draw names (whole-program)


@register
class DrawNamesMustBeAuditable(Rule):
    code = "TL012"
    title = "RNG draw names must be literal or declared via substream="
    rationale = (
        "The substream registry — and the DetSan runtime cross-check — "
        "can only audit draws whose names are statically known. A draw "
        "built from variables is invisible to both unless the site "
        "declares its name pattern with `# totolint: "
        "substream=<pattern>` (fnmatch over the `/`-joined tokens, e.g. "
        "`rgmanager/*/*`).")
    program_wide = True

    def check_program(self, registry: "SubstreamRegistry"
                      ) -> Iterator[Violation]:
        for site in registry.unauditable():
            dynamic = sum(1 for token in site.tokens if token is None)
            yield Violation(
                path=site.path, line=site.line, col=site.col,
                rule=self.code,
                message=f"`{site.method}()` has {dynamic} non-literal name "
                        "token(s) and no `# totolint: substream=` "
                        "annotation; the draw is unauditable")


# ---------------------------------------------------------------------------
# TL013 — unused suppressions (audit; implemented in the engine)


@register
class NoStaleSuppressions(Rule):
    code = "TL013"
    title = "every totolint suppression must still suppress something"
    rationale = (
        "A `# totolint: disable=` comment that no longer matches a "
        "violation is a standing invitation to reintroduce the bug it "
        "once hid: the suppression outlives the code it excused. The "
        "engine tracks which suppressions fired during the run and "
        "flags the rest. (The audit needs every rule's results, so "
        "selecting TL013 runs the full catalogue.)")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        # The audit lives in the engine (_audit_suppressions): it can
        # only run after every other rule has reported.
        return iter(())


# ---------------------------------------------------------------------------
# TL014 — observability code is passive: no RNG, no clocks


@register
class ObservabilityIsPassive(Rule):
    code = "TL014"
    title = "repro.obs must not draw RNG or read clocks"
    rationale = (
        "The observability layer promises that an observed run is "
        "byte-identical to an unobserved one (docs/OBSERVABILITY.md): "
        "tracing, metrics, and profiling watch the simulation without "
        "participating in it. A single RNG draw inside `repro.obs` "
        "would shift every downstream substream; a wall-clock read "
        "would leak nondeterministic bytes into exports that must diff "
        "clean across machines and pool layouts. So the package may "
        "not import RNG or clock modules at all — profiling wall time "
        "is injected from outside as an opaque callable.")
    scopes = ("repro.obs",)

    #: Modules whose very import is banned inside the package.
    _BANNED_MODULES = ("random", "numpy.random", "repro.rng", "time",
                       "datetime")
    #: Method names that draw from an RNG stream or derive one.
    _DRAW_METHODS = frozenset({
        "stream", "derive_seed", "fork", "spawn", "integers", "normal",
        "choice", "shuffle", "permutation", "uniform", "exponential",
        "poisson", "standard_normal",
    })

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._banned(alias.name):
                        yield self.violation(
                            context, node,
                            f"`import {alias.name}` in repro.obs; "
                            "observability code may not read clocks or "
                            "draw RNG — inject capabilities from outside")
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level == 0 and self._banned(module):
                    yield self.violation(
                        context, node,
                        f"`from {module} import ...` in repro.obs; "
                        "observability code may not read clocks or draw "
                        "RNG — inject capabilities from outside")
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr in self._DRAW_METHODS:
                    yield self.violation(
                        context, node,
                        f"`.{node.func.attr}()` looks like an RNG draw or "
                        "substream derivation; repro.obs is a pure "
                        "observer and must not consume randomness")

    def _banned(self, module: str) -> bool:
        return any(module == banned or module.startswith(banned + ".")
                   for banned in self._BANNED_MODULES)


# ---------------------------------------------------------------------------
# TL020..TL024 — the performance tier ("totoperf") and TL030..TL034 —
# the numeric-determinism tier ("totonum"), defined in their own
# modules.  Imported last: both subclass Rule/register above, which
# are already bound by the time these imports execute.

from repro.analysis import perf_rules as _perf_rules  # noqa: E402,F401
from repro.analysis import numeric_rules as _numeric_rules  # noqa: E402,F401
