"""The repo-specific lint rules (TL001..TL009).

Each rule encodes one clause of the determinism/correctness contract
described in ``docs/STATIC_ANALYSIS.md``.  Rules are small AST visitors:
they receive a parsed :class:`~repro.analysis.engine.ModuleContext` and
yield :class:`~repro.analysis.engine.Violation` records; the engine
handles suppression, ordering and reporting.

Adding a rule: subclass :class:`Rule`, set ``code``/``title``/
``rationale`` (and ``scopes`` if package-limited), implement
:meth:`Rule.check`, and decorate with :func:`register`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Type

from repro.analysis.engine import LintEngineError, ModuleContext, Violation


class Rule:
    """Base class for one lint rule."""

    #: Stable identifier, e.g. ``"TL001"``; used in reports and
    #: ``# totolint: disable=`` comments.
    code: str = "TL000"
    #: One-line summary shown by ``repro-toto lint --list-rules``.
    title: str = ""
    #: Why the rule exists (rendered into docs/STATIC_ANALYSIS.md).
    rationale: str = ""
    #: Dotted module prefixes the rule is limited to; empty = everywhere.
    scopes: Tuple[str, ...] = ()

    def applies_to(self, context: ModuleContext) -> bool:
        return not self.scopes or context.in_package(*self.scopes)

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, context: ModuleContext, node: ast.AST,
                  message: str) -> Violation:
        return context.violation(self.code, node, message)


_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    rule = rule_class()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_class


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, ordered by code."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rules(codes: Optional[Iterable[str]] = None) -> Tuple[Rule, ...]:
    """Resolve a rule-code selection (``None`` = every rule)."""
    if codes is None:
        return all_rules()
    selected = []
    for code in codes:
        normalized = code.strip().upper()
        if normalized not in _REGISTRY:
            raise LintEngineError(
                f"unknown rule {code!r}; known: {', '.join(sorted(_REGISTRY))}")
        selected.append(_REGISTRY[normalized])
    return tuple(sorted(selected, key=lambda rule: rule.code))


# ---------------------------------------------------------------------------
# shared AST helpers


def _dotted(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (None if dynamic)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _public_functions(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Module-level defs plus methods of public classes.

    Functions nested inside other functions and everything under a
    ``_Private`` class are implementation detail and not yielded.
    """
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif (isinstance(node, ast.ClassDef)
              and not node.name.startswith("_")):
            yield from _public_functions(node.body)


# ---------------------------------------------------------------------------
# TL001 — wall-clock time


@register
class NoWallClock(Rule):
    code = "TL001"
    title = "no wall-clock time on simulation code paths"
    rationale = (
        "Simulated runs must depend only on the event clock; any "
        "`time.time()`/`datetime.now()` read makes results vary run to "
        "run and breaks serial/parallel byte-equality. Real timing "
        "belongs in `benchmarks/`, which is outside the linted tree.")

    #: (module-ish, attr) pairs: matches the last two components, so
    #: both ``time.monotonic()`` and ``datetime.datetime.now()`` hit.
    _BANNED_PAIRS = frozenset({
        ("time", "time"), ("time", "time_ns"),
        ("time", "monotonic"), ("time", "monotonic_ns"),
        ("time", "perf_counter"), ("time", "perf_counter_ns"),
        ("time", "process_time"), ("time", "process_time_ns"),
        ("datetime", "now"), ("datetime", "utcnow"),
        ("datetime", "today"), ("date", "today"),
    })
    #: Distinctive bare names (``from time import perf_counter``).
    _BANNED_NAMES = frozenset({
        "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
        "process_time", "process_time_ns", "time_ns", "utcnow",
    })

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is not None:
                parts = dotted.split(".")
                if (len(parts) >= 2
                        and (parts[-2], parts[-1]) in self._BANNED_PAIRS):
                    yield self.violation(
                        context, node,
                        f"wall-clock call `{dotted}()`: simulation code must "
                        "use the kernel clock (repro.simkernel.clock)")
                elif len(parts) == 1 and parts[0] in self._BANNED_NAMES:
                    yield self.violation(
                        context, node,
                        f"wall-clock call `{dotted}()`: simulation code must "
                        "use the kernel clock (repro.simkernel.clock)")


# ---------------------------------------------------------------------------
# TL002 — global RNG state


@register
class NoGlobalRng(Rule):
    code = "TL002"
    title = "no global random-number state"
    rationale = (
        "All randomness must thread through repro.rng streams (or an "
        "explicitly seeded Generator); module-level `random.*` / "
        "`np.random.*` draws share hidden state across components, so "
        "reordering any call perturbs every later one.")

    #: Constructors that create *local*, explicitly-seeded state.
    _ALLOWED = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "Random",
    })
    _MODULES = frozenset({"random", "np.random", "numpy.random"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            base = _dotted(node.func.value)
            if (base in self._MODULES
                    and node.func.attr not in self._ALLOWED):
                yield self.violation(
                    context, node,
                    f"global RNG call `{base}.{node.func.attr}()`: draw from "
                    "a repro.rng.RngRegistry stream instead")


# ---------------------------------------------------------------------------
# TL003 — unordered iteration on hot paths


@register
class NoUnorderedIteration(Rule):
    code = "TL003"
    title = "no set iteration on simulation hot paths"
    rationale = (
        "Set iteration order depends on insertion history and element "
        "hashes (PYTHONHASHSEED for strings, id() for objects), so any "
        "loop over a set that schedules events or mutates state makes "
        "runs diverge. Sort first (`sorted(...)`) or keep an "
        "insertion-ordered dict/list. Sets remain fine for membership "
        "tests. dict/dict.values() iteration is allowed: insertion "
        "order is deterministic.")
    scopes = ("repro.simkernel", "repro.fabric", "repro.sqldb")

    _SET_METHODS = frozenset({"union", "intersection", "difference",
                              "symmetric_difference"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                reason = self._set_valued(candidate)
                if reason:
                    yield self.violation(
                        context, candidate,
                        f"iteration over {reason} has nondeterministic "
                        "order on a hot path; wrap in sorted(...) or use "
                        "an insertion-ordered structure")

    def _set_valued(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")):
                return f"`{node.func.id}(...)`"
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._SET_METHODS):
                return f"a `.{node.func.attr}()` result"
        return None


# ---------------------------------------------------------------------------
# TL004 — identity as ordering key


@register
class NoIdentityKeys(Rule):
    code = "TL004"
    title = "no id()/hash() values in program logic"
    rationale = (
        "`id()` is an interpreter address and `hash()` of strings is "
        "salted per process (PYTHONHASHSEED), so either one used as a "
        "sort key, dict key, or seed silently differs between the "
        "serial loop and pool workers. Use stable identifiers (database "
        "ids, node ids, sequence numbers) or repro.rng's FNV hashing.")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("id", "hash")):
                yield self.violation(
                    context, node,
                    f"`{node.func.id}()` is process-specific: results "
                    "differ between serial runs and pool workers; use a "
                    "stable key instead")


# ---------------------------------------------------------------------------
# TL005 — mutable default arguments


@register
class NoMutableDefaults(Rule):
    code = "TL005"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default is created once at import time and shared by "
        "every call — state leaks across scenario runs, which is both a "
        "correctness bug and a determinism hazard (results depend on "
        "call history). Default to None and construct inside the body.")

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray",
                                "defaultdict", "deque", "Counter",
                                "OrderedDict"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults
                if default is not None]
            for default in defaults:
                reason = self._mutable(default)
                if reason:
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        context, default,
                        f"mutable default {reason} in `{name}()` is shared "
                        "across calls; default to None and build inside")

    def _mutable(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.List):
            return "`[]`"
        if isinstance(node, ast.Dict):
            return "`{}`"
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return "comprehension"
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._MUTABLE_CALLS):
            return f"`{node.func.id}(...)`"
        return None


# ---------------------------------------------------------------------------
# TL006 — broad exception swallowing


@register
class NoBroadExcept(Rule):
    code = "TL006"
    title = "no bare/broad exception swallowing"
    rationale = (
        "`except Exception:` hides real faults — a typo in a callback "
        "becomes a silently skipped event and the run keeps going with "
        "wrong state. Catch the narrow repro.errors type you expect, or "
        "re-raise after adding context (a handler containing `raise` "
        "passes).")

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if any(isinstance(inner, ast.Raise)
                   for stmt in node.body
                   for inner in ast.walk(stmt)):
                continue
            label = "bare `except:`" if broad == "" else f"`except {broad}:`"
            yield self.violation(
                context, node,
                f"{label} swallows unexpected faults; catch a narrow "
                "exception type (see repro.errors) or re-raise")

    def _broad_name(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return ""
        names = node.elts if isinstance(node, ast.Tuple) else [node]
        for name in names:
            dotted = _dotted(name)
            if dotted is not None and dotted.split(".")[-1] in self._BROAD:
                return dotted
        return None


# ---------------------------------------------------------------------------
# TL007 — __slots__ on simkernel classes


@register
class KernelClassesNeedSlots(Rule):
    code = "TL007"
    title = "simkernel classes must declare __slots__"
    rationale = (
        "Every event of a multi-day benchmark allocates kernel objects; "
        "per-instance dicts dominated the scheduling cost before the "
        "PR-1 optimization pass. __slots__ also forbids ad-hoc "
        "attribute injection, which keeps worker-process state "
        "identical to serial state.")
    scopes = ("repro.simkernel",)

    _EXEMPT_BASES = frozenset({"Protocol", "NamedTuple", "TypedDict",
                               "Enum", "IntEnum", "StrEnum"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if self._exempt(node) or self._declares_slots(node):
                continue
            yield self.violation(
                context, node,
                f"class `{node.name}` in simkernel has no __slots__; "
                "kernel objects are allocated per event and must stay "
                "dict-free")

    def _exempt(self, node: ast.ClassDef) -> bool:
        for base in node.bases:
            dotted = _dotted(base) or ""
            leaf = dotted.split(".")[-1]
            if (leaf in self._EXEMPT_BASES or leaf.endswith("Error")
                    or leaf.endswith("Exception")):
                return True
        for decorator in node.decorator_list:
            # @dataclass(slots=True) generates __slots__ itself.
            if (isinstance(decorator, ast.Call)
                    and (_dotted(decorator.func) or "").endswith("dataclass")
                    and any(kw.arg == "slots"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                            for kw in decorator.keywords)):
                return True
        return False

    def _declares_slots(self, node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            if any(isinstance(target, ast.Name)
                   and target.id == "__slots__" for target in targets):
                return True
        return False


# ---------------------------------------------------------------------------
# TL008 — full annotations on public API


@register
class PublicApiFullyTyped(Rule):
    code = "TL008"
    title = "public core/simkernel/parallel functions fully annotated"
    rationale = (
        "The strict-mypy zone can only catch seed/state type confusion "
        "if public signatures are complete: every parameter and the "
        "return type. Private helpers (leading underscore) and nested "
        "closures are exempt.")
    scopes = ("repro.core", "repro.simkernel", "repro.parallel")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for function in _public_functions(context.tree.body):
            name = function.name
            if name.startswith("_") and name != "__init__":
                continue
            missing = self._missing(function)
            if missing:
                yield self.violation(
                    context, function,
                    f"public `{name}()` is missing annotations for: "
                    f"{', '.join(missing)}")

    def _missing(self, node: ast.AST) -> Tuple[str, ...]:
        args = node.args
        missing = []
        positional = list(args.posonlyargs) + list(args.args)
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in (args.vararg, args.kwarg):
            if arg is not None and arg.annotation is None:
                missing.append("*" + arg.arg)
        if node.returns is None:
            missing.append("return")
        return tuple(missing)


# ---------------------------------------------------------------------------
# TL009 — no real sleeping or unbounded retries in the chaos package


@register
class ChaosNeverSleeps(Rule):
    code = "TL009"
    title = "chaos code must not sleep or retry unboundedly"
    rationale = (
        "Fault injection models retries by walking backoff schedules in "
        "*virtual* time: a real `time.sleep()` would stall the kernel "
        "and desynchronize runs, and a `while True:` retry loop has no "
        "budget, so an injected outage could hang the simulation "
        "forever. Retry loops must be bounded `for` loops over a "
        "BackoffPolicy's max_retries.")
    scopes = ("repro.chaos",)

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is not None and dotted.split(".")[-1] == "sleep":
                    yield self.violation(
                        context, node,
                        f"`{dotted}()` sleeps in real time; chaos code must "
                        "wait in virtual time via the kernel or "
                        "probe_through_backoff")
            elif isinstance(node, ast.While) and self._unbounded(node):
                yield self.violation(
                    context, node,
                    "unbounded `while` loop in chaos code; bound retries "
                    "with `for attempt in range(policy.max_retries)`")

    def _unbounded(self, node: ast.While) -> bool:
        """A constant-truthy test with no `break` can never terminate."""
        test = node.test
        constant_true = (isinstance(test, ast.Constant) and bool(test.value))
        if not constant_true:
            return False
        return not any(isinstance(inner, ast.Break)
                       for stmt in node.body for inner in ast.walk(stmt))
