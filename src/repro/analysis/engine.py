"""AST lint engine: file discovery, suppression handling, rule driving.

The engine is deliberately boring: parse each module once, hand the
:class:`ModuleContext` to every applicable rule, collect
:class:`Violation` records, drop the suppressed ones, and sort the rest
so output is stable no matter the traversal order.  All repo-specific
knowledge lives in :mod:`repro.analysis.rules`.

Suppression syntax (checked per physical line of the flagged node)::

    value = lookup()        # totolint: disable=TL004
    other = lookup()        # totolint: disable=TL004,TL006
    noisy = lookup()        # totolint: disable=all

and per file, anywhere in the module (conventionally near the top)::

    # totolint: disable-file=TL007
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.rules import Rule

#: ``# totolint: disable=TL001,TL002`` / ``disable=all`` on one line.
_SUPPRESS_LINE = re.compile(
    r"#\s*totolint:\s*disable=([A-Za-z0-9_,\s]+)")
#: ``# totolint: disable-file=TL007`` anywhere in the module.
_SUPPRESS_FILE = re.compile(
    r"#\s*totolint:\s*disable-file=([A-Za-z0-9_,\s]+)")


class LintEngineError(Exception):
    """Internal engine failure (unreadable path, unparseable module).

    The CLI maps this (and any other unexpected exception) to exit
    code ``2`` so violations (exit ``1``) stay distinguishable from
    tooling breakage.
    """


@dataclass(frozen=True, order=True)
class Violation:
    """One rule infraction at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    __slots__ = ("path", "module", "source", "tree",
                 "_line_suppressions", "_file_suppressions")

    def __init__(self, path: str, module: str, source: str) -> None:
        self.path = path
        self.module = module
        self.source = source
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            raise LintEngineError(
                f"cannot parse {path}: {error}") from error
        self._line_suppressions: Dict[int, Set[str]] = {}
        self._file_suppressions: Set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "totolint" not in line:
                continue
            match = _SUPPRESS_LINE.search(line)
            if match:
                codes = {token.strip().upper()
                         for token in match.group(1).split(",")
                         if token.strip()}
                self._line_suppressions.setdefault(lineno, set()).update(codes)
            match = _SUPPRESS_FILE.search(line)
            if match:
                self._file_suppressions.update(
                    token.strip().upper()
                    for token in match.group(1).split(",") if token.strip())

    def in_package(self, *prefixes: str) -> bool:
        """True if the module lives under any of the dotted prefixes."""
        return any(self.module == prefix
                   or self.module.startswith(prefix + ".")
                   for prefix in prefixes)

    def suppressed(self, rule: str, line: int) -> bool:
        codes = self._line_suppressions.get(line, ())
        return (rule in codes or "ALL" in codes
                or rule in self._file_suppressions
                or "ALL" in self._file_suppressions)

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        return Violation(path=self.path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         rule=rule, message=message)


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run, with stable ordering."""

    violations: Tuple[Violation, ...]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        """``0`` clean, ``1`` violations (``2`` is raised, not returned)."""
        return 0 if self.clean else 1

    def counts(self) -> Dict[str, int]:
        """Violation count per rule code, sorted by code."""
        tally: Dict[str, int] = {}
        for violation in self.violations:
            tally[violation.rule] = tally.get(violation.rule, 0) + 1
        return dict(sorted(tally.items()))


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    Falls back to the stem for files outside a ``repro`` tree (fixtures,
    tests), which keeps package-scoped rules inert there unless the test
    passes an explicit virtual path.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.stem]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def iter_python_files(root: Path) -> List[Path]:
    """Every ``.py`` file under ``root``, sorted for stable output."""
    if root.is_file():
        return [root]
    return sorted(path for path in root.rglob("*.py")
                  if "__pycache__" not in path.parts)


def lint_source(source: str, path: str = "src/repro/example.py",
                rules: Optional[Sequence["Rule"]] = None) -> LintReport:
    """Lint an in-memory module as if it lived at ``path``.

    The virtual ``path`` decides which package-scoped rules apply, so
    tests can exercise e.g. the simkernel-only rules on fixtures.
    """
    context = ModuleContext(path=path,
                            module=module_name_for(Path(path)),
                            source=source)
    return LintReport(violations=_check_module(context, _resolve(rules)),
                      files_checked=1)


def lint_paths(paths: Sequence[Path],
               rules: Optional[Sequence["Rule"]] = None) -> LintReport:
    """Lint every Python file under each path (file or directory)."""
    active = _resolve(rules)
    violations: List[Violation] = []
    files_checked = 0
    for root in paths:
        root = Path(root)
        if not root.exists():
            raise LintEngineError(f"no such file or directory: {root}")
        for file_path in iter_python_files(root):
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError as error:
                raise LintEngineError(
                    f"cannot read {file_path}: {error}") from error
            context = ModuleContext(path=str(file_path),
                                    module=module_name_for(file_path),
                                    source=source)
            violations.extend(_check_module(context, active))
            files_checked += 1
    return LintReport(violations=tuple(sorted(violations)),
                      files_checked=files_checked)


def _resolve(rules: Optional[Sequence["Rule"]]) -> Sequence["Rule"]:
    if rules is not None:
        return rules
    from repro.analysis.rules import get_rules
    return get_rules()


def _check_module(context: ModuleContext,
                  rules: Sequence["Rule"]) -> Tuple[Violation, ...]:
    found: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(context):
            continue
        for violation in rule.check(context):
            if not context.suppressed(violation.rule, violation.line):
                found.append(violation)
    return tuple(sorted(found))
