"""AST lint engine: file discovery, suppression handling, rule driving.

The engine is deliberately boring: parse each module once, hand the
:class:`ModuleContext` to every applicable rule, collect
:class:`Violation` records, drop the suppressed ones, and sort the rest
so output is stable no matter the traversal order.  All repo-specific
knowledge lives in :mod:`repro.analysis.rules`.

Two whole-program passes ride on top of the per-module rules when a
:class:`~repro.analysis.graph.ProgramGraph` is in play (the default for
``lint_paths``): program-wide rules (the RNG substream registry checks
TL010..TL012) and the unused-suppression audit (TL013), which requires
knowing every violation before deciding a suppression did nothing.

Suppression syntax (checked per physical line of the flagged node)::

    value = lookup()        # totolint: disable=TL004
    other = lookup()        # totolint: disable=TL004,TL006
    noisy = lookup()        # totolint: disable=all

and per file, anywhere in the module (conventionally near the top)::

    # totolint: disable-file=TL007

Suppression comments are located with the tokenizer, so the syntax
shown inside a docstring (like the ones above) is not mistaken for a
live suppression.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.graph import ProgramGraph
    from repro.analysis.rules import Rule

#: One-line suppression: ``disable=TL001,TL002`` / ``disable=all``
#: after the marker (spelled out in the module docstring above — not
#: here, where the scanner would read it as live).
_SUPPRESS_LINE = re.compile(
    r"#\s*totolint:\s*disable=([A-Za-z0-9_,\s]+)")
#: Whole-file suppression: ``disable-file=TL007`` anywhere.
_SUPPRESS_FILE = re.compile(
    r"#\s*totolint:\s*disable-file=([A-Za-z0-9_,\s]+)")

#: The unused-suppression audit code (implemented here, not in rules).
AUDIT_RULE = "TL013"


class LintEngineError(Exception):
    """Internal engine failure (unreadable path, unparseable module).

    The CLI maps this (and any other unexpected exception) to exit
    code ``2`` so violations (exit ``1``) stay distinguishable from
    tooling breakage.
    """


def read_source(path: Path) -> str:
    """Read one target file; unreadable/undecodable input is exit-2.

    Both failure modes are mapped to :class:`LintEngineError` so the
    CLI reports a one-line diagnostic instead of a traceback: a file
    the tool cannot open (permissions, vanished mid-run) and bytes
    that are not UTF-8 (a committed binary, a latin-1 stray).
    """
    try:
        return Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise LintEngineError(f"cannot read {path}: {error}") from error
    except UnicodeDecodeError as error:
        raise LintEngineError(
            f"cannot decode {path} as UTF-8: {error}") from error


@dataclass(frozen=True, order=True)
class Violation:
    """One rule infraction at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    __slots__ = ("path", "module", "source", "tree", "program",
                 "_line_suppressions", "_file_suppressions",
                 "_used_line", "_used_file")

    def __init__(self, path: str, module: str, source: str) -> None:
        self.path = path
        self.module = module
        self.source = source
        #: Whole-program graph when linting a tree; None in
        #: single-module (``lint_source``) runs.
        self.program: Optional["ProgramGraph"] = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            raise LintEngineError(
                f"cannot parse {path}: {error}") from error
        self._line_suppressions: Dict[int, Set[str]] = {}
        self._file_suppressions: Dict[str, int] = {}
        self._used_line: Set[Tuple[int, str]] = set()
        self._used_file: Set[str] = set()
        for lineno, comment in self._comments(source, path):
            match = _SUPPRESS_LINE.search(comment)
            if match:
                codes = {token.strip().upper()
                         for token in match.group(1).split(",")
                         if token.strip()}
                self._line_suppressions.setdefault(lineno, set()).update(codes)
            match = _SUPPRESS_FILE.search(comment)
            if match:
                for token in match.group(1).split(","):
                    if token.strip():
                        self._file_suppressions.setdefault(
                            token.strip().upper(), lineno)

    @staticmethod
    def _comments(source: str, path: str) -> List[Tuple[int, str]]:
        """(line, text) of every real comment token in the module."""
        found = []
        try:
            for token in tokenize.generate_tokens(
                    io.StringIO(source).readline):
                if token.type == tokenize.COMMENT:
                    found.append((token.start[0], token.string))
        except tokenize.TokenError as error:
            raise LintEngineError(
                f"cannot tokenize {path}: {error}") from error
        return found

    def in_package(self, *prefixes: str) -> bool:
        """True if the module lives under any of the dotted prefixes."""
        return any(self.module == prefix
                   or self.module.startswith(prefix + ".")
                   for prefix in prefixes)

    def suppressed(self, rule: str, line: int) -> bool:
        codes = self._line_suppressions.get(line, ())
        if rule in codes:
            self._used_line.add((line, rule))
            return True
        if "ALL" in codes:
            self._used_line.add((line, "ALL"))
            return True
        if rule in self._file_suppressions:
            self._used_file.add(rule)
            return True
        if "ALL" in self._file_suppressions:
            self._used_file.add("ALL")
            return True
        return False

    def unused_suppressions(self) -> List[Tuple[int, str]]:
        """(line, code) of every suppression that suppressed nothing."""
        unused = []
        for line, codes in self._line_suppressions.items():
            for code in codes:
                if (line, code) not in self._used_line:
                    unused.append((line, code))
        for code, line in self._file_suppressions.items():
            if code not in self._used_file:
                unused.append((line, f"file:{code}"))
        return sorted(unused)

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        return Violation(path=self.path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         rule=rule, message=message)


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run, with stable ordering."""

    violations: Tuple[Violation, ...]
    files_checked: int
    #: Whole-program statistics (zero when the graph pass was skipped).
    cache_hits: int = 0
    cache_misses: int = 0
    registry_size: int = 0
    hot_functions: int = 0
    #: Baseline bookkeeping (filled in by the CLI's ratchet pass).
    baselined: int = 0
    stale_baseline: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        """``0`` clean, ``1`` violations (``2`` is raised, not returned)."""
        return 0 if self.clean else 1

    def counts(self) -> Dict[str, int]:
        """Violation count per rule code, sorted by code."""
        tally: Dict[str, int] = {}
        for violation in self.violations:
            tally[violation.rule] = tally.get(violation.rule, 0) + 1
        return dict(sorted(tally.items()))


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    Falls back to the stem for files outside a ``repro`` tree (fixtures,
    tests), which keeps package-scoped rules inert there unless the test
    passes an explicit virtual path.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.stem]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def iter_python_files(root: Path) -> List[Path]:
    """Every ``.py`` file under ``root``, sorted for stable output."""
    if root.is_file():
        return [root]
    return sorted(path for path in root.rglob("*.py")
                  if "__pycache__" not in path.parts)


def lint_source(source: str, path: str = "src/repro/example.py",
                rules: Optional[Sequence["Rule"]] = None) -> LintReport:
    """Lint an in-memory module as if it lived at ``path``.

    The virtual ``path`` decides which package-scoped rules apply, so
    tests can exercise e.g. the simkernel-only rules on fixtures.  No
    program graph is built: the whole-program rules stay silent and
    TL003/TL004 fall back to their package-scope behaviour.
    """
    context = ModuleContext(path=path,
                            module=module_name_for(Path(path)),
                            source=source)
    active = _resolve(rules)
    per_module, _ = _split_rules(_checking_rules(active))
    violations = list(_check_module(context, per_module))
    violations.extend(_audit_suppressions(context, active))
    active_codes = {rule.code for rule in active}
    return LintReport(
        violations=tuple(sorted(v for v in violations
                                if v.rule in active_codes)),
        files_checked=1)


def lint_paths(paths: Sequence[Path],
               rules: Optional[Sequence["Rule"]] = None,
               build_program: bool = True,
               cache_path: Optional[Path] = None) -> LintReport:
    """Lint every Python file under each path (file or directory).

    With ``build_program`` (the default) a
    :class:`~repro.analysis.graph.ProgramGraph` over the same file set
    feeds the whole-program rules (TL010..TL012), scopes TL003/TL004 to
    the inferred hot set, and enables the TL013 suppression audit.
    ``cache_path`` points at the content-hash extract cache for
    incremental re-runs.
    """
    active = _resolve(rules)
    per_module, program_rules = _split_rules(_checking_rules(active))
    contexts: List[ModuleContext] = []
    for root in paths:
        root = Path(root)
        if not root.exists():
            raise LintEngineError(f"no such file or directory: {root}")
        for file_path in iter_python_files(root):
            contexts.append(ModuleContext(
                path=str(file_path), module=module_name_for(file_path),
                source=read_source(file_path)))

    program = None
    cache_hits = cache_misses = registry_size = hot_count = 0
    if build_program:
        from repro.analysis.graph import ProgramGraph
        program = ProgramGraph.build(paths, cache_path=cache_path)
        cache_hits, cache_misses = program.cache_hits, program.cache_misses
        hot_count = len(program.hot_functions())
        for context in contexts:
            if program.covers(context.path):
                context.program = program

    violations: List[Violation] = []
    for context in contexts:
        violations.extend(_check_module(context, per_module))

    if program is not None and program_rules:
        by_path = {context.path: context for context in contexts}
        from repro.analysis.registry import SubstreamRegistry
        registry = SubstreamRegistry(program)
        registry_size = len(registry)
        for rule in program_rules:
            for violation in rule.check_program(registry):
                context = by_path.get(violation.path)
                if context is None \
                        or not context.suppressed(violation.rule,
                                                  violation.line):
                    violations.append(violation)

    for context in contexts:
        violations.extend(_audit_suppressions(context, active))

    active_codes = {rule.code for rule in active}
    return LintReport(
        violations=tuple(sorted(v for v in violations
                                if v.rule in active_codes)),
        files_checked=len(contexts),
        cache_hits=cache_hits, cache_misses=cache_misses,
        registry_size=registry_size,
        hot_functions=hot_count)


def _resolve(rules: Optional[Sequence["Rule"]]) -> Sequence["Rule"]:
    if rules is not None:
        return rules
    from repro.analysis.rules import get_rules
    return get_rules()


def _checking_rules(active: Sequence["Rule"]) -> Sequence["Rule"]:
    """The rules to actually *run* for a given selection.

    The TL013 audit can only decide a suppression is unused after every
    rule it might refer to has run, so selecting TL013 forces a
    full-catalogue check; the report is still filtered back down to the
    caller's selection afterwards.
    """
    if any(rule.code == AUDIT_RULE for rule in active):
        from repro.analysis.rules import all_rules
        return all_rules()
    return active


def _split_rules(rules: Sequence["Rule"]) \
        -> Tuple[List["Rule"], List["Rule"]]:
    """(per-module rules, program-wide rules)."""
    per_module = [rule for rule in rules
                  if not getattr(rule, "program_wide", False)]
    program = [rule for rule in rules
               if getattr(rule, "program_wide", False)]
    return per_module, program


def _check_module(context: ModuleContext,
                  rules: Sequence["Rule"]) -> Tuple[Violation, ...]:
    found: List[Violation] = []
    for rule in rules:
        if rule.code == AUDIT_RULE or not rule.applies_to(context):
            continue
        for violation in rule.check(context):
            if not context.suppressed(violation.rule, violation.line):
                found.append(violation)
    return tuple(sorted(found))


def _audit_suppressions(context: ModuleContext,
                        active: Sequence["Rule"]) -> List[Violation]:
    """TL013: every suppression must actually suppress something."""
    if not any(rule.code == AUDIT_RULE for rule in active):
        return []
    violations = []
    for line, code in context.unused_suppressions():
        if code.startswith("file:"):
            label = f"disable-file={code[len('file:'):]}"
        else:
            label = f"disable={code}"
        violation = Violation(
            path=context.path, line=line, col=0, rule=AUDIT_RULE,
            message=f"unused suppression `# totolint: {label}`: nothing "
                    "fires here any more; delete the stale comment")
        if not context.suppressed(AUDIT_RULE, line):
            violations.append(violation)
    return violations
