"""FloatSan: the reduction-order sanitizer.

The static half of the numeric-determinism contract lives in
:mod:`repro.analysis.numeric_rules` — rules TL030..TL034 reason about
the merge registry (``# totolint: merge-fn`` functions) and the paths
feeding canonical digests.  FloatSan is the runtime half
(``repro run --floatsan``): it wraps every registered merge helper for
the duration of one run, records each invocation's operand order and
result bits, and cross-checks what actually happened against what the
annotations claim:

1. **Out-of-spec operand order** — a merge-fn declared ``ordered``
   (the default) promises its caller feeds operands in spec order:
   ascending ``hour_index`` / ``name`` / ``seed`` / ``db_id``,
   whichever key its operands carry.  A caller that feeds completion
   order instead would still fold left-to-right — but over a
   different sequence per sharding mode, so the totals drift.  The
   first out-of-order pair fails the run with both keys.
2. **Order-sensitivity lies** — a merge-fn declared
   ``merge-fn=insensitive`` claims permuting its input cannot change
   the result's bits (and, implicitly, that it is pure: FloatSan
   *re-invokes* it under permuted operand orders to check).  The
   first divergence fails the run with the field path where the bits
   split.  ``ordered`` helpers are never re-invoked — observing them
   must not perturb the run.
3. **Stale registry** — if no registered merge-fn ever fires during a
   real run, the static registry (and every TL034 verdict built on
   it) is tracking a program that no longer exists.

Patching is mock.patch-style: every module attribute referencing a
registered function is swapped for the recording wrapper, so direct
``from ... import merge_summaries`` call sites are intercepted too.
Instrumentation is strictly opt-in; an unverified run pays nothing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import sys
from dataclasses import dataclass, field
from functools import wraps
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Spec-order key attributes, tried in this order; the first one the
#: operands carry defines their spec order.
SPEC_KEYS = ("hour_index", "name", "seed", "db_id")

#: Re-invocation cap per insensitive-declared merge-fn (replays are
#: O(merge) each; a handful of checked invocations is plenty).
MAX_REPLAYS = 8


def _result_bits(value: Any) -> str:
    """Bit-exact fingerprint of a merge result.

    ``repr`` round-trips floats exactly (shortest repr) and dataclass
    reprs include every field, so equal fingerprints mean equal bits.
    """
    return hashlib.sha256(repr(value).encode("utf-8")).hexdigest()[:16]


def _first_divergence(a: Any, b: Any,
                      path: str = "result") -> Tuple[str, Any, Any]:
    """Walk two merge results and locate the first differing leaf."""
    if dataclasses.is_dataclass(a) and dataclasses.is_dataclass(b) \
            and type(a) is type(b):
        for f in dataclasses.fields(a):
            left, right = getattr(a, f.name), getattr(b, f.name)
            if repr(left) != repr(right):
                return _first_divergence(left, right,
                                         f"{path}.{f.name}")
        return path, a, b
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        for index, (left, right) in enumerate(zip(a, b)):
            if repr(left) != repr(right):
                return _first_divergence(left, right,
                                         f"{path}[{index}]")
        return f"{path}(len)", len(a), len(b)
    if isinstance(a, dict) and isinstance(b, dict):
        for key in a:
            if key in b and repr(a[key]) != repr(b[key]):
                return _first_divergence(a[key], b[key],
                                         f"{path}[{key!r}]")
        return f"{path}(keys)", sorted(map(repr, a)), sorted(map(repr, b))
    return path, a, b


@dataclass(frozen=True)
class OrderViolation:
    """An ``ordered`` merge-fn was fed operands out of spec order."""

    qualname: str
    spec_key: str
    index: int
    previous: Any
    current: Any

    def format(self) -> str:
        return (f"{self.qualname} — operand {self.index} is out of "
                f"spec order: {self.spec_key}={self.current!r} after "
                f"{self.spec_key}={self.previous!r}; the caller must "
                "feed spec order (ascending), not completion order")


@dataclass(frozen=True)
class ReplayDivergence:
    """An ``insensitive`` merge-fn changed bits under permutation."""

    qualname: str
    permutation: str
    operands: int
    path: str
    original: str
    permuted: str

    def format(self) -> str:
        return (f"{self.qualname} — declared order-insensitive, but "
                f"replaying {self.operands} operands {self.permutation} "
                f"diverges at {self.path}: {self.original} != "
                f"{self.permuted}; the reduction is order-sensitive "
                "and must be declared `merge-fn` (ordered)")


@dataclass
class FloatSanReport:
    """Outcome of one verified (``--floatsan``) run."""

    registered: int
    patched: int
    invocations: int
    replays: int
    fired: Tuple[str, ...] = ()
    unobserved: Tuple[str, ...] = ()
    order_violations: List[OrderViolation] = field(default_factory=list)
    divergences: List[ReplayDivergence] = field(default_factory=list)
    stale_registry: bool = False

    @property
    def ok(self) -> bool:
        return (not self.order_violations and not self.divergences
                and not self.stale_registry)

    def format(self) -> str:
        lines = [
            f"floatsan: {self.registered} registered merge-fns "
            f"({self.patched} patched), {len(self.fired)} fired over "
            f"{self.invocations} invocations, {self.replays} permuted "
            "replays",
        ]
        if self.unobserved and not self.stale_registry:
            lines.append("floatsan: never fired this run: "
                         + ", ".join(self.unobserved))
        if self.stale_registry:
            lines.append(
                "floatsan: STALE REGISTRY — no registered merge-fn "
                "ever fired; the `# totolint: merge-fn` registry no "
                "longer matches the running program and every TL034 "
                "verdict built on it is suspect")
        for violation in self.order_violations:
            lines.append(f"floatsan: ORDER VIOLATION {violation.format()}")
        for divergence in self.divergences:
            lines.append(f"floatsan: DIVERGENCE {divergence.format()}")
        if self.ok:
            lines.append(
                "floatsan: OK — every fold ran over spec-ordered "
                "operands, every insensitivity claim held, registry "
                "live")
        return "\n".join(lines)


class _MergeStats:
    """Runtime counters for one registered merge-fn."""

    __slots__ = ("invocations", "replays")

    def __init__(self) -> None:
        self.invocations = 0
        self.replays = 0


class FloatSan:
    """Wrap the merge registry for one run and audit every invocation.

    ``registry`` maps ``(path, qualname) -> sensitivity`` — the shape
    :meth:`~repro.analysis.graph.ProgramGraph.merge_functions` returns.
    """

    def __init__(self, registry: Dict[Tuple[str, str], str]) -> None:
        self.registry = dict(registry)
        self.stats: Dict[str, _MergeStats] = {}
        self.order_violations: List[OrderViolation] = []
        self.divergences: List[ReplayDivergence] = []
        self.patched: List[str] = []
        #: (owner, attribute, original) triples to restore on uninstall.
        self._restores: List[Tuple[Any, str, Any]] = []
        self._installed = False

    # -- patching --------------------------------------------------------

    def install(self) -> None:
        """Swap every registered, resolvable merge-fn for its wrapper."""
        if self._installed:
            return
        self._installed = True
        for (path, qualname), sensitivity in sorted(self.registry.items()):
            original = self._resolve(path, qualname)
            if original is None:
                continue
            wrapper = self._wrap(qualname, sensitivity, original)
            if self._patch_references(original, wrapper):
                self.patched.append(qualname)

    def uninstall(self) -> None:
        for owner, attribute, original in reversed(self._restores):
            setattr(owner, attribute, original)
        self._restores.clear()
        self._installed = False

    def _resolve(self, path: str, qualname: str) -> Optional[Callable]:
        """The live object behind one registry entry, if importable."""
        from repro.analysis.engine import module_name_for
        try:
            module = importlib.import_module(
                module_name_for(Path(path)))
        except ImportError:
            return None
        target: Any = module
        for part in qualname.split("."):
            target = getattr(target, part, None)
            if target is None:
                return None
        return target if callable(target) else None

    def _patch_references(self, original: Callable,
                          wrapper: Callable) -> bool:
        """Swap every module-level reference to ``original``.

        Call sites import merge-fns directly (``from ... import
        merge_summaries``), so patching only the defining module would
        miss them; like ``mock.patch``, every loaded module holding a
        reference gets the wrapper.
        """
        patched = False
        for module in list(sys.modules.values()):
            module_vars = getattr(module, "__dict__", None)
            if not module_vars:
                continue
            for attribute, value in list(module_vars.items()):
                if value is original:
                    setattr(module, attribute, wrapper)
                    self._restores.append((module, attribute, original))
                    patched = True
        return patched

    # -- the wrapper -----------------------------------------------------

    def _wrap(self, qualname: str, sensitivity: str,
              original: Callable) -> Callable:
        stats = self.stats.setdefault(qualname, _MergeStats())

        @wraps(original)
        def audited(*args: Any, **kwargs: Any) -> Any:
            stats.invocations += 1
            operands = self._operands(args)
            if operands is not None:
                self._check_spec_order(qualname, operands)
            result = original(*args, **kwargs)
            if (sensitivity == "insensitive" and operands is not None
                    and len(operands) >= 2
                    and stats.replays < MAX_REPLAYS):
                stats.replays += 1
                self._replay(qualname, original, operands, result,
                             args, kwargs)
            return result

        return audited

    def _operands(self, args: Tuple[Any, ...]) -> Optional[List[Any]]:
        """The merged sequence: the first sequence-shaped argument."""
        if not args:
            return None
        first = args[0]
        if isinstance(first, (list, tuple)):
            return list(first)
        return None

    def _check_spec_order(self, qualname: str,
                          operands: List[Any]) -> None:
        if len(operands) < 2:
            return
        spec_key = next(
            (key for key in SPEC_KEYS if hasattr(operands[0], key)),
            None)
        if spec_key is None:
            return
        keys = [getattr(operand, spec_key) for operand in operands]
        for index in range(1, len(keys)):
            if keys[index] < keys[index - 1]:
                self.order_violations.append(OrderViolation(
                    qualname=qualname, spec_key=spec_key, index=index,
                    previous=keys[index - 1], current=keys[index]))
                return  # first mismatch only; one report per invocation

    def _replay(self, qualname: str, original: Callable,
                operands: List[Any], result: Any,
                args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> None:
        """Re-invoke an insensitive-declared fn under permuted order."""
        baseline = _result_bits(result)
        permutations = [("reversed", list(reversed(operands)))]
        if len(operands) > 2:
            permutations.append(("rotated by one",
                                 operands[1:] + operands[:1]))
        for label, permuted in permutations:
            replayed = original(permuted, *args[1:], **kwargs)
            if _result_bits(replayed) != baseline:
                path, left, right = _first_divergence(result, replayed)
                self.divergences.append(ReplayDivergence(
                    qualname=qualname, permutation=label,
                    operands=len(operands), path=path,
                    original=repr(left), permuted=repr(right)))
                return  # first divergence only

    # -- reporting -------------------------------------------------------

    def report(self) -> FloatSanReport:
        fired = tuple(sorted(qualname
                             for qualname, stats in self.stats.items()
                             if stats.invocations))
        unobserved = tuple(sorted(set(self.patched) - set(fired)))
        invocations = sum(s.invocations for s in self.stats.values())
        return FloatSanReport(
            registered=len(self.registry),
            patched=len(self.patched),
            invocations=invocations,
            replays=sum(s.replays for s in self.stats.values()),
            fired=fired,
            unobserved=unobserved,
            order_violations=list(self.order_violations),
            divergences=list(self.divergences),
            stale_registry=bool(self.patched) and invocations == 0,
        )


def merge_registry(paths: Optional[Sequence[Path]] = None,
                   cache_path: Optional[Path] = None
                   ) -> Dict[Tuple[str, str], str]:
    """The static merge registry: annotated functions under ``paths``."""
    from repro.analysis.graph import ProgramGraph

    if paths is None:
        import repro
        paths = [Path(repro.__file__).resolve().parent]
    graph = ProgramGraph.build(list(paths), cache_path=cache_path)
    return graph.merge_functions()


def verify_float_run(scenario: Any,
                     paths: Optional[Sequence[Path]] = None,
                     cache_path: Optional[Path] = None
                     ) -> Tuple[Any, FloatSanReport]:
    """Run ``scenario`` once under FloatSan and audit every merge.

    Returns ``(result, report)`` where ``result`` is the run's
    :class:`~repro.core.runner.BenchmarkResult`.  Runner imports are
    deferred so the analysis layer stays importable on its own.
    """
    from repro.core.runner import run_scenario

    sanitizer = FloatSan(merge_registry(paths, cache_path=cache_path))
    sanitizer.install()
    try:
        result = run_scenario(scenario)
    finally:
        sanitizer.uninstall()
    return result, sanitizer.report()
