"""Baseline ("ratchet") support for the lint engine.

A baseline file records the violations a repository has *agreed to
live with*, so `repro-toto lint` can gate CI on "no new findings"
while the old ones are burned down.  The ratchet only turns one way:

* a violation matching a baseline entry is **suppressed** (counted in
  ``LintReport.baselined``);
* a violation with no entry **fails** the run as usual;
* a baseline entry that no longer matches anything is **stale** and is
  itself reported (mirroring the TL013 unused-suppression audit) — the
  file must be regenerated with ``--write-baseline`` to shrink it.

Entries are keyed by ``(rule, path, message)`` with a count, *not* by
line number, so unrelated edits that shift code do not invalidate the
baseline while a genuinely new instance of an old finding still fails.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.analysis.engine import LintEngineError, Violation

#: Schema version written into baseline files.
BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


def _portable(path: str) -> str:
    """``path`` relative to the working directory, in posix form.

    Baselines are committed and applied from different checkouts, so
    absolute paths must not leak into the ledger; paths outside the
    working directory are kept as given.
    """
    candidate = Path(path)
    try:
        return candidate.resolve().relative_to(Path.cwd()).as_posix()
    except (ValueError, OSError):
        return candidate.as_posix()


def _key(violation: Violation) -> _Key:
    return (violation.rule, _portable(violation.path), violation.message)


def _parse_entry(path: str, entry: Any) -> Tuple[_Key, int]:
    """One baseline-file entry as its ledger key plus count."""
    try:
        key = (str(entry["rule"]), _portable(str(entry["path"])),
               str(entry["message"]))
        return key, int(entry.get("count", 1))
    except (TypeError, KeyError) as exc:
        raise LintEngineError(
            f"baseline {path} has a malformed entry: {entry!r}") from exc


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to a violation list."""

    #: Violations not covered by the baseline (these fail the run).
    new: List[Violation]
    #: Number of violations absorbed by the baseline.
    baselined: int
    #: Human-readable descriptions of stale (unmatched) entries.
    stale: List[str]


class Baseline:
    """An accepted-violations ledger keyed by (rule, path, message)."""

    def __init__(self, counts: Dict[_Key, int]) -> None:
        self._counts = dict(counts)

    @classmethod
    def from_violations(cls, violations: List[Violation]) -> "Baseline":
        counts: Dict[_Key, int] = {}
        for violation in violations:
            key = _key(violation)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise LintEngineError(f"cannot read baseline {path}: "
                                  f"{exc.strerror or exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintEngineError(
                f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise LintEngineError(
                f"baseline {path} is missing the 'entries' list")
        counts: Dict[_Key, int] = {}
        for entry in payload["entries"]:
            key, count = _parse_entry(path, entry)
            counts[key] = counts.get(key, 0) + count
        return cls(counts)

    def write(self, path: str) -> None:
        entries = [
            {"rule": rule, "path": file_path, "message": message,
             "count": count}
            for (rule, file_path, message), count
            in sorted(self._counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def apply(self, violations: List[Violation]) -> BaselineResult:
        """Split violations into new vs. baselined; report stale entries."""
        remaining = dict(self._counts)
        new: List[Violation] = []
        baselined = 0
        for violation in violations:
            key = _key(violation)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                new.append(violation)
        stale = [
            f"{rule} {file_path}: {message!r} (x{count})"
            for (rule, file_path, message), count
            in sorted(remaining.items()) if count > 0
        ]
        return BaselineResult(new=new, baselined=baselined, stale=stale)

    def __len__(self) -> int:
        return sum(self._counts.values())
