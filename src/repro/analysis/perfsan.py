"""PerfSan: the runtime allocation sanitizer.

The static half of the performance contract lives in
:mod:`repro.analysis.perf_rules` — rules TL020..TL024 reason about
per-event allocation on the hot paths :class:`~repro.analysis.graph.
ProgramGraph` infers.  PerfSan is the runtime half
(``repro run --perfsan``): it executes a scenario under a
``sys.setprofile`` hook with :mod:`tracemalloc` armed and cross-checks
what actually happened against what the static analysis claimed:

1. **Allocation mismatch** — a hot function the static pass judged
   *allocation-free* (no call, display, comprehension, f-string, or
   arithmetic in its body) that nevertheless allocates on most of its
   observed calls.  That means the static model and the interpreter
   disagree — a lint blind spot, not a style issue — so the run fails
   loudly with the function, its call counts, and sample byte sizes.
2. **Stale hot set** — the inferred hot set exists to focus the
   TL020..TL024 rules; if *no* statically-hot function ever fires
   during a real run, the inference is tracking a program that no
   longer exists and every perf verdict built on it is suspect.

Measurement is sampled, not exhaustive: only the outermost hot call is
measured at a time, and per-call byte deltas are compared against a
slack calibrated on an empty probe function (the profile hook itself
allocates a frame or two).  Instrumentation is strictly opt-in; an
uninstrumented run pays nothing.
"""

from __future__ import annotations

import ast
import sys
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: AST node types whose evaluation may allocate per call.  The verdict
#: must be conservative in exactly one direction: a function judged
#: allocation-free must REALLY be allocation-free, so anything that
#: *might* allocate (calls, displays, arithmetic on unbounded ints,
#: iterators, exception raising, nested defs) disqualifies it.
_MAY_ALLOCATE = (
    ast.Call, ast.List, ast.Dict, ast.Set,
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    ast.Lambda, ast.JoinedStr, ast.FormattedValue,
    ast.BinOp, ast.AugAssign,
    ast.For, ast.AsyncFor, ast.With, ast.AsyncWith,
    ast.Raise, ast.Try, ast.Starred, ast.Slice,
    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
    ast.Yield, ast.YieldFrom, ast.Await,
)

#: Measured calls needed before an allocation verdict counts; fewer is
#: statistically meaningless (a one-off cache fill is not "per event").
MIN_MEASURED_CALLS = 4

#: A clean function "allocates" when at least this fraction of its
#: measured calls exceed the calibrated slack.
MISMATCH_FRACTION = 0.5

#: Per-function cap on retained byte samples (keeps the hook O(1)).
_SAMPLE_CAP = 64

_CALIBRATION_CALLS = 8


def function_is_alloc_free(node: ast.AST) -> bool:
    """Whether the static model claims ``node``'s body never allocates.

    Decorators and argument defaults are evaluated at ``def`` time and
    excluded; everything inside the body counts, including non-constant
    tuple displays (constant ones are folded at compile time).
    """
    for statement in getattr(node, "body", ()):
        for child in ast.walk(statement):
            if isinstance(child, _MAY_ALLOCATE):
                return False
            if isinstance(child, ast.Tuple) and not all(
                    isinstance(item, ast.Constant) for item in child.elts):
                return False
            # `not x` yields a cached bool; arithmetic negation of an
            # unbounded int does allocate.
            if isinstance(child, ast.UnaryOp) \
                    and not isinstance(child.op, ast.Not):
                return False
    return True


@dataclass(frozen=True)
class HotFunction:
    """One statically-hot function with its static allocation verdict."""

    path: str
    qualname: str
    start: int
    end: int
    alloc_free: bool


def _hot_functions(graph: Any) -> List[HotFunction]:
    """The inferred hot set with per-function alloc-free verdicts."""
    functions: List[HotFunction] = []
    for path, intervals in sorted(graph.hot_intervals().items()):
        try:
            tree = ast.parse(Path(path).read_text(encoding="utf-8"))
        except (OSError, SyntaxError):  # deleted/edited since the build
            continue
        by_line: Dict[int, ast.AST] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                by_line[node.lineno] = node
        for start, end, qualname in intervals:
            node = by_line.get(start)
            functions.append(HotFunction(
                path=path, qualname=qualname, start=start, end=end,
                alloc_free=(node is not None
                            and function_is_alloc_free(node))))
    return functions


class _FunctionStats:
    """Runtime counters for one hot function."""

    __slots__ = ("calls", "samples")

    def __init__(self) -> None:
        self.calls = 0
        self.samples: List[int] = []


def _calibration_probe() -> None:
    """Empty function used to measure the hook's own allocation cost."""


class PerfSanProfiler:
    """``sys.setprofile`` hook that meters allocation in hot functions.

    Only the outermost hot call is measured at a time (nested hot calls
    are counted but not metered, so one window never double-books), and
    the byte delta is the tracemalloc *peak* over the window — a
    function that allocates and frees within one call still shows up.
    """

    def __init__(self, functions: Sequence[HotFunction]) -> None:
        self._by_file: Dict[str, List[HotFunction]] = {}
        self._by_qualname: Dict[Tuple[str, str], HotFunction] = {}
        for function in functions:
            self._by_file.setdefault(function.path, []).append(function)
            self._by_qualname[(function.path, function.qualname)] = function
        self._classified: Dict[Any, Optional[HotFunction]] = {}
        self.stats: Dict[Tuple[str, str], _FunctionStats] = {}
        self._active_frame: Optional[Any] = None
        self._active_stats: Optional[_FunctionStats] = None
        self._baseline = 0
        self.slack_bytes = 0
        self._started_tracemalloc = False

    # -- classification --------------------------------------------------

    def _classify(self, code: Any) -> Optional[HotFunction]:
        """Map a code object onto the static hot set (memoized)."""
        candidates = self._by_file.get(code.co_filename)
        if not candidates:
            return None
        qualname = getattr(code, "co_qualname", code.co_name)
        qualname = qualname.replace(".<locals>", "")
        found = self._by_qualname.get((code.co_filename, qualname))
        if found is not None:
            return found
        line = code.co_firstlineno
        for candidate in candidates:
            if candidate.start <= line <= candidate.end:
                return candidate
        return None

    # -- the hook --------------------------------------------------------

    def _profile(self, frame: Any, event: str, arg: Any) -> None:
        if event == "call":
            code = frame.f_code
            try:
                function = self._classified[code]
            except KeyError:
                function = self._classify(code)
                self._classified[code] = function
            if function is None:
                return
            key = (function.path, function.qualname)
            stats = self.stats.get(key)
            if stats is None:
                stats = self.stats[key] = _FunctionStats()
            stats.calls += 1
            if (self._active_frame is None and function.alloc_free
                    and len(stats.samples) < _SAMPLE_CAP):
                self._active_frame = frame
                self._active_stats = stats
                tracemalloc.reset_peak()
                self._baseline = tracemalloc.get_traced_memory()[0]
        elif event == "return" and frame is self._active_frame:
            peak = tracemalloc.get_traced_memory()[1]
            self._active_stats.samples.append(peak - self._baseline)
            self._active_frame = None
            self._active_stats = None

    # -- lifecycle -------------------------------------------------------

    def install(self) -> None:
        if not tracemalloc.is_tracing():
            tracemalloc.start(1)
            self._started_tracemalloc = True
        sys.setprofile(self._profile)
        self._calibrate()

    def uninstall(self) -> None:
        sys.setprofile(None)
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()

    def _calibrate(self) -> None:
        """Meter an empty probe to learn the hook's intrinsic cost.

        The probe is temporarily classified as a hot allocation-free
        function so it flows through the real measurement path,
        including the return-hook frame the window pays for.
        """
        code = _calibration_probe.__code__
        probe = HotFunction(path="<perfsan-probe>", qualname="_probe",
                            start=0, end=0, alloc_free=True)
        self._classified[code] = probe
        for _ in range(_CALIBRATION_CALLS):
            _calibration_probe()
        stats = self.stats.pop((probe.path, probe.qualname), None)
        self._classified[code] = None
        observed = max(stats.samples) if stats and stats.samples else 0
        self.slack_bytes = observed + 512


@dataclass(frozen=True)
class AllocationMismatch:
    """Static analysis and the interpreter disagree on one function."""

    path: str
    qualname: str
    calls: int
    measured: int
    allocating: int
    max_bytes: int
    samples: Tuple[int, ...]

    def format(self) -> str:
        preview = ", ".join(str(size) for size in self.samples[:8])
        return (f"{self.path}:{self.qualname} — statically judged "
                f"allocation-free, but {self.allocating} of "
                f"{self.measured} measured calls allocated "
                f"(max {self.max_bytes} bytes over slack; "
                f"{self.calls} calls total; sample deltas: {preview})")


@dataclass
class PerfSanReport:
    """Outcome of one verified (``--perfsan``) run."""

    hot_functions: int
    alloc_free_functions: int
    fired_functions: int
    hot_calls: int
    slack_bytes: int
    mismatches: List[AllocationMismatch] = field(default_factory=list)
    stale_hot_set: bool = False

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.stale_hot_set

    def format(self) -> str:
        lines = [
            f"perfsan: {self.hot_functions} statically-hot functions "
            f"({self.alloc_free_functions} judged allocation-free), "
            f"{self.fired_functions} fired at runtime over "
            f"{self.hot_calls} calls",
            f"perfsan: measurement slack {self.slack_bytes} bytes "
            "(calibrated)",
        ]
        if self.stale_hot_set:
            lines.append(
                "perfsan: STALE HOT SET — no statically-hot function "
                "ever fired; the inferred hot set no longer matches "
                "the running program and every TL020..TL024 verdict "
                "built on it is suspect")
        for mismatch in self.mismatches:
            lines.append(f"perfsan: ALLOCATION MISMATCH {mismatch.format()}")
        if self.ok:
            lines.append(
                "perfsan: OK — every allocation-free verdict held at "
                "runtime, hot set live")
        return "\n".join(lines)


def evaluate(functions: Sequence[HotFunction],
             profiler: PerfSanProfiler) -> PerfSanReport:
    """Cross-check runtime stats against the static verdicts."""
    by_key = {(f.path, f.qualname): f for f in functions}
    report = PerfSanReport(
        hot_functions=len(by_key),
        alloc_free_functions=sum(1 for f in by_key.values() if f.alloc_free),
        fired_functions=sum(1 for s in profiler.stats.values() if s.calls),
        hot_calls=sum(s.calls for s in profiler.stats.values()),
        slack_bytes=profiler.slack_bytes,
    )
    report.stale_hot_set = bool(by_key) and report.hot_calls == 0
    slack = profiler.slack_bytes
    for key, stats in sorted(profiler.stats.items()):
        function = by_key.get(key)
        if function is None or not function.alloc_free:
            continue
        if len(stats.samples) < MIN_MEASURED_CALLS:
            continue
        allocating = [size for size in stats.samples if size > slack]
        if len(allocating) < MISMATCH_FRACTION * len(stats.samples):
            continue
        report.mismatches.append(AllocationMismatch(
            path=function.path, qualname=function.qualname,
            calls=stats.calls, measured=len(stats.samples),
            allocating=len(allocating),
            max_bytes=max(allocating) - slack,
            samples=tuple(stats.samples)))
    return report


def verify_perf_run(scenario: Any,
                    paths: Optional[Sequence[Path]] = None,
                    cache_path: Optional[Path] = None
                    ) -> Tuple[Any, PerfSanReport]:
    """Run ``scenario`` once under PerfSan and cross-check the verdicts.

    Returns ``(result, report)`` where ``result`` is the run's
    :class:`~repro.core.runner.BenchmarkResult`.  Runner imports are
    deferred so the analysis layer stays importable on its own.
    """
    from repro.analysis.graph import ProgramGraph
    from repro.core.runner import run_scenario

    if paths is None:
        import repro
        paths = [Path(repro.__file__).resolve().parent]
    graph = ProgramGraph.build(list(paths), cache_path=cache_path)
    functions = _hot_functions(graph)

    profiler = PerfSanProfiler(functions)
    profiler.install()
    try:
        result = run_scenario(scenario)
    finally:
        profiler.uninstall()
    return result, evaluate(functions, profiler)
