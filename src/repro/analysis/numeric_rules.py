"""The numeric-determinism rule tier ("totonum", TL030..TL034).

Float addition is not associative: ``(a + b) + c`` and ``a + (b + c)``
differ in the last ulp often enough that any reduction whose operand
*order* can vary — hash-ordered sets, completion-ordered dict views,
numpy's pairwise summation, tree-shaped merges — produces
bit-different totals between a serial run and a sharded one.  The
fleet layer's byte-equality contract (docs/FLEET.md) therefore pins a
single summation order: strict left-to-right folds over spec-ordered
sequences, hashed through one canonical JSON sink.  This tier makes
that contract checkable:

* functions annotated ``# totolint: merge-fn`` form the **merge
  registry** — the only sanctioned float-reduction sites.  TL034
  checks their bodies statically; FloatSan (``repro run --floatsan``)
  audits their operand order at runtime and cross-checks the same
  registry, so a stale annotation shows up on both sides;
* the **numeric scope** is everything reachable from registered merge
  helpers and ``# totolint: canonical-json`` sinks (plus their direct
  callers) via the PR-4 name-level over-approximation — the code that
  feeds values into merged KPIs and golden digests;
* single-module runs fall back to the fleet/revenue/telemetry/parallel
  package scopes, like the perf tier does.
"""

from __future__ import annotations

import ast
import re
from typing import (
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.engine import ModuleContext, Violation
from repro.analysis.graph import ModuleExtract, extract_module
from repro.analysis.perf_rules import _loop_body_nodes
from repro.analysis.rules import Rule, _dotted, register

#: Rule codes in this tier (the CLI's ``--select``/``--ignore`` docs
#: and CI's tier split reference this set).
NUMERIC_TIER = ("TL030", "TL031", "TL032", "TL033", "TL034")

#: numpy reduction entry points whose summation order is pairwise (or
#: otherwise unspecified), not sequential.
_NUMPY_REDUCERS = frozenset({
    "sum", "mean", "average", "dot", "prod", "cumsum", "einsum",
    "nansum", "nanmean", "reduce",
})

#: The KPI aggregate types whose merging must go through the registry.
_KPI_AGGREGATES = frozenset({
    "ClusterSummary", "FleetKpis", "FleetFrame", "AdjustedRevenueReport",
})

#: Format specs that render a float (``.3f``, ``e``, ``g``, ``%`` …).
_FLOAT_SPEC = re.compile(r"[efg%]|\.\d")


def _module_extract(context: ModuleContext) -> ModuleExtract:
    """This module's graph extract (from the program graph when built)."""
    if context.program is not None:
        extract = context.program.modules.get(context.path)
        if extract is not None:
            return extract
    return extract_module(context.path, context.module, context.source)


def _functions_with_qualnames(
        tree: ast.AST) -> List[Tuple[str, ast.AST]]:
    """``(qualname, def-node)`` pairs, dotted like the graph extractor."""
    found: List[Tuple[str, ast.AST]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + child.name if prefix else child.name
                found.append((qualname, child))
                visit(child, qualname + ".")
            elif isinstance(child, ast.ClassDef):
                visit(child, (prefix + child.name + "."
                              if prefix else child.name + "."))
            else:
                visit(child, prefix)

    visit(tree, "")
    return found


def _spans(extract: ModuleExtract,
           qualnames: Set[str]) -> List[Tuple[int, int]]:
    """Line spans of the named functions in one module extract."""
    return [(function.start, function.end)
            for function in extract.functions
            if function.qualname in qualnames]


def _in_spans(line: int, spans: List[Tuple[int, int]]) -> bool:
    return any(start <= line <= end for start, end in spans)


def _is_np_reduction(node: ast.AST) -> bool:
    """``np.sum(...)`` / ``numpy.mean(...)`` / ``np.add.reduce(...)``."""
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)):
        return False
    dotted = _dotted(node.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    return parts[0] in ("np", "numpy") and parts[-1] in _NUMPY_REDUCERS


class NumericPathRule(Rule):
    """A rule scoped to the program's merge/digest paths.

    With a program graph: every module is a candidate, but only nodes
    inside the inferred numeric scope (merge registry + canonical
    sinks + their feeders) are flagged.  Single-module runs fall back
    to the package scopes, where every node is in scope.
    """

    scopes = ("repro.fleet", "repro.revenue", "repro.telemetry",
              "repro.parallel")

    def applies_to(self, context: ModuleContext) -> bool:
        if context.program is not None:
            return True
        return super().applies_to(context)

    def in_scope(self, context: ModuleContext, node: ast.AST) -> bool:
        if context.program is None:
            return True
        return context.program.is_numeric(context.path,
                                          getattr(node, "lineno", 1))


# ---------------------------------------------------------------------------
# TL030 — float reductions over unordered iterables


@register
class NoUnorderedFloatReduction(NumericPathRule):
    code = "TL030"
    title = "no float reduction over unordered iterables on merge/digest paths"
    rationale = (
        "Float addition is order-sensitive, and sets (hash order) and "
        "raw dict views (insertion order — completion order, in merge "
        "code fed by pool workers) have no spec order, so `sum()` / "
        "`math.fsum()` / loop accumulation over one yields totals that "
        "differ bit-for-bit between runs and sharding modes. Reduce "
        "over the spec-ordered sequence instead: the index-aligned "
        "summary list, or `sorted(...)` by a stable key. Scope: the "
        "inferred merge/digest paths when the whole-program analyzer "
        "runs, the fleet/revenue packages otherwise.")

    _REDUCERS = frozenset({"sum", "fsum"})
    _SET_METHODS = frozenset({"union", "intersection", "difference",
                              "symmetric_difference"})
    _VIEW_METHODS = frozenset({"values", "items", "keys"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if (dotted is not None
                        and dotted.split(".")[-1] in self._REDUCERS
                        and node.args):
                    reason = self._unordered(node.args[0])
                    if reason and self.in_scope(context, node):
                        yield self.violation(
                            context, node,
                            f"float reduction over {reason}: summation "
                            "order is unspecified, so the total is not "
                            "bit-reproducible; reduce over the "
                            "spec-ordered sequence")
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                reason = self._unordered(node.iter)
                if (reason and self._accumulates(node)
                        and self.in_scope(context, node)):
                    yield self.violation(
                        context, node,
                        f"loop accumulation over {reason}: iteration "
                        "order is unspecified, so the accumulated "
                        "value is not bit-reproducible; iterate the "
                        "spec-ordered sequence")

    def _accumulates(self, loop: ast.AST) -> bool:
        return any(isinstance(node, ast.AugAssign)
                   and isinstance(node.op, ast.Add)
                   for node in _loop_body_nodes(loop))

    def _unordered(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            return self._unordered(node.generators[0].iter)
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name):
                if callee.id in ("set", "frozenset"):
                    return f"`{callee.id}(...)`"
                return None  # sorted(...)/list(...)/tuple(...) wrappers
            if isinstance(callee, ast.Attribute):
                if callee.attr in self._VIEW_METHODS:
                    return f"a raw `.{callee.attr}()` dict view"
                if callee.attr in self._SET_METHODS:
                    return f"a `.{callee.attr}()` result"
        return None


# ---------------------------------------------------------------------------
# TL031 — numpy reductions across the pickle/merge boundary


@register
class NoNumpyReductionAcrossBoundary(NumericPathRule):
    code = "TL031"
    title = "no numpy reductions on values crossing the pickle/merge boundary"
    rationale = (
        "`np.sum`/`np.mean`/`np.dot` use pairwise (tree) summation, "
        "which is bit-different from Python's sequential fold and may "
        "vary with array layout and numpy version — fine inside one "
        "model, fatal for a value that crosses the pickle boundary "
        "into the fleet merge or a golden digest, where every "
        "execution mode must reproduce one summation order. Route the "
        "cross-boundary reduction through a registered "
        "`# totolint: merge-fn` helper (sequential fold) instead. "
        "Scope: the merge/digest paths — a model reducing its own "
        "in-shard array is deterministic however numpy folds it; "
        "merge-fn bodies themselves are TL034's jurisdiction.")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        candidates = [node for node in ast.walk(context.tree)
                      if _is_np_reduction(node)]
        if not candidates:
            return
        extract = _module_extract(context)
        merge_spans = _spans(
            extract, {qualname for qualname, _ in extract.merge_fns})
        for node in candidates:
            if _in_spans(node.lineno, merge_spans):
                continue  # TL034 audits registered merge bodies
            if self.in_scope(context, node):
                dotted = _dotted(node.func)
                yield self.violation(
                    context, node,
                    f"`{dotted}()` reduces pairwise on a value that "
                    "crosses the pickle/merge boundary; fold it "
                    "sequentially through a registered "
                    "`# totolint: merge-fn` helper")


# ---------------------------------------------------------------------------
# TL032 — float equality and float-keyed containers


@register
class NoFloatKeysOrEquality(NumericPathRule):
    code = "TL032"
    title = "no float equality or float-keyed containers on merge/digest paths"
    rationale = (
        "An accumulated float's exact bits depend on its summation "
        "history, so `== 0.25` flips between execution modes, and a "
        "float used as a dict key or set member is looked up by those "
        "exact bits — one ulp of drift silently splits or merges "
        "buckets. Compare against a tolerance (math.isclose) and key "
        "containers by integers or strings (hour indexes, ids).")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Compare):
                yield from self._check_compare(context, node)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if self._is_float(key) and self.in_scope(context, node):
                        yield self.violation(
                            context, key,  # type: ignore[arg-type]
                            "float dict key: lookup depends on exact "
                            "bits; key by an integer or string instead")
            elif isinstance(node, ast.Set):
                for element in node.elts:
                    if (self._is_float(element)
                            and self.in_scope(context, node)):
                        yield self.violation(
                            context, element,
                            "float set member: membership depends on "
                            "exact bits; use an integer or string "
                            "domain instead")

    def _check_compare(self, context: ModuleContext,
                       node: ast.Compare) -> Iterator[Violation]:
        operands = [node.left] + list(node.comparators)
        has_equality = any(isinstance(op, (ast.Eq, ast.NotEq))
                           for op in node.ops)
        if (has_equality
                and any(self._is_float(operand) for operand in operands)
                and self.in_scope(context, node)):
            yield self.violation(
                context, node,
                "float equality comparison: accumulated floats match "
                "only bit-for-bit; compare with math.isclose or an "
                "explicit tolerance")

    def _is_float(self, node: Optional[ast.expr]) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if (isinstance(node, ast.UnaryOp)
                and isinstance(node.op, (ast.USub, ast.UAdd))):
            return self._is_float(node.operand)
        return False


# ---------------------------------------------------------------------------
# TL033 — ad-hoc float rendering outside the canonical JSON sink


@register
class CanonicalFloatRendering(Rule):
    code = "TL033"
    title = "digest/export feeders must not hand-format floats"
    rationale = (
        "Golden digests survive Python upgrades because every float is "
        "rendered exactly once, by the canonical JSON sink "
        "(shortest-round-trip repr, sorted keys). A `str(x)`, "
        "`round(x, n)`, or `f\"{x:.3f}\"` in a function that feeds a "
        "digest or exported JSON bakes a second, lossy rendering into "
        "the artifact — two writers will eventually disagree. Pass "
        "floats through unformatted and let the sink render, or "
        "annotate a deliberate writer `# totolint: canonical-json`.")
    scopes = ("repro.fleet", "repro.revenue", "repro.telemetry",
              "repro.obs")

    _RENDER_CALLS = frozenset({"str", "round", "format"})

    def applies_to(self, context: ModuleContext) -> bool:
        if context.program is not None:
            return True
        return super().applies_to(context)

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        extract = _module_extract(context)
        canonical = set(extract.canonical_fns)
        sinks = self._sink_names(context, extract)
        for qualname, function in _functions_with_qualnames(context.tree):
            if qualname in canonical:
                continue
            if not self._feeds_export(function, sinks):
                continue
            for node in ast.walk(function):
                reason = self._rendering(node)
                if reason is not None:
                    yield self.violation(
                        context, node,
                        f"ad-hoc float rendering ({reason}) in "
                        f"`{qualname}()`, which feeds a digest or "
                        "exported JSON; pass floats through "
                        "unformatted, or annotate the writer "
                        "`# totolint: canonical-json`")

    def _sink_names(self, context: ModuleContext,
                    extract: ModuleExtract) -> Set[str]:
        names = {qualname.rsplit(".", 1)[-1]
                 for qualname in extract.canonical_fns}
        if context.program is not None:
            names |= context.program.canonical_sink_names()
        return names

    def _feeds_export(self, function: ast.AST, sinks: Set[str]) -> bool:
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if dotted in ("json.dumps", "json.dump"):
                return True
            if dotted.split(".")[-1] in sinks:
                return True
        return False

    def _rendering(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in self._RENDER_CALLS
                    and len(node.args) >= 1 and not node.keywords):
                return f"`{node.func.id}(...)`"
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "format"
                    and isinstance(node.func.value, ast.Constant)
                    and isinstance(node.func.value.value, str)
                    and _FLOAT_SPEC.search(node.func.value.value)):
                return "float-spec `.format(...)`"
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if (isinstance(value, ast.FormattedValue)
                        and self._float_spec(value.format_spec)):
                    return "float-formatted f-string"
        return None

    def _float_spec(self, spec: Optional[ast.expr]) -> bool:
        if not isinstance(spec, ast.JoinedStr):
            return False
        text = "".join(value.value for value in spec.values
                       if isinstance(value, ast.Constant)
                       and isinstance(value.value, str))
        return bool(_FLOAT_SPEC.search(text))


# ---------------------------------------------------------------------------
# TL034 — merge-protocol conformance


@register
class MergeProtocolConformance(Rule):
    code = "TL034"
    title = "registered merge-fns must be sequential left folds"
    rationale = (
        "`# totolint: merge-fn` declares the one shape every execution "
        "mode reproduces: a left-to-right fold over the caller's "
        "spec-ordered input. A `reduce()`, numpy reduction, recursion, "
        "`reversed()`, or re-sort of the input inside a registered "
        "helper silently changes the association or operand order — "
        "bit drift that FloatSan would only catch at runtime. "
        "Conversely, a function that loop-accumulates KPI aggregates "
        "without the annotation is a merge site invisible to both the "
        "static registry and FloatSan's runtime audit; register it.")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        extract = _module_extract(context)
        registered = {qualname for qualname, _ in extract.merge_fns}
        for qualname, function in _functions_with_qualnames(context.tree):
            if qualname in registered:
                yield from self._check_merge_body(context, qualname,
                                                 function)
            elif self._unregistered_merge(function):
                yield self.violation(
                    context, function,
                    f"`{qualname}()` loop-accumulates KPI aggregates "
                    "without a `# totolint: merge-fn` annotation; "
                    "register it so TL034 and FloatSan can audit the "
                    "fold order")

    def _check_merge_body(self, context: ModuleContext, qualname: str,
                          function: ast.AST) -> Iterator[Violation]:
        params = self._param_names(function)
        name = getattr(function, "name", "")
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            reason = None
            dotted = _dotted(node.func)
            terminal = dotted.split(".")[-1] if dotted else None
            if _is_np_reduction(node):
                reason = f"numpy reduction `{dotted}()` (pairwise order)"
            elif terminal == "reduce" and dotted not in (None,):
                reason = f"`{dotted}()` (association is not a left fold)"
            elif terminal == "reversed":
                reason = "`reversed(...)` (reorders the fold)"
            elif (terminal == "sorted" and node.args
                  and isinstance(node.args[0], ast.Name)
                  and node.args[0].id in params):
                reason = (f"`sorted({node.args[0].id})` re-sorts the "
                          "input; the caller owns spec order")
            elif terminal == name:
                reason = "self-recursion (a tree-shaped merge)"
            if reason is not None:
                yield self.violation(
                    context, node,
                    f"registered merge-fn `{qualname}()` {reason}; a "
                    "merge-fn must fold its input left-to-right, "
                    "sequentially, in the order given")

    def _param_names(self, function: ast.AST) -> Set[str]:
        args = function.args
        names = {arg.arg for arg in (*args.posonlyargs, *args.args,
                                     *args.kwonlyargs)}
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                names.add(arg.arg)
        return names

    def _unregistered_merge(self, function: ast.AST) -> bool:
        mentions_kpis = False
        for node in ast.walk(function):
            if isinstance(node, ast.Name) and node.id in _KPI_AGGREGATES:
                mentions_kpis = True
                break
            if (isinstance(node, ast.Attribute)
                    and node.attr in _KPI_AGGREGATES):
                mentions_kpis = True
                break
        if not mentions_kpis:
            return False
        return any(
            isinstance(node, (ast.For, ast.AsyncFor))
            and any(isinstance(inner, ast.AugAssign)
                    and isinstance(inner.op, ast.Add)
                    for inner in _loop_body_nodes(node))
            for node in ast.walk(function))
