"""SARIF 2.1.0 output for totolint results.

SARIF (Static Analysis Results Interchange Format) is the lingua
franca code-scanning UIs ingest; emitting it lets CI upload lint
findings as a first-class artifact next to the stable JSON report.
Only the small, universally-supported subset of the schema is
produced: one run, one rule descriptor per catalogue entry, one
result per violation with a physical location.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.engine import LintReport
from repro.analysis.rules import all_rules

SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def format_sarif(report: LintReport) -> str:
    """Render a :class:`LintReport` as a SARIF 2.1.0 document."""
    rules: List[Dict[str, object]] = [
        {
            "id": rule.code,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": rule.level},
        }
        for rule in all_rules()
    ]
    levels = {rule.code: rule.level for rule in all_rules()}
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results: List[Dict[str, object]] = [
        {
            "ruleId": violation.rule,
            "ruleIndex": rule_index.get(violation.rule, -1),
            "level": levels.get(violation.rule, "error"),
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path},
                    "region": {
                        "startLine": violation.line,
                        # SARIF columns are 1-based; ours are 0-based.
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        }
        for violation in report.violations
    ]
    document: Dict[str, object] = {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "totolint",
                    "informationUri":
                        "docs/STATIC_ANALYSIS.md",
                    "rules": rules,
                },
            },
            "results": results,
            "properties": {
                "filesChecked": report.files_checked,
                "registrySize": report.registry_size,
                "hotFunctions": report.hot_functions,
                "baselined": report.baselined,
            },
        }],
    }
    return json.dumps(document, indent=2, sort_keys=False)
