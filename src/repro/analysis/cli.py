"""The ``totolint`` command-line front end.

Used two ways: ``repro-toto lint ...`` (the subcommand in
:mod:`repro.cli` forwards here) and ``python tools/totolint.py ...`` in
CI and pre-commit hooks.

Exit codes are part of the contract and must stay stable:

* ``0`` — lint ran and found nothing (beyond the baseline),
* ``1`` — lint ran and found violations (or stale baseline entries),
* ``2`` — the tool itself failed (unknown rule, unreadable or
  unparseable file, missing path, malformed baseline).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

import repro
from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintEngineError, LintReport, lint_paths
from repro.analysis.report import format_json, format_text
from repro.analysis.rules import all_rules, get_rules
from repro.analysis.sarif import format_sarif

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_INTERNAL_ERROR = 2


def default_target() -> Path:
    """The ``src/repro`` tree of the running installation."""
    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` options on ``parser``."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report style; json is the stable CI schema, sarif is "
             "SARIF 2.1.0 for code-scanning upload")
    parser.add_argument(
        "--sarif", action="store_true",
        help="shorthand for --format sarif")
    parser.add_argument(
        "--rules", default=None, metavar="TL001,TL002",
        help="comma-separated rule subset (default: all rules)")
    parser.add_argument(
        "--select", default=None, metavar="TL020,TL021",
        help="comma-separated rule subset to run (alias of --rules; "
             "CI uses it to split the determinism, perf, and numeric "
             "tiers)")
    parser.add_argument(
        "--ignore", default=None, metavar="TL024",
        help="comma-separated rules to drop from the selection")
    parser.add_argument(
        "--baseline", default=None, type=Path, metavar="FILE",
        help="ratchet file of accepted findings; matching violations "
             "are suppressed, stale entries fail the run")
    parser.add_argument(
        "--write-baseline", default=None, type=Path, metavar="FILE",
        help="write the current findings as the new baseline and exit 0")
    parser.add_argument(
        "--cache", default=None, type=Path, metavar="FILE",
        help="content-hash extract cache for the whole-program pass "
             "(speeds up repeat runs; safe to delete)")
    parser.add_argument(
        "--no-program", action="store_true",
        help="skip the whole-program pass (call graph, substream "
             "registry, TL010..TL013)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit 0")


def _resolve_rules(rules: Optional[str], select: Optional[str],
                   ignore: Optional[str]):
    """``(--select or --rules or all) minus --ignore``, validated.

    Unknown codes in any of the three raise :class:`LintEngineError`
    (exit 2) rather than silently linting with a different rule set.
    """
    codes = select if select is not None else rules
    selected = get_rules(codes.split(",")) if codes else None
    if not ignore:
        return selected
    dropped = {rule.code for rule in get_rules(ignore.split(","))}
    pool = selected if selected is not None else all_rules()
    return tuple(rule for rule in pool if rule.code not in dropped)


def run_lint(paths: Sequence[Path], output_format: str = "text",
             rules: Optional[str] = None, list_rules: bool = False,
             sarif: bool = False,
             baseline: Optional[Path] = None,
             write_baseline: Optional[Path] = None,
             cache: Optional[Path] = None,
             no_program: bool = False,
             select: Optional[str] = None,
             ignore: Optional[str] = None,
             stdout: Optional[TextIO] = None,
             stderr: Optional[TextIO] = None) -> int:
    """Execute one lint run; returns the stable exit code."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    if sarif:
        output_format = "sarif"
    if list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scopes) if rule.scopes else "all modules"
            kind = "program-wide" if rule.program_wide else scope
            print(f"{rule.code}  {rule.title}  [{kind}]", file=out)
        return EXIT_CLEAN
    try:
        selected = _resolve_rules(rules, select, ignore)
        report = lint_paths(list(paths) or [default_target()],
                            rules=selected,
                            build_program=not no_program,
                            cache_path=cache)
        if write_baseline is not None:
            Baseline.from_violations(list(report.violations)) \
                .write(str(write_baseline))
            print(f"totolint: wrote {len(report.violations)} finding(s) "
                  f"to baseline {write_baseline}", file=out)
            return EXIT_CLEAN
        if baseline is not None:
            result = Baseline.load(str(baseline)).apply(
                list(report.violations))
            report = dataclasses.replace(
                report, violations=tuple(result.new),
                baselined=result.baselined,
                stale_baseline=tuple(result.stale))
        formatted = _format(report, output_format)
    except LintEngineError as error:
        print(f"totolint: internal error: {error}", file=err)
        return EXIT_INTERNAL_ERROR
    except Exception as error:  # totolint: disable=TL006
        # Anything unexpected is a tool bug, never a violation: exit 2
        # so CI can tell "lint failed to run" from "lint found issues".
        print(f"totolint: internal error: {error!r}", file=err)
        return EXIT_INTERNAL_ERROR
    print(formatted, file=out)
    if report.stale_baseline:
        for entry in report.stale_baseline:
            print(f"totolint: stale baseline entry: {entry}", file=err)
        print("totolint: regenerate with --write-baseline to shrink the "
              "ratchet", file=err)
        return EXIT_VIOLATIONS
    return report.exit_code


def _format(report: LintReport, output_format: str) -> str:
    if output_format == "json":
        return format_json(report)
    if output_format == "sarif":
        return format_sarif(report)
    return format_text(report)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python tools/totolint.py``)."""
    parser = argparse.ArgumentParser(
        prog="totolint",
        description="determinism & correctness linter for the Toto "
                    "reproduction (determinism TL001..TL014, perf "
                    "TL020..TL024, numeric TL030..TL034)")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(paths=args.paths, output_format=args.format,
                    rules=args.rules, list_rules=args.list_rules,
                    sarif=args.sarif, baseline=args.baseline,
                    write_baseline=args.write_baseline,
                    cache=args.cache, no_program=args.no_program,
                    select=args.select, ignore=args.ignore)


if __name__ == "__main__":
    sys.exit(main())
