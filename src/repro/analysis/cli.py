"""The ``totolint`` command-line front end.

Used two ways: ``repro-toto lint ...`` (the subcommand in
:mod:`repro.cli` forwards here) and ``python tools/totolint.py ...`` in
CI and pre-commit hooks.

Exit codes are part of the contract and must stay stable:

* ``0`` — lint ran and found nothing,
* ``1`` — lint ran and found violations,
* ``2`` — the tool itself failed (unknown rule, unreadable or
  unparseable file, missing path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

import repro
from repro.analysis.engine import LintEngineError, lint_paths
from repro.analysis.report import format_json, format_text
from repro.analysis.rules import all_rules, get_rules

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_INTERNAL_ERROR = 2


def default_target() -> Path:
    """The ``src/repro`` tree of the running installation."""
    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` options on ``parser``."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report style; json is the stable CI schema")
    parser.add_argument(
        "--rules", default=None, metavar="TL001,TL002",
        help="comma-separated rule subset (default: all rules)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit 0")


def run_lint(paths: Sequence[Path], output_format: str = "text",
             rules: Optional[str] = None, list_rules: bool = False,
             stdout: Optional[TextIO] = None,
             stderr: Optional[TextIO] = None) -> int:
    """Execute one lint run; returns the stable exit code."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    if list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scopes) if rule.scopes else "all modules"
            print(f"{rule.code}  {rule.title}  [{scope}]", file=out)
        return EXIT_CLEAN
    try:
        selected = get_rules(rules.split(",")) if rules else None
        report = lint_paths(list(paths) or [default_target()],
                            rules=selected)
        formatted = (format_json(report) if output_format == "json"
                     else format_text(report))
    except LintEngineError as error:
        print(f"totolint: internal error: {error}", file=err)
        return EXIT_INTERNAL_ERROR
    except Exception as error:  # totolint: disable=TL006
        # Anything unexpected is a tool bug, never a violation: exit 2
        # so CI can tell "lint failed to run" from "lint found issues".
        print(f"totolint: internal error: {error!r}", file=err)
        return EXIT_INTERNAL_ERROR
    print(formatted, file=out)
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python tools/totolint.py``)."""
    parser = argparse.ArgumentParser(
        prog="totolint",
        description="determinism & correctness linter for the Toto "
                    "reproduction (rules TL001..TL009)")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(paths=args.paths, output_format=args.format,
                    rules=args.rules, list_rules=args.list_rules)


if __name__ == "__main__":
    sys.exit(main())
