"""Determinism & correctness static analysis (``totolint``).

The benchmark's headline promise — a parallel sweep reproduces the
serial loop *byte for byte* — only holds while no code path consults
wall-clock time, global RNG state, interpreter identity, or unordered
collection iteration on the event path.  This package machine-checks
that determinism contract: an AST lint engine (:mod:`.engine`) walks
every module under ``src/repro/`` and applies the repo-specific rules
registered in :mod:`.rules` (TL001..TL009).

Entry points:

* ``repro-toto lint`` — the CLI subcommand (see :mod:`repro.cli`).
* ``tools/totolint.py`` — the CI wrapper with stable exit codes.
* :func:`lint_paths` / :func:`lint_source` — the library API tests use.

Exit codes (stable; CI and pre-commit hooks rely on them):

* ``0`` — no violations,
* ``1`` — one or more violations,
* ``2`` — internal error (unreadable path, unparseable file, bad rule
  selection).
"""

from repro.analysis.engine import (
    LintReport,
    ModuleContext,
    Violation,
    lint_paths,
    lint_source,
)
from repro.analysis.report import format_json, format_text
from repro.analysis.rules import Rule, all_rules, get_rules

__all__ = [
    "LintReport",
    "ModuleContext",
    "Rule",
    "Violation",
    "all_rules",
    "format_json",
    "format_text",
    "get_rules",
    "lint_paths",
    "lint_source",
]
